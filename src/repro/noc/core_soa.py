"""Struct-of-arrays simulation core: batched per-cycle router stepping.

The object core (:class:`repro.noc.router.Router`) models each router as an
object holding nested per-port/per-VC containers, and the network calls
three methods per buffered router per cycle.  At saturated load that method
dispatch plus the per-slot attribute chasing dominates the run.  This module
keeps *all* router hot state in flat arrays indexed by

    ``g = router * S + port * num_vcs + vc``   with ``S = ports * num_vcs``

and advances every router in one batched pass (:meth:`SoaCore.cycle_all`)
with zero per-flit Python method calls on the fast path.  The observable
behaviour is bit-identical to the object core — same ``simulation_outputs``,
delivered word streams and stats — which the cross-core identity suite
locks (see DESIGN.md §14 for the per-state-class argument).

Three things make the batched pass faster than a straight transliteration:

* **VA pending set** — the object core's VA stage rescans every occupied
  slot each cycle (sorting them with a lambda key) even though most heads
  already own an output VC.  ``va_pending[rid]`` holds exactly the slots
  whose head-of-line flit still needs VC allocation; the rotated visiting
  order over that subset equals the object core's rotated full scan with
  the ineligible slots skipped, so the allocation decisions are identical.
* **``head_ready`` array + ``min_ready`` bound** — ``head_ready[g]`` caches
  ``buffer[0].ready_at`` (``_INF`` when empty), making ``next_ready`` /
  ``skip_cycles`` single min-reductions.  ``min_ready[rid]`` is a
  conservative lower bound on the earliest cycle any head of router ``rid``
  can win switch allocation: while ``min_ready[rid] > now`` the SA scan is
  skipped outright.  A stale-low bound only costs a scan that finds
  nothing; every event that could make a head eligible lowers the bound
  (accept, VA grant, a credit count leaving zero, a non-empty request
  round), so the bound is never stale-high and outcomes never change —
  a scan that would have been skipped produces no requests, and an SA pass
  with no requests mutates nothing (``_port_rr`` advances only on
  requests).
* **Inline send/credit/stats** — with no sanitizer and no link-fault model
  armed, departures append straight to the network's pending lists and
  stats are batched per call instead of incremented per flit.  With either
  armed, the per-router closures are used unchanged, so NoCSan wrapping
  and fault models compose exactly as with the object core.

:class:`SoaRouter` is a thin per-router view over the core arrays exposing
the object-core surface the rest of the repo relies on (``accept``,
``credit_return``, ``next_ready``, ``skip_cycles``, ``audit``,
``_buffered``, ``inputs``/``out_credits`` for tests and the sanitizer), so
``network.routers`` keeps working regardless of the selected core.

:class:`NumpyCore` (``NocConfig(core="numpy")``) stores ``head_ready`` as a
numpy int64 array and vectorizes the min-reductions — a win for big meshes
under low load where the reduction dominates, at the cost of slightly
slower scalar reads in the saturated-load loop.  numpy is an optional
extra (``pip install '.[fast]'``); the ``object`` and ``soa`` cores never
import it.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Dict, List, Optional, Tuple

from repro.noc.config import NocConfig
from repro.noc.packet import Flit
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, NUM_DIRECTIONS

#: "No head flit buffered" sentinel in ``head_ready`` — far above any
#: reachable simulated cycle, so min-reductions need no None handling.
_INF = 1 << 60

#: Packed send target of an unwired mesh-edge port.  Deterministic routing
#: never produces such a hop; the sentinel decodes as an impossible
#: ejection node so a routing bug fails loudly instead of corrupting state.
_EDGE = -(1 << 50)

#: Core backends selectable via ``NocConfig(core=...)``.
CORE_BACKENDS = ("object", "soa", "numpy")


def make_core(kind: str, config: NocConfig, topology: MeshTopology,
              stats: NetworkStats, route) -> "SoaCore":
    """Build the requested batched core (``soa`` or ``numpy``).

    The ``object`` core has no :class:`SoaCore`; ``Network`` keeps its
    per-object router list for that backend (and for custom
    ``router_factory`` classes, which subclass ``Router``).
    """
    if kind == "soa":
        return SoaCore(config, topology, stats, route)
    if kind == "numpy":
        try:
            import numpy  # noqa: F401 - availability probe
        except ImportError as exc:
            raise RuntimeError(
                "NocConfig(core='numpy') requires numpy, which is an "
                "optional dependency — install it with "
                "`pip install '.[fast]'` (or `pip install numpy`), or "
                "select core='soa' for the pure-Python batched core"
            ) from exc
        return NumpyCore(config, topology, stats, route)
    raise ValueError(f"unknown core backend {kind!r}; "
                     f"expected one of {CORE_BACKENDS}")


class SoaCore:
    """Flat-array state + batched per-cycle stepping for every router.

    All mutable simulation state lives in the arrays below; the
    :class:`SoaRouter` views in :attr:`routers` hold no state of their own.
    Every field carries a skip-safety classification in
    :data:`repro.noc.network.SKIP_ACCOUNTED_STATE` (lint rule REPRO701).
    """

    def __init__(self, config: NocConfig, topology: MeshTopology,
                 stats: NetworkStats, route):
        R = config.n_routers
        P = topology.ports_per_router
        V = config.num_vcs
        S = P * V
        self.n_routers = R
        self.n_ports = P
        self.num_vcs = V
        self.vc_depth = config.vc_depth
        self.pipe_delay = max(config.router_stages - 1, 0)
        self.slots = S
        self.stats = stats
        # --- per-(router, port, vc) slot state, flat over g = r*S + p*V + v
        self.bufs: List[deque] = [deque() for _ in range(R * S)]
        self.head_ready: List[int] = [_INF] * (R * S)
        self.route_out: List[int] = [-1] * (R * S)
        self.out_vc: List[int] = [-1] * (R * S)
        # --- per-(router, out port, out vc) state (same index space: S=P*V)
        self.out_credits: List[int] = [config.vc_depth] * (R * S)
        self.out_owner: List[int] = [-1] * (R * S)
        #: Flat out-credit index of the held output VC (``base + r*V +
        #: out_vc``); valid iff ``out_vc[g] >= 0``.  Pure cache: saves two
        #: loads and two multiplies per SA visit of every candidate.
        self.out_idx: List[int] = [0] * (R * S)
        #: Unowned output VCs per (router, out port): VA skips pending
        #: heads whose whole out port is owned without scanning its VCs
        #: (the object core re-scans them every cycle).
        self.free_out_vcs: List[int] = [config.num_vcs] * (R * P)
        #: Input slot parked on out-credit index ``oc`` (-1 = none): a
        #: switch-allocation candidate observed credit-blocked is moved
        #: here and revived on the 0->1 credit transition, instead of
        #: being rescanned every cycle while the downstream VC is full.
        self.credit_waiter: List[int] = [-1] * (R * S)
        #: Pending heads parked per (router, out port) while the port has
        #: no free output VC; revived in bulk when a tail releases one.
        self.va_waiters: List[List[int]] = [[] for _ in range(R * P)]
        # --- per-(router, port) arbiters, flat over r*P + p
        self.va_rr: List[int] = [0] * (R * P)
        self.sa_rr: List[int] = [0] * (R * P)
        # --- per-router state
        self.port_rr: List[int] = [0] * R
        self.va_input_rr: List[int] = [0] * R
        self.buffered: List[int] = [0] * R
        #: Routers with any buffered flit, pruned lazily by ``cycle_all``:
        #: idle routers cost nothing per cycle (the object core steps all
        #: of them).  May briefly hold a drained router until its next
        #: visit discards it — a stale entry is skipped, never acted on.
        self.active: set = set()
        #: Slots whose head-of-line flit is a head awaiting VC allocation.
        self.va_pending: List[set] = [set() for _ in range(R)]
        #: Slots holding an allocated output VC (switch-allocation
        #: candidates).  Disjoint from ``va_pending``; their union is the
        #: object core's ``_occupied`` minus empty held-VC slots.
        self.sa_cand: List[set] = [set() for _ in range(R)]
        #: Conservative lower bound on the earliest cycle any head of this
        #: router can win SA (0 = must scan).  Advisory only: staleness
        #: costs scans, never correctness (see module docstring).
        self.min_ready: List[int] = [0] * R
        # --- static routing / wiring tables
        n_nodes = topology.n_nodes
        self.route_table: List[List[int]] = [
            [route(topology, rid, dst) for dst in range(n_nodes)]
            for rid in range(R)]
        #: SA scratch: per-out-port request lists, reused across routers
        #: (always empty between cycles; avoids a dict + sort per router).
        self._req_lists: List[List[int]] = [[] for _ in range(P)]
        # Scratch lists reused by cycle_all (cleared after each use) so
        # the hot path allocates nothing per router visit.
        self._scratch_elig: List[int] = []
        self._scratch_parked: List[int] = []
        # Packed send target per (rid, out port): a link is the downstream
        # flat slot base ``dst_router*S + dst_port*V`` (>= 0, add the out
        # VC to get the arrival slot), an ejection port is ``-node - 1``,
        # an unwired mesh edge is _EDGE (never routed to).
        send_targets: List[int] = []
        # Credit destination per (rid, in port): (1, node) for local ports,
        # (2, upstream_base) for linked directions (flat index base of the
        # upstream router's out-credit row), (0, 0) at mesh edges.
        credit_dests: List[Tuple[int, int]] = []
        from repro.noc.network import OPPOSITE_PORT
        for rid in range(R):
            for port in range(P):
                link = topology.link(rid, port)
                if link is not None:
                    send_targets.append(link.dst_router * S
                                        + link.dst_port * V)
                elif port >= NUM_DIRECTIONS:
                    send_targets.append(-topology.node_at(rid, port) - 1)
                else:
                    send_targets.append(_EDGE)
                if port >= NUM_DIRECTIONS:
                    credit_dests.append((1, topology.node_at(rid, port)))
                else:
                    upstream = topology.neighbor(rid, port)
                    if upstream is None:
                        credit_dests.append((0, 0))
                    else:
                        credit_dests.append(
                            (2, upstream * S + OPPOSITE_PORT[port] * V))
        self.send_targets = send_targets
        self.credit_dests = credit_dests
        self.routers: List[SoaRouter] = [SoaRouter(self, rid)
                                         for rid in range(R)]
        # Bound by Network after closure construction (None => inline fast
        # path for that callback class).
        self.net = None
        self.send_fns = None
        self.credit_fns = None

    # ------------------------------------------------------------- wiring

    def bind(self, network) -> None:
        """Attach the owning network and pick inline vs closure paths.

        Called once, after the network finished building (and possibly
        sanitizer-wrapping) its callback tables: sends stay inline only
        when nothing needs to observe them per-flit.
        """
        self.net = network
        faults = network._faults
        inline_send = (network._sanitizer is None
                       and (faults is None or not faults.affects_links))
        self.send_fns = None if inline_send else network._send_fns
        self.credit_fns = (None if network._sanitizer is None
                           else network._credit_fns)

    # ------------------------------------------------------------ ingress

    def accept(self, rid: int, port: int, vc: int, flit: Flit,
               now: int) -> None:
        """Buffer one arriving flit (identical semantics to
        ``Router.accept``, including the overflow check)."""
        g = rid * self.slots + port * self.num_vcs + vc
        buf = self.bufs[g]
        if len(buf) >= self.vc_depth:
            raise RuntimeError(
                f"router {rid} port {port} vc {vc}: buffer "
                f"overflow — upstream violated credit flow control")
        ready = now + self.pipe_delay
        flit.ready_at = ready
        if not buf:
            self.head_ready[g] = ready
            slot = port * self.num_vcs + vc
            if flit.is_head:
                self.va_pending[rid].add(slot)
                # Route the head now (deterministic, so computing it at
                # buffer entry instead of in the VA stage is unobservable):
                # VA's port-busy filter needs it before the first visit.
                self.route_out[g] = self.route_table[rid][flit.packet.dst]
            elif self.out_vc[g] >= 0:
                # Body flit landing in a held output VC: SA-eligible once
                # the pipeline delay elapses.
                self.sa_cand[rid].add(slot)
                if ready < self.min_ready[rid]:
                    self.min_ready[rid] = ready
            # else: protocol violation (body without a held VC) — kept
            # buffered and inert, exactly like the object core; the
            # sanitizer's audit flags it.
        buf.append(flit)
        if not self.buffered[rid]:
            self.active.add(rid)
        self.buffered[rid] += 1
        self.stats.buffer_writes += 1

    def accept_arrivals(self, arrivals: List[tuple], now: int) -> None:
        """Batched ``accept`` for the network's pending-arrival queue.

        On the inline fast path the queue holds packed ``(g, flit)`` pairs
        (the arrival slot index was folded into the send target table);
        with per-flit send closures armed it holds the object core's
        ``(router, port, vc, flit)`` tuples.
        """
        if self.send_fns is not None:
            for rid, port, vc, flit in arrivals:
                self.accept(rid, port, vc, flit, now)
            return
        bufs = self.bufs
        head_ready = self.head_ready
        route_out = self.route_out
        out_vc = self.out_vc
        va_pending = self.va_pending
        sa_cand = self.sa_cand
        min_ready = self.min_ready
        route_table = self.route_table
        buffered = self.buffered
        active_add = self.active.add
        depth = self.vc_depth
        S = self.slots
        ready = now + self.pipe_delay
        for g, flit in arrivals:
            buf = bufs[g]
            if len(buf) >= depth:
                rid, slot = divmod(g, S)
                port, vc = divmod(slot, self.num_vcs)
                raise RuntimeError(
                    f"router {rid} port {port} vc {vc}: buffer "
                    f"overflow — upstream violated credit flow control")
            flit.ready_at = ready
            rid, slot = divmod(g, S)
            if not buf:
                head_ready[g] = ready
                if flit.is_head:
                    va_pending[rid].add(slot)
                    route_out[g] = route_table[rid][flit.packet.dst]
                elif out_vc[g] >= 0:
                    sa_cand[rid].add(slot)
                    if ready < min_ready[rid]:
                        min_ready[rid] = ready
            buf.append(flit)
            if not buffered[rid]:
                active_add(rid)
            buffered[rid] += 1
        self.stats.buffer_writes += len(arrivals)

    def set_output_credits(self, rid: int, port: int, credits: int) -> None:
        """Resize one output port's credit pool (ejection-port sentinel)."""
        base = rid * self.slots + port * self.num_vcs
        for vc in range(self.num_vcs):
            idx = base + vc
            self.out_credits[idx] = credits
            if credits > 0:
                self._revive_credit_waiter(idx)

    def credit_return(self, rid: int, port: int, vc: int) -> None:
        """A downstream buffer slot freed up (recovery resync path; the
        per-cycle bulk goes through :meth:`apply_credits`)."""
        idx = rid * self.slots + port * self.num_vcs + vc
        if self.out_credits[idx] == 0:
            self.min_ready[rid] = 0
            self._revive_credit_waiter(idx)
        self.out_credits[idx] += 1

    def _revive_credit_waiter(self, idx: int) -> None:
        """Un-park the input slot blocked on out-credit index ``idx``."""
        slot = self.credit_waiter[idx]
        if slot >= 0:
            self.credit_waiter[idx] = -1
            self.sa_cand[idx // self.slots].add(slot)

    # ---------------------------------------------------------- main loop

    def cycle_all(self, now: int, faults) -> None:
        """Run VA + SA/ST for every buffered router, in router order.

        Bit-identity with the per-object loop follows from processing
        routers in ascending id (so pending-arrival/credit-event append
        order matches) and, within a router, replicating the object core's
        stage order and arbiter updates exactly.
        """
        V = self.num_vcs
        S = self.slots
        P = self.n_ports
        pmask = (1 << P) - 1
        bufs = self.bufs
        head_ready = self.head_ready
        route_out = self.route_out
        out_vc = self.out_vc
        out_credits = self.out_credits
        out_owner = self.out_owner
        out_idx = self.out_idx
        free_out_vcs = self.free_out_vcs
        credit_waiter = self.credit_waiter
        va_waiters = self.va_waiters
        buffered = self.buffered
        va_rr = self.va_rr
        sa_rr = self.sa_rr
        port_rr = self.port_rr
        va_input_rr = self.va_input_rr
        va_pending = self.va_pending
        sa_cand = self.sa_cand
        min_ready = self.min_ready
        route_table = self.route_table
        req_lists = self._req_lists
        scratch_elig = self._scratch_elig
        scratch_parked = self._scratch_parked
        net = self.net
        send_fns = self.send_fns
        credit_fns = self.credit_fns
        inline_send = send_fns is None
        inline_credit = credit_fns is None
        if inline_send:
            targets = self.send_targets
            arrivals_append = net._pending_router_arrivals.append
            eject_append = net._pending_ejections.append
        if inline_credit:
            credit_append = net._credit_events.append
        dead = None
        if faults is not None and faults.affects_routers:
            dead = faults.router_dead
        reads = 0
        allocs = 0
        links = 0
        sends = 0
        active = self.active
        for rid in sorted(active):  # ascending rid, as the object core
            if not buffered[rid]:
                active.discard(rid)  # drained since its last visit
                continue
            if dead is not None and dead(rid, now):
                continue
            base = rid * S
            pbase = rid * P
            # ---- stage 1: route computation + VC allocation
            rotate = va_input_rr[rid]
            nxt_rot = rotate + V
            va_input_rr[rid] = nxt_rot - S if nxt_rot >= S else nxt_rot
            pend = va_pending[rid]
            if pend:
                # Heads whose whole out port is owned cannot be granted
                # and grant nothing to others, so parking them (revived
                # when a tail frees a VC of that port) leaves the rotated
                # visiting order over the rest — and therefore every
                # allocation decision — unchanged.
                elig = scratch_elig
                parked = scratch_parked
                for slot in pend:  # repro: allow[unordered-iter]
                    g = base + slot
                    r = route_out[g]
                    if r < 0:  # defensive: head queued without a route
                        r = route_table[rid][bufs[g][0].packet.dst]
                        route_out[g] = r
                    if free_out_vcs[pbase + r]:
                        elig.append(slot)
                    else:
                        va_waiters[pbase + r].append(slot)
                        parked.append(slot)
                if parked:
                    for slot in parked:
                        pend.discard(slot)
                    del parked[:]
                if elig:
                    # Rotated round-robin order without a per-visit key
                    # lambda: slots are distinct, so ascending order
                    # split at the rotation point equals ranking by
                    # (slot - rotate) % S.
                    n_elig = len(elig)
                    split = 0
                    if n_elig > 1:
                        elig.sort()
                        split = bisect_left(elig, rotate)
                    for k in range(n_elig):
                        i = split + k
                        slot = elig[i - n_elig] if i >= n_elig else elig[i]
                        g = base + slot
                        r = route_out[g]
                        ob = base + r * V
                        start = va_rr[pbase + r]
                        for j in range(V):
                            cand = start + j
                            if cand >= V:
                                cand -= V
                            if out_owner[ob + cand] < 0:
                                out_owner[ob + cand] = slot
                                out_vc[g] = cand
                                out_idx[g] = ob + cand
                                free_out_vcs[pbase + r] -= 1
                                va_rr[pbase + r] = 0 if cand + 1 >= V \
                                    else cand + 1
                                allocs += 1
                                pend.discard(slot)
                                sa_cand[rid].add(slot)
                                ready = head_ready[g]
                                if ready < min_ready[rid]:
                                    min_ready[rid] = ready
                                break
                    del elig[:]
            # ---- stages 2+3: switch allocation + traversal
            if dead is None and min_ready[rid] > now:
                continue  # provably nothing SA-eligible this cycle
            cands = sa_cand[rid]
            if not cands:
                min_ready[rid] = _INF
                continue
            if len(cands) == 1:
                # Solo-candidate fast path: one granted VC streaming through
                # an otherwise idle switch is the common case at load.  With
                # a single requester the request-list/port-rotation/crossbar
                # machinery cannot change any outcome, so collapse SA to a
                # straight-line grant + the same inlined traversal below.
                for slot in cands:  # repro: allow[unordered-iter]
                    break
                g = base + slot
                ready = head_ready[g]
                if ready > now:
                    min_ready[rid] = ready
                    continue
                oc = out_idx[g]
                if out_credits[oc] <= 0:
                    credit_waiter[oc] = slot
                    cands.discard(slot)
                    min_ready[rid] = _INF
                    continue
                min_ready[rid] = now + 1
                prr = port_rr[rid]
                port_rr[rid] = 0 if prr + 1 >= P else prr + 1
                out_port = route_out[g]
                sa_rr[pbase + out_port] = 0 if slot + 1 >= S else slot + 1
                buf = bufs[g]
                flit = buf.popleft()
                buffered[rid] -= 1
                ovc = out_vc[g]
                out_credits[oc] -= 1
                reads += 1
                released = False
                if buf:
                    head_ready[g] = buf[0].ready_at
                    if flit.is_tail:
                        out_owner[oc] = -1
                        out_vc[g] = -1
                        released = True
                        cands.discard(slot)
                        nxt = buf[0]
                        if nxt.is_head:
                            va_pending[rid].add(slot)
                            route_out[g] = route_table[rid][nxt.packet.dst]
                        else:
                            route_out[g] = -1
                else:
                    head_ready[g] = _INF
                    cands.discard(slot)
                    if flit.is_tail:
                        out_owner[oc] = -1
                        route_out[g] = -1
                        out_vc[g] = -1
                        released = True
                if released:
                    free_out_vcs[pbase + out_port] += 1
                    waiters = va_waiters[pbase + out_port]
                    if waiters:
                        pend.update(waiters)
                        del waiters[:]
                if inline_credit:
                    credit_append(base + slot)
                else:
                    credit_fns[rid](slot // V, slot % V)
                if inline_send:
                    sends += 1
                    t = targets[pbase + out_port]
                    if t >= 0:
                        links += 1
                        # Payload tuple: the communicated datum itself.
                        # repro: allow[hot-alloc]
                        arrivals_append((t + ovc, flit))
                    else:
                        # repro: allow[hot-alloc]
                        eject_append((-1 - t, flit))
                else:
                    send_fns[rid](out_port, ovc, flit)
                continue
            req_mask = 0
            bound = _INF
            parked = scratch_parked
            for slot in cands:  # repro: allow[unordered-iter]
                g = base + slot
                ready = head_ready[g]
                if ready > now:
                    if ready < bound:
                        bound = ready
                    continue
                oc = out_idx[g]
                if out_credits[oc] <= 0:
                    # Credit-blocked: park on the out-credit index instead
                    # of rescanning every cycle; the 0->1 apply revives.
                    credit_waiter[oc] = slot
                    parked.append(slot)
                    continue
                p = route_out[g]
                req_lists[p].append(slot)
                req_mask |= 1 << p
            if parked:
                for slot in parked:
                    cands.discard(slot)
                del parked[:]
            if not req_mask:
                min_ready[rid] = bound
                continue
            min_ready[rid] = now + 1 if now + 1 < bound else bound
            prr = port_rr[rid]
            port_rr[rid] = 0 if prr + 1 >= P else prr + 1
            granted_inputs = 0
            # Visit only the requested output ports, still in the rotated
            # (prr-first) order the object core uses: rotate the request
            # mask so bit 0 is port prr, then peel set bits ascending.
            m = (req_mask >> prr | req_mask << (P - prr)) & pmask
            while m:
                low = m & -m
                m ^= low
                out_port = low.bit_length() - 1 + prr
                if out_port >= P:
                    out_port -= P
                lst = req_lists[out_port]
                if len(lst) == 1:
                    # Uncontended port: the round-robin rank is irrelevant
                    # with one requester, so skip the rank scan.
                    winner = lst[0]
                    if granted_inputs >> (winner // V) & 1:
                        winner = -1
                else:
                    start = sa_rr[pbase + out_port]
                    winner = -1
                    best_rank = S
                    for slot in lst:
                        if granted_inputs >> (slot // V) & 1:
                            continue
                        rank = slot - start
                        if rank < 0:
                            rank += S
                        if rank < best_rank:
                            best_rank = rank
                            winner = slot
                del lst[:]
                if winner < 0:
                    continue
                in_port = winner // V
                granted_inputs |= 1 << in_port
                sa_rr[pbase + out_port] = 0 if winner + 1 >= S else winner + 1
                # ---- traversal (object core's _traverse, inlined)
                g = base + winner
                buf = bufs[g]
                flit = buf.popleft()
                buffered[rid] -= 1
                ovc = out_vc[g]
                oc = out_idx[g]
                out_credits[oc] -= 1
                reads += 1
                released = False
                if buf:
                    head_ready[g] = buf[0].ready_at
                    if flit.is_tail:
                        out_owner[oc] = -1
                        out_vc[g] = -1
                        released = True
                        cands.discard(winner)
                        nxt = buf[0]
                        if nxt.is_head:
                            va_pending[rid].add(winner)
                            route_out[g] = route_table[rid][nxt.packet.dst]
                        else:
                            # Malformed stream (body behind a tail): inert,
                            # exactly like the object core; audit flags it.
                            route_out[g] = -1
                else:
                    head_ready[g] = _INF
                    cands.discard(winner)
                    if flit.is_tail:
                        out_owner[oc] = -1
                        route_out[g] = -1
                        out_vc[g] = -1
                        released = True
                if released:
                    free_out_vcs[pbase + out_port] += 1
                    waiters = va_waiters[pbase + out_port]
                    if waiters:
                        # Heads parked on this out port become VA-visible
                        # again next cycle — exactly when the object core
                        # could first grant them the freed VC.
                        pend.update(waiters)
                        del waiters[:]
                if inline_credit:
                    credit_append(base + winner)
                else:
                    credit_fns[rid](in_port, winner - in_port * V)
                if inline_send:
                    sends += 1
                    t = targets[pbase + out_port]
                    if t >= 0:
                        links += 1
                        # Payload tuple: the communicated datum itself.
                        # repro: allow[hot-alloc]
                        arrivals_append((t + ovc, flit))
                    else:
                        # repro: allow[hot-alloc]
                        eject_append((-1 - t, flit))
                else:
                    send_fns[rid](out_port, ovc, flit)
        stats = self.stats
        if reads:
            stats.buffer_reads += reads
            stats.crossbar_traversals += reads
        if allocs:
            stats.vc_allocations += allocs
        if inline_send and sends:
            stats.link_traversals += links
            net._buffered_total -= sends

    def apply_credits(self, events: List, nis, targets, faults) -> None:
        """Apply one cycle's collected credit events (network phase 5).

        With the sanitizer off the events are packed flat slot indices
        ``rid*S + port*V + vc`` appended by :meth:`cycle_all` (note
        ``e // V == rid*P + port``, the credit-destination index); with it
        on they are the network credit closures' ``(rid, port, vc)``
        tuples.
        """
        out_credits = self.out_credits
        min_ready = self.min_ready
        credit_waiter = self.credit_waiter
        sa_cand = self.sa_cand
        dests = self.credit_dests
        P = self.n_ports
        S = self.slots
        V = self.num_vcs
        swallow = faults is not None and faults.affects_credits
        if self.credit_fns is None:
            for e in events:
                vc = e % V
                kind, value = dests[e // V]
                if kind == 0:  # pragma: no cover - impossible by wiring
                    continue
                if swallow:
                    rid, rem = divmod(e, S)
                    in_port = rem // V
                    if faults.swallow_credit(rid, in_port, vc,
                                             targets[rid][in_port]):
                        continue  # credit lost in transit (ledgered)
                if kind == 1:
                    nis[value].credit(vc)
                else:
                    idx = value + vc
                    if out_credits[idx] == 0:
                        min_ready[idx // S] = 0
                        w = credit_waiter[idx]
                        if w >= 0:
                            credit_waiter[idx] = -1
                            sa_cand[idx // S].add(w)
                    out_credits[idx] += 1
            del events[:]
            return
        for rid, in_port, vc in events:
            kind, value = dests[rid * P + in_port]
            if kind == 0:  # pragma: no cover - impossible by wiring
                continue
            if swallow and faults.swallow_credit(rid, in_port, vc,
                                                 targets[rid][in_port]):
                continue  # credit message lost in transit (ledgered)
            if kind == 1:
                nis[value].credit(vc)
            else:
                idx = value + vc
                if out_credits[idx] == 0:
                    min_ready[idx // S] = 0
                    w = credit_waiter[idx]
                    if w >= 0:
                        credit_waiter[idx] = -1
                        sa_cand[idx // S].add(w)
                out_credits[idx] += 1
        del events[:]

    # ------------------------------------------------------ event horizon

    def next_ready_all(self, now: int) -> Optional[int]:
        """Earliest ``ready_at >= now`` over every head-of-line flit, or
        None — the batched form of the per-router ``next_ready`` loop."""
        head_ready = self.head_ready
        earliest = min(head_ready)
        if earliest >= now:
            return None if earliest == _INF else earliest
        best = _INF
        for ready in head_ready:
            if now <= ready < best:
                best = ready
        return None if best == _INF else best

    def next_ready_router(self, rid: int, now: int) -> Optional[int]:
        """Per-router ``next_ready`` (view API; the network's skip decision
        uses :meth:`next_ready_all`)."""
        best = _INF
        base = rid * self.slots
        for g in range(base, base + self.slots):
            ready = self.head_ready[g]
            if now <= ready < best:
                best = ready
        return None if best == _INF else best

    def skip_all(self, count: int) -> None:
        """Replay ``count`` skipped cycles of VA input rotation on every
        buffered router (the batched form of ``Router.skip_cycles``)."""
        S = self.slots
        delta = (count * self.num_vcs) % S
        if delta == 0:
            return
        va_input_rr = self.va_input_rr
        buffered = self.buffered
        for rid in range(self.n_routers):
            if buffered[rid]:
                nxt = va_input_rr[rid] + delta
                va_input_rr[rid] = nxt - S if nxt >= S else nxt

    def skip_router(self, rid: int, count: int) -> None:
        """Per-router ``skip_cycles`` (used when fail-stop faults exclude
        dead routers from the replay)."""
        if self.buffered[rid]:
            S = self.slots
            self.va_input_rr[rid] = (self.va_input_rr[rid]
                                     + count * self.num_vcs) % S

    # -------------------------------------------------------- inspection

    def buffer_occupancy(self, rid: int, port: int, vc: int) -> int:
        """Flits buffered in one input VC."""
        return len(self.bufs[rid * self.slots + port * self.num_vcs + vc])

    def credit_count(self, rid: int, port: int, vc: int) -> int:
        """Current credit view of one output VC."""
        return self.out_credits[rid * self.slots + port * self.num_vcs + vc]

    def occupancy(self, rid: int) -> int:
        """Total flits buffered in one router."""
        base = rid * self.slots
        return sum(len(self.bufs[base + slot]) for slot in range(self.slots))

    def audit(self, rid: int) -> List[str]:
        """The object core's ``Router.audit`` invariants over the arrays,
        plus the SoA-specific caches (``head_ready``, the pending/candidate
        sets, the ``min_ready`` bound)."""
        violations: List[str] = []
        V = self.num_vcs
        S = self.slots
        base = rid * S
        pb = rid * self.n_ports
        recount = 0
        pend = self.va_pending[rid]
        cands = self.sa_cand[rid]
        now = self.net.cycle if self.net is not None else 0
        for slot in range(S):
            port, vc = slot // V, slot % V
            g = base + slot
            buf = self.bufs[g]
            n = len(buf)
            recount += n
            if n > self.vc_depth:
                violations.append(
                    f"input port {port} vc {vc}: {n} flits buffered, "
                    f"depth is {self.vc_depth}")
            ovc = self.out_vc[g]
            route = self.route_out[g]
            if n and not buf[0].is_head and ovc < 0:
                violations.append(
                    f"input port {port} vc {vc}: body flit at head of "
                    f"line without an allocated output VC")
            if ovc >= 0:
                if route < 0:
                    violations.append(
                        f"input port {port} vc {vc}: output VC {ovc} held "
                        f"without a computed route")
                elif self.out_owner[base + route * V + ovc] != slot:
                    owner = self.out_owner[base + route * V + ovc]
                    violations.append(
                        f"input port {port} vc {vc}: holds output VC "
                        f"{route}/{ovc} but ownership records "
                        f"{None if owner < 0 else divmod(owner, V)}")
                elif self.out_idx[g] != base + route * V + ovc:
                    violations.append(
                        f"input port {port} vc {vc}: out_idx cache "
                        f"{self.out_idx[g]} != held output VC index "
                        f"{base + route * V + ovc}")
            elif route >= 0 and (not n or not buf[0].is_head):
                violations.append(
                    f"input port {port} vc {vc}: route {route} computed "
                    f"but no head flit is waiting for VC allocation")
            expect_ready = buf[0].ready_at if n else _INF
            if self.head_ready[g] != expect_ready:
                violations.append(
                    f"input port {port} vc {vc}: head_ready cache "
                    f"{self.head_ready[g]} != head flit ready_at "
                    f"{expect_ready}")
            in_pend = slot in pend
            in_cand = slot in cands
            parked_pend = (ovc < 0 and route >= 0
                           and slot in self.va_waiters[pb + route])
            parked_cand = (ovc >= 0
                           and self.credit_waiter[self.out_idx[g]] == slot)
            want_pend = bool(n) and buf[0].is_head and ovc < 0
            want_cand = ovc >= 0 and bool(n)
            if (in_pend or parked_pend) != want_pend:
                violations.append(
                    f"input port {port} vc {vc}: va_pending/waiter caches "
                    f"disagree with buffer state")
            if in_pend and parked_pend:
                violations.append(
                    f"input port {port} vc {vc}: slot both active and "
                    f"parked for VC allocation")
            if (in_cand or parked_cand) != want_cand:
                violations.append(
                    f"input port {port} vc {vc}: sa_cand/credit-waiter "
                    f"caches disagree with buffer/VC state")
            if in_cand and parked_cand:
                violations.append(
                    f"input port {port} vc {vc}: slot both active and "
                    f"credit-parked for switch allocation")
            if in_pend and in_cand:
                violations.append(
                    f"input port {port} vc {vc}: slot in both va_pending "
                    f"and sa_cand")
            if (in_cand and n
                    and self.out_credits[base + route * V + ovc] > 0
                    and self.min_ready[rid]
                    > max(self.head_ready[g], now + 1)):
                violations.append(
                    f"input port {port} vc {vc}: min_ready bound "
                    f"{self.min_ready[rid]} above eligible head "
                    f"(ready_at {self.head_ready[g]}, cycle {now})")
        if recount != self.buffered[rid]:
            violations.append(
                f"buffered-flit cache {self.buffered[rid]} != recount "
                f"{recount}")
        if recount and rid not in self.active:
            violations.append(
                f"router buffers {recount} flits but is missing from the "
                f"active-router set")
        for slot in range(S):
            port, vc = slot // V, slot % V
            owner = self.out_owner[base + slot]
            if owner >= 0:
                g = base + owner
                if self.out_vc[g] != vc or self.route_out[g] != port:
                    violations.append(
                        f"output port {port} vc {vc}: owned by input "
                        f"{owner // V}/{owner % V} which holds route "
                        f"{self.route_out[g]} out_vc {self.out_vc[g]}")
            if self.out_credits[base + slot] < 0:
                violations.append(
                    f"output port {port} vc {vc}: negative credit "
                    f"count {self.out_credits[base + slot]}")
        for port in range(self.n_ports):
            ob = base + port * V
            unowned = sum(1 for v in range(V)
                          if self.out_owner[ob + v] < 0)
            if self.free_out_vcs[pb + port] != unowned:
                violations.append(
                    f"output port {port}: free-VC cache "
                    f"{self.free_out_vcs[pb + port]} != unowned recount "
                    f"{unowned}")
            if self.va_waiters[pb + port] and unowned:
                violations.append(
                    f"output port {port}: heads parked waiting for a VC "
                    f"while {unowned} VCs are free")
            for v in range(V):
                waiter = self.credit_waiter[ob + v]
                if waiter < 0:
                    continue
                wg = base + waiter
                if self.out_credits[ob + v] != 0:
                    violations.append(
                        f"output port {port} vc {v}: slot parked on "
                        f"credits but {self.out_credits[ob + v]} credits "
                        f"are available")
                if self.out_vc[wg] < 0 or self.out_idx[wg] != ob + v:
                    violations.append(
                        f"output port {port} vc {v}: credit-parked slot "
                        f"{waiter // V}/{waiter % V} does not hold this "
                        f"output VC")
        return violations


class _InputVcView:
    """Read-only window mimicking ``router.InputVc`` over the core arrays
    (tests and debugging reach ``router.inputs[port][vc].buffer``)."""

    __slots__ = ("_core", "_g")

    def __init__(self, core: SoaCore, g: int):
        self._core = core
        self._g = g

    @property
    def buffer(self) -> deque:
        return self._core.bufs[self._g]

    @property
    def route(self) -> Optional[int]:
        route = self._core.route_out[self._g]
        return None if route < 0 else route

    @property
    def out_vc(self) -> Optional[int]:
        ovc = self._core.out_vc[self._g]
        return None if ovc < 0 else ovc


class FlatSlice:
    """A live, writable window of ``length`` elements of a flat list
    starting at ``base`` (``router.out_credits[port]`` compatibility)."""

    __slots__ = ("_store", "_base", "_length")

    def __init__(self, store: List[int], base: int, length: int):
        self._store = store
        self._base = base
        self._length = length

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < self._length:
            raise IndexError(index)
        return self._store[self._base + index]

    def __setitem__(self, index: int, value: int) -> None:
        if not 0 <= index < self._length:
            raise IndexError(index)
        self._store[self._base + index] = value

    def __iter__(self):
        base = self._base
        return iter(self._store[base:base + self._length])


class SoaRouter:
    """Stateless per-router view over a :class:`SoaCore`.

    Implements the object-core surface the network, sanitizer, fault
    recovery and tests use; the lazily-built ``inputs``/``out_credits``
    views exist purely for introspection (hot paths never touch them).
    """

    __slots__ = ("core", "router_id", "_inputs_view", "_credits_view")

    def __init__(self, core: SoaCore, router_id: int):
        self.core = core
        self.router_id = router_id
        self._inputs_view: Optional[List[List[_InputVcView]]] = None
        self._credits_view: Optional[List[FlatSlice]] = None

    # --- object-core API used by Network / faults / recovery

    def accept(self, port: int, vc: int, flit: Flit, now: int) -> None:
        self.core.accept(self.router_id, port, vc, flit, now)

    def set_output_credits(self, port: int, credits: int) -> None:
        self.core.set_output_credits(self.router_id, port, credits)

    def credit_return(self, port: int, vc: int) -> None:
        self.core.credit_return(self.router_id, port, vc)

    def next_ready(self, now: int) -> Optional[int]:
        return self.core.next_ready_router(self.router_id, now)

    def skip_cycles(self, count: int) -> None:
        self.core.skip_router(self.router_id, count)

    def occupancy(self) -> int:
        return self.core.occupancy(self.router_id)

    def audit(self) -> List[str]:
        return self.core.audit(self.router_id)

    def buffer_occupancy(self, port: int, vc: int) -> int:
        return self.core.buffer_occupancy(self.router_id, port, vc)

    def credit_count(self, port: int, vc: int) -> int:
        return self.core.credit_count(self.router_id, port, vc)

    # --- introspection mirrors of the object core's attributes

    @property
    def _buffered(self) -> int:
        return self.core.buffered[self.router_id]

    @property
    def n_ports(self) -> int:
        return self.core.n_ports

    @property
    def num_vcs(self) -> int:
        return self.core.num_vcs

    @property
    def vc_depth(self) -> int:
        return self.core.vc_depth

    @property
    def pipe_delay(self) -> int:
        return self.core.pipe_delay

    @property
    def inputs(self) -> List[List[_InputVcView]]:
        if self._inputs_view is None:
            core = self.core
            base = self.router_id * core.slots
            self._inputs_view = [
                [_InputVcView(core, base + port * core.num_vcs + vc)
                 for vc in range(core.num_vcs)]
                for port in range(core.n_ports)]
        return self._inputs_view

    @property
    def out_credits(self) -> List[FlatSlice]:
        if self._credits_view is None:
            core = self.core
            base = self.router_id * core.slots
            self._credits_view = [
                FlatSlice(core.out_credits, base + port * core.num_vcs,
                          core.num_vcs)
                for port in range(core.n_ports)]
        return self._credits_view

    @property
    def out_owner(self) -> List[List[Optional[Tuple[int, int]]]]:
        core = self.core
        V = core.num_vcs
        base = self.router_id * core.slots
        return [[None if core.out_owner[base + port * V + vc] < 0
                 else divmod(core.out_owner[base + port * V + vc], V)
                 for vc in range(V)]
                for port in range(core.n_ports)]


class NumpyCore(SoaCore):
    """SoA core with ``head_ready`` as a numpy array.

    The scalar per-flit loop is shared with :class:`SoaCore` (numpy scalar
    indexing is marginally slower there), but the wakeup reductions behind
    ``next_ready``/``skip_cycles`` vectorize — the win grows with mesh
    size and quiescence (16x16+ under low load).  Results stay
    bit-identical: reductions return plain ``int``s, never numpy scalars.
    """

    def __init__(self, config: NocConfig, topology: MeshTopology,
                 stats: NetworkStats, route):
        super().__init__(config, topology, stats, route)
        import numpy
        self._np = numpy
        self.head_ready = numpy.full(len(self.bufs), _INF,
                                     dtype=numpy.int64)

    def next_ready_all(self, now: int) -> Optional[int]:
        head_ready = self.head_ready
        eligible = head_ready[head_ready >= now]
        if not eligible.size:
            return None
        best = int(eligible.min())
        return None if best == _INF else best

    def next_ready_router(self, rid: int, now: int) -> Optional[int]:
        base = rid * self.slots
        segment = self.head_ready[base:base + self.slots]
        eligible = segment[segment >= now]
        if not eligible.size:
            return None
        best = int(eligible.min())
        return None if best == _INF else best
