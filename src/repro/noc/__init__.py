"""Cycle-accurate NoC substrate (Table 1 of the paper).

Wormhole-switched virtual-channel mesh with three-stage routers,
credit-based flow control, XY routing and compression-aware network
interfaces.
"""

from repro.noc.config import NocConfig, PAPER_CONFIG, TINY_CONFIG
from repro.noc.network import Network
from repro.noc.ni import NetworkInterface, TrafficRequest
from repro.noc.packet import Flit, Packet, PacketKind, fragment
from repro.noc.router import Router
from repro.noc.routing import get_routing_fn, xy_route, yx_route
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology

__all__ = [
    "NocConfig",
    "PAPER_CONFIG",
    "TINY_CONFIG",
    "Network",
    "NetworkInterface",
    "TrafficRequest",
    "Flit",
    "Packet",
    "PacketKind",
    "fragment",
    "Router",
    "get_routing_fn",
    "xy_route",
    "yx_route",
    "NetworkStats",
    "MeshTopology",
]
