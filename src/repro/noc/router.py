"""The three-stage virtual-channel wormhole router (Table 1).

Pipeline model: a flit arriving at cycle *t* becomes eligible for switch
allocation at ``t + stages - 1`` (route computation and VC allocation occupy
the first stage, switch allocation the second) and, when granted, traverses
switch + link to arrive at the next router at ``t + stages`` — a 3-cycle
per-hop zero-load latency for the paper's three-stage router.

Flow control is credit-based: one credit per downstream buffer slot,
decremented on switch traversal and returned when the downstream router (or
NI) drains the flit.  Virtual-channel allocation is per packet (wormhole):
an output VC is owned from head grant to tail traversal; round-robin
arbiters keep VA and SA fair.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from typing import Callable, List, Optional, Tuple

from repro.noc.packet import Flit


class InputVc:
    """State of one input virtual channel."""

    __slots__ = ("buffer", "route", "out_vc")

    def __init__(self):
        self.buffer: deque = deque()
        self.route: Optional[int] = None
        self.out_vc: Optional[int] = None


class Router:
    """One mesh router.

    The router is driven by :class:`~repro.noc.network.Network`, which calls
    :meth:`accept` for arriving flits and :meth:`cycle` once per simulated
    cycle with callbacks for flit departure and credit return.
    """

    def __init__(self, router_id: int, n_ports: int, num_vcs: int,
                 vc_depth: int, stages: int, stats):
        self.router_id = router_id
        self.n_ports = n_ports
        self.num_vcs = num_vcs
        self.vc_depth = vc_depth
        self.pipe_delay = max(stages - 1, 0)
        self.stats = stats
        self.inputs: List[List[InputVc]] = [
            [InputVc() for _ in range(num_vcs)]
            for _ in range(n_ports)]
        # Downstream credit view and packet ownership per (out port, out VC).
        self.out_credits: List[List[int]] = [
            [vc_depth] * num_vcs for _ in range(n_ports)]
        self.out_owner: List[List[Optional[Tuple[int, int]]]] = [
            [None] * num_vcs for _ in range(n_ports)]
        self._va_rr = [0] * n_ports
        self._va_input_rr = 0
        self._sa_rr = [0] * n_ports
        self._port_rr = 0
        # Buffered-flit count: lets idle routers skip their cycle entirely.
        self._buffered = 0
        # slot -> (port, vc), precomputed to keep divmod out of the VA loop.
        self._slot_table = tuple(
            (p, v) for p in range(n_ports) for v in range(num_vcs))
        # Slots (port * num_vcs + vc) whose buffers are non-empty: VA and SA
        # visit only these instead of scanning every input VC each cycle.
        self._occupied: set = set()
        # Per-out-port switch request lists, reused every cycle (cleared
        # with del lst[:]) so the SA stage allocates nothing.
        self._req_lists: List[List[int]] = [[] for _ in range(n_ports)]
        # Scratch list for the VA stage's rotated visiting order.
        self._va_order: List[int] = []

    # ------------------------------------------------------------ ingress

    def accept(self, port: int, vc: int, flit: Flit, now: int) -> None:
        """Buffer a flit arriving on an input VC (credit was pre-spent by
        the sender)."""
        ivc = self.inputs[port][vc]
        if len(ivc.buffer) >= self.vc_depth:
            raise RuntimeError(
                f"router {self.router_id} port {port} vc {vc}: buffer "
                f"overflow — upstream violated credit flow control")
        flit.ready_at = now + self.pipe_delay
        if not ivc.buffer:
            self._occupied.add(port * self.num_vcs + vc)
        ivc.buffer.append(flit)
        self._buffered += 1
        self.stats.buffer_writes += 1

    def set_output_credits(self, port: int, credits: int) -> None:
        """Resize the credit pool of an output port (ejection ports use a
        large value: the NI sink never backpressures)."""
        self.out_credits[port] = [credits] * self.num_vcs

    def credit_return(self, port: int, vc: int) -> None:
        """A downstream buffer slot freed up."""
        self.out_credits[port][vc] += 1

    # ---------------------------------------------------------- main loop

    def cycle(self, now: int, route_fn: Callable[[Flit], int],
              send: Callable[[int, int, Flit], None],
              credit: Callable[[int, int], None]) -> None:
        """Run one router cycle.

        ``route_fn(flit) -> out_port`` computes the route of a head flit at
        this router.  ``send(out_port, out_vc, flit)`` hands a traversing
        flit to the network; ``credit(in_port, in_vc)`` returns a credit
        upstream.
        """
        if self._buffered == 0:
            return
        self._route_and_allocate_vcs(route_fn)
        self._switch_allocate_and_traverse(now, send, credit)

    def _route_and_allocate_vcs(self, route_fn) -> None:
        """Stage 1: route computation + VC allocation for new heads.

        Input VCs are visited in a rotating order so that, when output VCs
        are scarce, no input port can monopolize them across cycles.
        """
        total = self.n_ports * self.num_vcs
        rotate = self._va_input_rr
        self._va_input_rr = (self._va_input_rr + self.num_vcs) % total
        slot_table = self._slot_table
        inputs = self.inputs
        # Visiting the occupied slots ranked by (slot - rotate) % total is
        # exactly the original full scan's rotating order with the empty
        # slots skipped — same allocation decisions, far fewer probes.
        occupied = self._occupied
        if len(occupied) > 1:
            # Rotated visiting order without a per-cycle key lambda:
            # slots are distinct, so ascending order split at the
            # rotation point equals ranking by (slot - rotate) % total.
            order = self._va_order
            order.extend(occupied)
            order.sort()
            split = bisect_left(order, rotate)
            if split:
                order[:] = order[split:] + order[:split]
            occupied = order
        for slot in occupied:
            port, vc = slot_table[slot]
            ivc = inputs[port][vc]
            head = ivc.buffer[0]
            if not head.is_head or ivc.out_vc is not None:
                continue
            if ivc.route is None:
                ivc.route = route_fn(head)
            out_port = ivc.route
            start = self._va_rr[out_port]
            owners = self.out_owner[out_port]
            for j in range(self.num_vcs):
                cand = (start + j) % self.num_vcs
                if owners[cand] is None:
                    # Ownership registration tuple: per-packet state.
                    # repro: allow[hot-alloc]
                    owners[cand] = (port, vc)
                    ivc.out_vc = cand
                    self._va_rr[out_port] = (cand + 1) % self.num_vcs
                    self.stats.vc_allocations += 1
                    break
        del self._va_order[:]

    def _switch_allocate_and_traverse(self, now, send, credit) -> None:
        """Stages 2+3: switch allocation, then switch/link traversal.

        A single pass over the input VCs collects the switch requests; each
        output port then picks one winner round-robin, subject to the
        one-flit-per-input-port crossbar constraint.
        """
        num_vcs = self.num_vcs
        n_ports = self.n_ports
        out_credits = self.out_credits
        inputs = self.inputs
        slot_table = self._slot_table
        req_lists = self._req_lists
        req_mask = 0
        # Request-list order does not influence grants (winners are picked
        # by unique slot rank) and slots are small ints whose set order is
        # content-determined, so the occupied set may be visited as-is.
        # repro: allow[unordered-iter]
        for slot in self._occupied:
            port, vc = slot_table[slot]
            ivc = inputs[port][vc]
            if ivc.out_vc is None:
                continue
            flit = ivc.buffer[0]
            if (flit.ready_at > now
                    or out_credits[ivc.route][ivc.out_vc] <= 0):
                continue
            req_lists[ivc.route].append(slot)
            req_mask |= 1 << ivc.route
        if not req_mask:
            return
        granted_inputs = 0
        total = n_ports * num_vcs
        prr = self._port_rr
        self._port_rr = (prr + 1) % n_ports
        # Visit only the requested output ports in the rotated
        # (prr-first) ascending order the sorted() call produced: rotate
        # the request mask so bit 0 is port prr, then peel set bits.
        pmask = (1 << n_ports) - 1
        m = (req_mask >> prr | req_mask << (n_ports - prr)) & pmask
        while m:
            low = m & -m
            m ^= low
            out_port = low.bit_length() - 1 + prr
            if out_port >= n_ports:
                out_port -= n_ports
            lst = req_lists[out_port]
            start = self._sa_rr[out_port]
            winner = -1
            best_rank = total
            for slot in lst:
                if granted_inputs >> (slot // num_vcs) & 1:
                    continue
                rank = (slot - start) % total
                if rank < best_rank:
                    best_rank, winner = rank, slot
            del lst[:]
            if winner < 0:
                continue
            in_port, in_vc = slot_table[winner]
            granted_inputs |= 1 << in_port
            self._sa_rr[out_port] = (winner + 1) % total
            self._traverse(in_port, in_vc, out_port, send, credit)

    def _traverse(self, in_port: int, in_vc: int, out_port: int,
                  send, credit) -> None:
        """Pop the winning flit, spend a credit, release state on tail."""
        ivc = self.inputs[in_port][in_vc]
        flit = ivc.buffer.popleft()
        self._buffered -= 1
        if not ivc.buffer:
            self._occupied.discard(in_port * self.num_vcs + in_vc)
        out_vc = ivc.out_vc
        self.out_credits[out_port][out_vc] -= 1
        self.stats.buffer_reads += 1
        self.stats.crossbar_traversals += 1
        if flit.is_tail:
            self.out_owner[out_port][out_vc] = None
            ivc.route = None
            ivc.out_vc = None
        credit(in_port, in_vc)
        send(out_port, out_vc, flit)

    # --------------------------------------------------- event horizon

    def next_ready(self, now: int) -> Optional[int]:
        """Earliest future cycle a head-of-line flit exits the router
        pipeline, or None (skip-safety wakeup; DESIGN.md §12).

        Only ``buffer[0]`` of each input VC matters: flits behind it cannot
        act before it moves, and it moving is activity that ends any skip
        window.  ``now`` is the next cycle to execute, so a head with
        ``ready_at == now`` still counts (it becomes eligible in the very
        next step); only heads strictly past ``ready_at`` contribute no
        wakeup — those were eligible during the last zero-activity cycle
        and are therefore provably blocked on credits or VC ownership,
        which only other activity can release.
        """
        horizon: Optional[int] = None
        inputs = self.inputs
        slot_table = self._slot_table
        # A min over the occupied slots is visit-order independent.
        # repro: allow[unordered-iter]
        for slot in self._occupied:
            port, vc = slot_table[slot]
            ready = inputs[port][vc].buffer[0].ready_at
            if ready >= now and (horizon is None or ready < horizon):
                horizon = ready
        return horizon

    def skip_cycles(self, count: int) -> None:
        """Account for ``count`` skipped zero-activity cycles.

        The only per-cycle state a zero-activity cycle advances is the VA
        input rotation, which moves by ``num_vcs`` every cycle the router
        holds a buffered flit; replaying it keeps arbitration after a skip
        bit-identical to having stepped.  Every other arbiter (``_va_rr``,
        ``_sa_rr``, ``_port_rr``) moves only on allocations or grants,
        which a zero-activity cycle by definition has none of.
        """
        if self._buffered:
            total = self.n_ports * self.num_vcs
            self._va_input_rr = (self._va_input_rr
                                 + count * self.num_vcs) % total

    # -------------------------------------------------------- inspection

    def occupancy(self) -> int:
        """Total buffered flits (used by drain detection and tests)."""
        return sum(len(vc.buffer) for port in self.inputs for vc in port)

    def buffer_occupancy(self, port: int, vc: int) -> int:
        """Flits buffered in input VC ``(port, vc)``.

        Core-neutral accessor: NoCSan's conservation audits use this (and
        :meth:`credit_count`) so the same checks run against both the
        object layout and the flat SoA layout (DESIGN.md §14).
        """
        return len(self.inputs[port][vc].buffer)

    def credit_count(self, port: int, vc: int) -> int:
        """Credits held for downstream VC ``(port, vc)``."""
        return self.out_credits[port][vc]

    def audit(self) -> List[str]:
        """NoCSan hook: cross-check the wormhole protocol state machine.

        Returns human-readable violation descriptions (empty when every
        invariant holds): buffer-occupancy caches must match the buffers,
        VC ownership must be bidirectionally consistent, a body flit at the
        head of line must already own an output VC, and credit counters may
        never go negative.
        """
        violations: List[str] = []
        recount = 0
        for port in range(self.n_ports):
            for vc in range(self.num_vcs):
                ivc = self.inputs[port][vc]
                n = len(ivc.buffer)
                recount += n
                if n > self.vc_depth:
                    violations.append(
                        f"input port {port} vc {vc}: {n} flits buffered, "
                        f"depth is {self.vc_depth}")
                if (port * self.num_vcs + vc in self._occupied) != (n > 0):
                    violations.append(
                        f"input port {port} vc {vc}: occupied-slot cache "
                        f"disagrees with buffer ({n} flits)")
                if n and not ivc.buffer[0].is_head and ivc.out_vc is None:
                    violations.append(
                        f"input port {port} vc {vc}: body flit at head of "
                        f"line without an allocated output VC")
                if ivc.out_vc is not None:
                    if ivc.route is None:
                        violations.append(
                            f"input port {port} vc {vc}: output VC "
                            f"{ivc.out_vc} held without a computed route")
                    elif self.out_owner[ivc.route][ivc.out_vc] != (port, vc):
                        violations.append(
                            f"input port {port} vc {vc}: holds output VC "
                            f"{ivc.route}/{ivc.out_vc} but ownership "
                            f"records "
                            f"{self.out_owner[ivc.route][ivc.out_vc]}")
                elif ivc.route is not None and (
                        not n or not ivc.buffer[0].is_head):
                    violations.append(
                        f"input port {port} vc {vc}: route {ivc.route} "
                        f"computed but no head flit is waiting for VC "
                        f"allocation")
        if recount != self._buffered:
            violations.append(
                f"buffered-flit cache {self._buffered} != recount "
                f"{recount}")
        for port in range(self.n_ports):
            for vc in range(self.num_vcs):
                owner = self.out_owner[port][vc]
                if owner is not None:
                    in_port, in_vc = owner
                    ivc = self.inputs[in_port][in_vc]
                    if ivc.out_vc != vc or ivc.route != port:
                        violations.append(
                            f"output port {port} vc {vc}: owned by input "
                            f"{in_port}/{in_vc} which holds route "
                            f"{ivc.route} out_vc {ivc.out_vc}")
                if self.out_credits[port][vc] < 0:
                    violations.append(
                        f"output port {port} vc {vc}: negative credit "
                        f"count {self.out_credits[port][vc]}")
        return violations
