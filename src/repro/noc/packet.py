"""Packets and flits.

NoC traffic is a mix of single-flit **control** packets (coherence requests,
acks) and multi-flit **data** packets carrying one cache block (§3.1).  The
dictionary protocol's update/invalidate notifications ride as single-flit
control packets too.

A packet is fragmented into flits at the source NI; the head flit carries
routing information (and is never compressed, which is what lets VC
arbitration overlap with compression, §4.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.compression.base import EncodedBlock, Notification
from repro.core.block import CacheBlock


class PacketKind(enum.Enum):
    """Traffic classes the simulator distinguishes."""

    CONTROL = "control"
    DATA = "data"
    NOTIFICATION = "notification"
    #: Fault-recovery negative acknowledgement (repro.faults): asks the
    #: source to retransmit a CRC-rejected data packet.
    NACK = "nack"

    @property
    def is_single_flit(self) -> bool:
        """Control and protocol packets (including NACKs) fit in one
        flit."""
        return self is not PacketKind.DATA


_packet_ids = itertools.count()


#: ``slots=True`` keeps per-packet allocations lean (one Packet per injected
#: packet, millions per sweep).
@dataclass(slots=True)
class Packet:
    """One network packet, with its latency-accounting timestamps."""

    src: int
    dst: int
    kind: PacketKind
    size_flits: int = 1
    block: Optional[CacheBlock] = None
    encoded: Optional[EncodedBlock] = None
    notification: Optional[Notification] = None
    #: Cycle the producer handed the packet to the NI.
    created: int = 0
    #: Earliest cycle injection may start (creation + compression latency;
    #: compression overlaps with queueing per §4.3).
    inject_ready: int = 0
    #: Whether the (non-overlapped) compression stall was already applied.
    compression_started: bool = False
    #: Cycle the head flit entered the router.
    head_injected: int = -1
    #: Cycle the tail flit was ejected at the destination.
    tail_ejected: int = -1
    #: Fault-injection metadata (repro.faults.inject.PacketFaultState):
    #: recorded corruption on data packets, the NACKed pid on NACKs.
    #: Always None when fault injection is off.
    fault: Optional[object] = None
    pid: int = field(default_factory=lambda: next(_packet_ids))

    def __post_init__(self) -> None:
        if self.src == self.dst:
            raise ValueError("packet source and destination must differ")
        if self.size_flits < 1:
            raise ValueError("a packet needs at least one flit")

    @property
    def queue_latency(self) -> int:
        """NI queueing (+ non-overlapped compression) latency."""
        return self.head_injected - self.created

    @property
    def network_latency(self) -> int:
        """Head injection to tail ejection."""
        return self.tail_ejected - self.head_injected


class Flit:
    """One flow-control unit.  Lean on purpose: millions are created."""

    __slots__ = ("packet", "is_head", "is_tail", "ready_at")

    def __init__(self, packet: Packet, is_head: bool, is_tail: bool):
        self.packet = packet
        self.is_head = is_head
        self.is_tail = is_tail
        #: Earliest cycle this flit may leave the current router (set on
        #: arrival to model the router pipeline).
        self.ready_at = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        role = "H" if self.is_head else ("T" if self.is_tail else "B")
        return f"<Flit {role} pkt={self.packet.pid}>"


def fragment(packet: Packet) -> List[Flit]:
    """Split a packet into its flits (head first, tail last)."""
    n = packet.size_flits
    if n == 1:
        flit = Flit(packet, is_head=True, is_tail=True)
        return [flit]
    flits = [Flit(packet, is_head=(i == 0), is_tail=(i == n - 1))
             for i in range(n)]
    return flits
