"""NoC configuration (Table 1 of the paper).

The defaults reproduce the paper's detailed-network setup: a 4x4 2-D
concentrated mesh (32 cores, concentration 2), three-stage 2 GHz routers,
4 virtual channels of 4 flits each, 64-bit flits, wormhole switching and XY
routing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.config import FaultConfig


@dataclass(frozen=True, slots=True)
class NocConfig:
    """Static parameters of the simulated network."""

    #: Mesh dimensions, in routers.
    mesh_width: int = 4
    mesh_height: int = 4
    #: Nodes (cores/L2 slices/MCs) attached per router.
    concentration: int = 2
    #: Virtual channels per input port.
    num_vcs: int = 4
    #: Buffer depth per virtual channel, in flits.
    vc_depth: int = 4
    #: Flit width, in bytes (Table 1: 64-bit flits).
    flit_bytes: int = 8
    #: Router pipeline depth in cycles (Table 1: three-stage routers).
    router_stages: int = 3
    #: Link traversal latency, in cycles.
    link_cycles: int = 1
    #: Cache block carried by one data packet, in bytes.
    block_bytes: int = 64
    #: Router clock, only used to express power in watts.
    frequency_ghz: float = 2.0
    #: §4.3 latency-hiding optimization: overlap compression with NI
    #: queueing (disable for the ablation study).
    overlap_compression: bool = True
    #: Enable NoCSan, the runtime invariant sanitizer (see
    #: :mod:`repro.verify.sanitizer`).  Also switched on globally by the
    #: ``REPRO_SANITIZE`` environment variable.
    sanitize: bool = False
    #: Event-horizon fast path: let ``Network.run()``/``drain()`` jump over
    #: provably-quiescent cycles (bit-identical results; DESIGN.md §12).
    #: Disable to force always-step execution, as the equivalence tests do
    #: for their reference runs.
    event_horizon: bool = True
    #: Count per-phase activity ticks and skipped cycles in
    #: :class:`~repro.noc.stats.NetworkStats` (cheap observability for the
    #: event-horizon fast path; off by default to keep ``step()`` lean).
    profile_phases: bool = False
    #: Deterministic fault-injection layer (DESIGN.md §13).  None disables
    #: it entirely; an all-zero :class:`~repro.faults.config.FaultConfig`
    #: builds the layer but is bit-identical to None.
    faults: Optional[FaultConfig] = None
    #: Simulation-core backend (DESIGN.md §14): ``"soa"`` (default) steps
    #: all routers in one batched pass over flat state arrays, ``"object"``
    #: keeps the per-object reference routers, ``"numpy"`` adds vectorized
    #: wakeup reductions (optional dependency, ``pip install .[fast]``).
    #: All three are bit-identical; ``router_factory`` forces ``object``.
    core: str = "soa"

    def __post_init__(self) -> None:
        for name in ("mesh_width", "mesh_height", "concentration", "num_vcs",
                     "vc_depth", "flit_bytes", "router_stages", "link_cycles",
                     "block_bytes"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.core not in ("object", "soa", "numpy"):
            raise ValueError(
                f"core must be one of 'object', 'soa', 'numpy', "
                f"got {self.core!r}")

    @property
    def n_routers(self) -> int:
        """Routers in the mesh."""
        return self.mesh_width * self.mesh_height

    @property
    def n_nodes(self) -> int:
        """Network endpoints (NIs)."""
        return self.n_routers * self.concentration

    @property
    def words_per_block(self) -> int:
        """32-bit words per data-packet payload."""
        return self.block_bytes // 4

    @property
    def uncompressed_data_flits(self) -> int:
        """Flits of an uncompressed data packet (head + payload)."""
        return 1 + -(-self.block_bytes // self.flit_bytes)


#: The paper's Table 1 network.
PAPER_CONFIG = NocConfig()

#: Smaller network used by fast tests.
TINY_CONFIG = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
