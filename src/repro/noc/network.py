"""The network: routers + NIs wired over a mesh, advanced cycle by cycle.

Per-cycle sequencing (all effects of cycle *t* become visible at *t+1*):

1. deliver flits sent at *t-1* into router buffers / NI ejection;
2. run traffic generation and NI decode completions;
3. NIs inject (at most one flit each) into their router's local port;
4. routers run RC/VA/SA and traverse winning flits (departures are queued
   for delivery at *t+1*; credits are collected);
5. credits collected in (4) are applied, becoming usable at *t+1*.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.compression.base import CompressionScheme
from repro.noc.config import NocConfig
from repro.noc.ni import NetworkInterface, TrafficRequest
from repro.noc.packet import Flit, PacketKind
from repro.noc.router import Router
from repro.noc.routing import get_routing_fn
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, NUM_DIRECTIONS

#: Effectively infinite credit for ejection ports: the NI sink never
#: backpressures (decode bandwidth is provisioned, §4.3).
EJECTION_CREDITS = 1 << 30


class Network:
    """A complete simulated NoC under one compression scheme."""

    def __init__(self, config: NocConfig, scheme: CompressionScheme,
                 routing: str = "xy",
                 on_deliver: Optional[Callable] = None):
        if scheme.n_nodes != config.n_nodes:
            raise ValueError(
                f"scheme built for {scheme.n_nodes} nodes but the network "
                f"has {config.n_nodes}")
        self.config = config
        self.scheme = scheme
        self.topology = MeshTopology(config)
        self.stats = NetworkStats()
        self._route = get_routing_fn(routing)
        self.cycle = 0
        self.routers = [
            Router(r, self.topology.ports_per_router, config.num_vcs,
                   config.vc_depth, config.router_stages, self.stats)
            for r in range(config.n_routers)]
        for router in self.routers:
            for port in range(NUM_DIRECTIONS, self.topology.ports_per_router):
                router.set_output_credits(port, EJECTION_CREDITS)
        self.nis = [
            NetworkInterface(node, scheme, config.num_vcs, config.vc_depth,
                             self.stats, flit_bytes=config.flit_bytes,
                             on_deliver=on_deliver,
                             overlap_compression=config.overlap_compression)
            for node in range(config.n_nodes)]
        self.traffic_source = None
        # (dst_router, port, vc, flit) due next cycle.
        self._pending_router_arrivals: List[Tuple[int, int, int, Flit]] = []
        # (node, flit) ejections due next cycle.
        self._pending_ejections: List[Tuple[int, Flit]] = []
        # (router, port, vc) credits to apply at end of cycle.
        self._credit_events: List[Tuple[int, int, int]] = []
        self._route_fns = [self._make_route_fn(r)
                           for r in range(config.n_routers)]
        self._send_fns = [self._make_send_fn(r)
                          for r in range(config.n_routers)]
        self._credit_fns = [self._make_credit_fn(r)
                            for r in range(config.n_routers)]
        self._accept_fns = [self._make_accept_fn(n)
                            for n in range(config.n_nodes)]

    # -------------------------------------------------------------- wiring

    def _make_route_fn(self, router_id: int):
        topology = self.topology
        route = self._route

        def route_fn(flit: Flit) -> int:
            return route(topology, router_id, flit.packet.dst)

        return route_fn

    def _make_send_fn(self, rid: int):
        topology = self.topology
        stats = self.stats

        def send(out_port: int, out_vc: int, flit: Flit) -> None:
            link = topology.link(rid, out_port)
            if link is not None:
                stats.link_traversals += 1
                self._pending_router_arrivals.append(
                    (link.dst_router, link.dst_port, out_vc, flit))
            else:
                node = topology.node_at(rid, out_port)
                self._pending_ejections.append((node, flit))

        return send

    def _make_credit_fn(self, rid: int):
        events = self._credit_events

        def credit(in_port: int, in_vc: int) -> None:
            events.append((rid, in_port, in_vc))

        return credit

    def _make_accept_fn(self, node: int):
        router = self.routers[self.topology.router_of(node)]
        port = self.topology.local_port_of(node)

        def accept(vc: int, flit: Flit, now: int) -> None:
            router.accept(port, vc, flit, now)

        return accept

    def set_traffic(self, source) -> None:
        """Attach a traffic source (``generate(cycle) -> [TrafficRequest]``)."""
        self.traffic_source = source

    def submit(self, request: TrafficRequest) -> None:
        """Directly enqueue one request at its source NI (trace replay and
        cache-simulator driven modes use this)."""
        self.nis[request.src].submit(request, self.cycle)

    # ---------------------------------------------------------- main loop

    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        self._deliver_arrivals(now)
        if self.traffic_source is not None:
            for request in self.traffic_source.generate(now):
                self.nis[request.src].submit(request, now)
        for ni in self.nis:
            ni.process(now)
        self._inject_all(now)
        self._cycle_routers(now)
        self._apply_credits()
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 100_000) -> bool:
        """Run with traffic off until the network is empty.

        Returns True when fully drained, False on the cycle budget expiring
        (which a test would treat as a deadlock).
        """
        saved = self.traffic_source
        self.traffic_source = None
        try:
            for _ in range(max_cycles):
                if self.idle():
                    return True
                self.step()
            return self.idle()
        finally:
            self.traffic_source = saved

    def idle(self) -> bool:
        """No flit buffered, in flight, queued or pending anywhere."""
        if self._pending_router_arrivals or self._pending_ejections:
            return False
        if any(ni.busy() for ni in self.nis):
            return False
        return all(router.occupancy() == 0 for router in self.routers)

    # ------------------------------------------------------------ phases

    def _deliver_arrivals(self, now: int) -> None:
        router_arrivals = self._pending_router_arrivals
        ejections = self._pending_ejections
        self._pending_router_arrivals = []
        self._pending_ejections = []
        for router_id, port, vc, flit in router_arrivals:
            self.routers[router_id].accept(port, vc, flit, now)
        for node, flit in ejections:
            self.nis[node].eject(flit, now)

    def _inject_all(self, now: int) -> None:
        for ni, accept in zip(self.nis, self._accept_fns):
            ni.inject(now, accept)

    def _cycle_routers(self, now: int) -> None:
        for router in self.routers:
            rid = router.router_id
            router.cycle(now, self._route_fns[rid], self._send_fns[rid],
                         self._credit_fns[rid])

    def _apply_credits(self) -> None:
        topology = self.topology
        for rid, in_port, vc in self._credit_events:
            if in_port >= NUM_DIRECTIONS:
                node = topology.node_at(rid, in_port)
                self.nis[node].credit(vc)
            else:
                upstream = topology.neighbor(rid, in_port)
                if upstream is None:  # pragma: no cover - impossible by wiring
                    continue
                opposite = {0: 2, 2: 0, 1: 3, 3: 1}[in_port]
                self.routers[upstream].credit_return(opposite, vc)
        del self._credit_events[:]
