"""The network: routers + NIs wired over a mesh, advanced cycle by cycle.

Per-cycle sequencing (all effects of cycle *t* become visible at *t+1*):

1. deliver flits sent at *t-1* into router buffers / NI ejection;
2. run traffic generation and NI decode completions;
3. NIs inject (at most one flit each) into their router's local port;
4. routers run RC/VA/SA and traverse winning flits (departures are queued
   for delivery at *t+1*; credits are collected);
5. credits collected in (4) are applied, becoming usable at *t+1*.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.compression.base import CompressionScheme
from repro.noc.config import NocConfig
from repro.noc.ni import NetworkInterface, TrafficRequest
from repro.noc.packet import Flit
from repro.noc.router import Router
from repro.noc.routing import get_routing_fn
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, NUM_DIRECTIONS

#: Effectively infinite credit for ejection ports: the NI sink never
#: backpressures (decode bandwidth is provisioned, §4.3).
EJECTION_CREDITS = 1 << 30

#: Opposite cardinal direction per input port (N<->S, E<->W), used when
#: returning credits upstream.  Hoisted out of the per-credit hot loop.
OPPOSITE_PORT = (2, 3, 0, 1)


class Network:
    """A complete simulated NoC under one compression scheme."""

    def __init__(self, config: NocConfig, scheme: CompressionScheme,
                 routing: str = "xy",
                 on_deliver: Optional[Callable] = None,
                 router_factory: Optional[Callable[..., Router]] = None):
        if scheme.n_nodes != config.n_nodes:
            raise ValueError(
                f"scheme built for {scheme.n_nodes} nodes but the network "
                f"has {config.n_nodes}")
        # Static verification gate: prove the (config, routing) pair
        # deadlock-free and internally consistent before building anything.
        # Imported lazily — repro.verify imports repro.noc modules at import
        # time, so a module-level import here would be circular.
        from repro.verify.static import ensure_network_verified
        ensure_network_verified(config, routing)
        self.config = config
        self.scheme = scheme
        self.topology = MeshTopology(config)
        self.stats = NetworkStats()
        self._route = get_routing_fn(routing)
        self.cycle = 0
        make_router = router_factory if router_factory is not None else Router
        self.routers = [
            make_router(r, self.topology.ports_per_router, config.num_vcs,
                        config.vc_depth, config.router_stages, self.stats)
            for r in range(config.n_routers)]
        for router in self.routers:
            for port in range(NUM_DIRECTIONS, self.topology.ports_per_router):
                router.set_output_credits(port, EJECTION_CREDITS)
        self.nis = [
            NetworkInterface(node, scheme, config.num_vcs, config.vc_depth,
                             self.stats, flit_bytes=config.flit_bytes,
                             on_deliver=on_deliver,
                             overlap_compression=config.overlap_compression)
            for node in range(config.n_nodes)]
        self.traffic_source = None
        # (dst_router, port, vc, flit) due next cycle.
        self._pending_router_arrivals: List[Tuple[int, int, int, Flit]] = []
        # (node, flit) ejections due next cycle.
        self._pending_ejections: List[Tuple[int, Flit]] = []
        # (router, port, vc) credits to apply at end of cycle.
        self._credit_events: List[Tuple[int, int, int]] = []
        # Active-NI fast path (mirrors the router ``_buffered`` skip): an NI
        # with nothing queued, in flight or decoding is skipped entirely in
        # :meth:`step`.  Flags are raised on submit/eject and lowered once
        # the NI reports idle again.
        self._ni_active = [False] * config.n_nodes
        # Credit destination per (router, input port): the attached NI for
        # local ports, the upstream router + opposite port otherwise.
        # Precomputed so _apply_credits does no topology lookups.
        self._credit_targets: List[List[Optional[Tuple]]] = [
            [self._credit_target(r, p)
             for p in range(self.topology.ports_per_router)]
            for r in range(config.n_routers)]
        self._route_fns = [self._make_route_fn(r)
                           for r in range(config.n_routers)]
        self._send_fns = [self._make_send_fn(r)
                          for r in range(config.n_routers)]
        self._credit_fns = [self._make_credit_fn(r)
                            for r in range(config.n_routers)]
        self._accept_fns = [self._make_accept_fn(n)
                            for n in range(config.n_nodes)]
        # NoCSan: when enabled, route every callback through the sanitizer.
        # When disabled, the fast path above is untouched (zero-cost
        # opt-out).  Lazy import for the same cycle reason as above.
        from repro.verify.sanitizer import sanitize_enabled
        self._sanitizer = None
        if sanitize_enabled(config):
            from repro.verify.sanitizer import NocSanitizer
            sanitizer = NocSanitizer(self)
            self._sanitizer = sanitizer
            self._send_fns = [sanitizer.wrap_send(r, fn)
                              for r, fn in enumerate(self._send_fns)]
            self._credit_fns = [sanitizer.wrap_credit(r, fn)
                                for r, fn in enumerate(self._credit_fns)]
            self._accept_fns = [sanitizer.wrap_accept(n, fn)
                                for n, fn in enumerate(self._accept_fns)]
            for ni in self.nis:
                ni.on_deliver = sanitizer.wrap_deliver(ni.node_id,
                                                       ni.on_deliver)

    # -------------------------------------------------------------- wiring

    def _make_route_fn(self, router_id: int):
        topology = self.topology
        route = self._route

        def route_fn(flit: Flit) -> int:
            return route(topology, router_id, flit.packet.dst)

        return route_fn

    def _credit_target(self, rid: int, in_port: int) -> Optional[Tuple]:
        """``(True, node)`` for local ports, ``(False, upstream, port)`` for
        linked directions, None at mesh edges (unreachable by wiring)."""
        if in_port >= NUM_DIRECTIONS:
            return (True, self.topology.node_at(rid, in_port))
        upstream = self.topology.neighbor(rid, in_port)
        if upstream is None:
            return None
        return (False, upstream, OPPOSITE_PORT[in_port])

    def _make_send_fn(self, rid: int):
        topology = self.topology
        stats = self.stats
        # Per-port destination, resolved once: (dst_router, dst_port) for
        # linked directions, (None, node) for local/ejection ports.
        targets = []
        for port in range(topology.ports_per_router):
            link = topology.link(rid, port)
            if link is not None:
                targets.append((link.dst_router, link.dst_port))
            elif port >= NUM_DIRECTIONS:
                targets.append((None, topology.node_at(rid, port)))
            else:
                targets.append(None)  # mesh edge: never routed to

        def send(out_port: int, out_vc: int, flit: Flit) -> None:
            target = targets[out_port]
            dst_router, dst_port = target
            if dst_router is not None:
                stats.link_traversals += 1
                self._pending_router_arrivals.append(
                    (dst_router, dst_port, out_vc, flit))
            else:
                self._pending_ejections.append((dst_port, flit))

        return send

    def _make_credit_fn(self, rid: int):
        events = self._credit_events

        def credit(in_port: int, in_vc: int) -> None:
            events.append((rid, in_port, in_vc))

        return credit

    def _make_accept_fn(self, node: int):
        router = self.routers[self.topology.router_of(node)]
        port = self.topology.local_port_of(node)

        def accept(vc: int, flit: Flit, now: int) -> None:
            router.accept(port, vc, flit, now)

        return accept

    def set_traffic(self, source) -> None:
        """Attach a traffic source (``generate(cycle) -> [TrafficRequest]``)."""
        self.traffic_source = source

    def submit(self, request: TrafficRequest) -> None:
        """Directly enqueue one request at its source NI (trace replay and
        cache-simulator driven modes use this)."""
        self.nis[request.src].submit(request, self.cycle)
        self._ni_active[request.src] = True

    # ---------------------------------------------------------- main loop

    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        self._deliver_arrivals(now)
        active = self._ni_active
        if self.traffic_source is not None:
            for request in self.traffic_source.generate(now):
                self.nis[request.src].submit(request, now)
                active[request.src] = True
        # Only NIs with queued, in-flight or decoding work take their turn;
        # idle ones are skipped (analogous to the router _buffered skip).
        # Per-NI process+inject ordering is unchanged: NIs never interact
        # with each other within a cycle.
        nis = self.nis
        accept_fns = self._accept_fns
        for node in range(len(nis)):
            if not active[node]:
                continue
            ni = nis[node]
            ni.process(now)
            ni.inject(now, accept_fns[node])
            if not ni.busy():
                active[node] = False
        self._cycle_routers(now)
        self._apply_credits()
        if self._sanitizer is not None:
            self._sanitizer.after_cycle(now)
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` cycles."""
        for _ in range(cycles):
            self.step()

    def drain(self, max_cycles: int = 100_000) -> bool:
        """Run with traffic off until the network is empty.

        Returns True when fully drained, False on the cycle budget expiring
        (which a test would treat as a deadlock).
        """
        saved = self.traffic_source
        self.traffic_source = None
        try:
            for _ in range(max_cycles):
                if self.idle():
                    return True
                self.step()
            return self.idle()
        finally:
            self.traffic_source = saved

    def idle(self) -> bool:
        """No flit buffered, in flight, queued or pending anywhere."""
        if self._pending_router_arrivals or self._pending_ejections:
            return False
        if any(ni.busy() for ni in self.nis):
            return False
        return all(router.occupancy() == 0 for router in self.routers)

    # ------------------------------------------------------------ phases

    def _deliver_arrivals(self, now: int) -> None:
        router_arrivals = self._pending_router_arrivals
        ejections = self._pending_ejections
        self._pending_router_arrivals = []
        self._pending_ejections = []
        for router_id, port, vc, flit in router_arrivals:
            self.routers[router_id].accept(port, vc, flit, now)
        active = self._ni_active
        for node, flit in ejections:
            self.nis[node].eject(flit, now)
            active[node] = True

    def _cycle_routers(self, now: int) -> None:
        for router in self.routers:
            rid = router.router_id
            router.cycle(now, self._route_fns[rid], self._send_fns[rid],
                         self._credit_fns[rid])

    def _apply_credits(self) -> None:
        events = self._credit_events
        if not events:
            return
        targets = self._credit_targets
        nis = self.nis
        routers = self.routers
        for rid, in_port, vc in events:
            target = targets[rid][in_port]
            if target is None:  # pragma: no cover - impossible by wiring
                continue
            if target[0]:  # local port: credit the attached NI
                nis[target[1]].credit(vc)
            else:
                routers[target[1]].credit_return(target[2], vc)
        del events[:]
