"""The network: routers + NIs wired over a mesh, advanced cycle by cycle.

Per-cycle sequencing (all effects of cycle *t* become visible at *t+1*):

1. deliver flits sent at *t-1* into router buffers / NI ejection;
2. run traffic generation and NI decode completions;
3. NIs inject (at most one flit each) into their router's local port;
4. routers run RC/VA/SA and traverse winning flits (departures are queued
   for delivery at *t+1*; credits are collected);
5. credits collected in (4) are applied, becoming usable at *t+1*.

**Event horizon** (DESIGN.md §12): :meth:`Network.run` and
:meth:`Network.drain` skip stretches of simulated time that provably
contain no work.  When the last stepped cycle had zero activity (or no
flit is buffered anywhere) and nothing is pending for the next cycle, the
network state is at a fixed point: stepping can only repeat it until one of
the registered wakeups fires — the traffic source's next injection
(``next_arrival``), an NI timer (``next_work``) or a router pipeline exit
(``next_ready``).  ``_fast_forward`` jumps ``cycle`` and ``stats.cycles``
straight to that horizon, replaying the one piece of per-cycle state a
quiescent cycle advances (the VA input rotation) so every observable
number is bit-identical to having stepped.  The accounting that makes the
quiescence proof O(1) lives in :data:`SKIP_ACCOUNTED_STATE`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.compression.base import CompressionScheme
from repro.noc.config import NocConfig
from repro.noc.ni import NetworkInterface, TrafficRequest
from repro.noc.packet import Flit
from repro.noc.router import Router
from repro.noc.routing import get_routing_fn
from repro.noc.stats import NetworkStats
from repro.noc.topology import MeshTopology, NUM_DIRECTIONS

#: Effectively infinite credit for ejection ports: the NI sink never
#: backpressures (decode bandwidth is provisioned, §4.3).
EJECTION_CREDITS = 1 << 30

#: Opposite cardinal direction per input port (N<->S, E<->W), used when
#: returning credits upstream.  Hoisted out of the per-credit hot loop.
OPPOSITE_PORT = (2, 3, 0, 1)

#: Valid skip-safety classifications for :data:`SKIP_ACCOUNTED_STATE`.
SKIP_CLASSIFICATIONS = frozenset({
    # set at construction and never reassigned while simulating
    "static",
    # unchanged across any zero-activity cycle (the §12 fixed-point
    # argument covers it; activity that changes it ends the skip window)
    "frozen",
    # O(1) activity accounting, maintained on every state transition and
    # consulted by the skip precondition / idle()
    "counter",
    # pending-event queue: the skip precondition requires it empty
    "queue",
    # carries a future-work timer surfaced to _skip_horizon through
    # next_arrival / next_work / next_ready
    "wakeup",
    # advances every cycle regardless of activity; Router.skip_cycles
    # replays it across a skipped window
    "replayed",
    # the simulated-time counters themselves, advanced by _fast_forward
    "clock",
    # conservative cached bound consulted only to *skip work* (never to
    # decide an outcome): staleness across a skipped window costs extra
    # scans, not correctness, so skip/step divergence is unobservable
    "advisory",
    # intra-cycle scratch: filled and drained within one cycle pass, so
    # it is provably empty whenever a skip window is even considered
    "scratch",
    # quiescence-proof bookkeeping: recomputed before every use, never
    # part of simulated state, so skip/step runs may disagree on it
    # without observable divergence
    "proof",
})

#: Skip-safety accounting registry (lint rule REPRO701).  Every mutable
#: state attribute assigned in ``Network.__init__``, ``Router.__init__`` or
#: ``NetworkInterface.__init__`` must appear here with the classification
#: explaining how the event-horizon fast path stays sound in its presence.
#: A new field that is absent fails the linter: unclassified state could
#: silently advance during cycles the fast path proves "dead", breaking the
#: bit-identity guarantee.  NoCSan cross-checks the ``counter`` entries
#: against full recounts every sanitized cycle.
SKIP_ACCOUNTED_STATE: Dict[str, Dict[str, str]] = {
    "Network": {
        "config": "static",
        "scheme": "frozen",
        "topology": "static",
        "stats": "clock",
        "_route": "static",
        "cycle": "clock",
        "routers": "static",
        "nis": "static",
        "traffic_source": "wakeup",
        "_pending_router_arrivals": "queue",
        "_pending_ejections": "queue",
        "_credit_events": "queue",
        "_ni_active": "counter",
        "_busy_ni_count": "counter",
        "_buffered_total": "counter",
        # Quiescence-proof flag: recomputed by every step/_quiet_step
        # before _may_skip consults it, so it carries no state across
        # cycles (the 'counter' claim it previously made was wrong —
        # it is wholesale-assigned, never incrementally maintained).
        "_quiet": "proof",
        "_credit_targets": "static",
        "_route_fns": "static",
        "_send_fns": "static",
        "_credit_fns": "static",
        "_accept_fns": "static",
        "_sanitizer": "static",
        "_skipping": "static",
        "_profile": "static",
        # Cycle stamp of the last quiescence proof, paired with _quiet.
        "_proof_cycle": "proof",
        # The fault injector is itself skip-safe: traversal-coupled models
        # only act on activity, and its scheduled models pin wakeups via
        # next_event (consulted by _skip_horizon); see DESIGN.md §13.
        "_faults": "wakeup",
        "_fault_tick": "static",
        "_core": "static",
    },
    # Struct-of-arrays core (DESIGN.md §14): the flat arrays carry exactly
    # the object core's state, so each inherits its classification —
    # bufs/head_ready are the wakeup-pinning buffers, va_input_rr is the
    # replayed rotation, buffered the O(1) activity counter, and the
    # arbiter/ownership arrays are frozen across zero-activity cycles.
    "SoaCore": {
        "n_routers": "static",
        "n_ports": "static",
        "num_vcs": "static",
        "vc_depth": "static",
        "pipe_delay": "static",
        "slots": "static",
        "stats": "static",
        "bufs": "wakeup",
        "head_ready": "wakeup",
        "route_out": "frozen",
        "out_vc": "frozen",
        "out_credits": "frozen",
        "out_owner": "frozen",
        # Pure caches of frozen allocation state (flat index of the held
        # output VC; unowned-VC count per out port): change only when an
        # allocation event does, which quiescent cycles have none of.
        "out_idx": "frozen",
        "free_out_vcs": "frozen",
        # SA scratch, provably empty between cycles (drained by the same
        # cycle_all pass that fills it) — 'scratch', not 'static': the
        # list objects are appended to and cleared every active cycle.
        "_req_lists": "scratch",
        # VA/SA scratch lists reused across router visits within one
        # cycle_all pass; emptied after every use, so never carry state.
        "_scratch_elig": "scratch",
        "_scratch_parked": "scratch",
        # Parked slots (credit-blocked SA candidates; VC-starved heads)
        # move only on allocation activity or credit returns, neither of
        # which occurs in a skipped window.
        "credit_waiter": "frozen",
        "va_waiters": "frozen",
        "va_rr": "frozen",
        "sa_rr": "frozen",
        "port_rr": "frozen",
        "va_input_rr": "replayed",
        "buffered": "counter",
        # Lazily-pruned cache of buffered routers; a skipped window buffers
        # and drains nothing, so membership cannot change across it.
        "active": "frozen",
        "va_pending": "frozen",
        "sa_cand": "frozen",
        "min_ready": "advisory",
        "route_table": "static",
        "send_targets": "static",
        "credit_dests": "static",
        "routers": "static",
        "net": "static",
        "send_fns": "static",
        "credit_fns": "static",
    },
    "NumpyCore": {
        "_np": "static",
        "head_ready": "wakeup",
    },
    "SoaRouter": {
        "core": "static",
        "router_id": "static",
        "_inputs_view": "static",
        "_credits_view": "static",
    },
    "Router": {
        "router_id": "static",
        "n_ports": "static",
        "num_vcs": "static",
        "vc_depth": "static",
        "pipe_delay": "static",
        "stats": "static",
        "inputs": "wakeup",
        "out_credits": "frozen",
        "out_owner": "frozen",
        "_va_rr": "frozen",
        "_va_input_rr": "replayed",
        "_sa_rr": "frozen",
        "_port_rr": "frozen",
        "_buffered": "counter",
        "_slot_table": "static",
        "_occupied": "frozen",
        # Per-cycle scratch (SA request lists; VA visiting order), filled
        # and drained within a single cycle() call.
        "_req_lists": "scratch",
        "_va_order": "scratch",
    },
    "NetworkInterface": {
        "node_id": "static",
        "scheme": "static",
        "codec": "frozen",
        "stats": "static",
        "flit_bytes": "static",
        "num_vcs": "static",
        "on_deliver": "static",
        "overlap_compression": "static",
        "_queue": "wakeup",
        "_current_flits": "wakeup",
        "_current_index": "frozen",
        "_current_vc": "frozen",
        "_vc_rr": "frozen",
        "_credits": "frozen",
        "_pending_decodes": "wakeup",
        "_outbound_notifications": "wakeup",
        "_fault_layer": "static",
    },
    # Streaming trace replay (repro.traffic.tracefile; DESIGN.md §17).
    # The replay cursor mirrors TraceTraffic's and moves only inside
    # generate(), i.e. only on cycles with actual injections — which end
    # any skip window — so every cursor field is 'frozen'.  next_arrival
    # is pure: it reads the due cycle from the cached chunk or via an O(1)
    # peek of the mapping, and never touches the chunk cache.
    "StreamingTraceTraffic": {
        "_file": "static",
        "_path": "static",
        "loop": "static",
        "approx_override": "static",
        "_start": "static",
        "_stop": "static",
        "_index": "frozen",
        "_offset": "frozen",
        "_ordinal": "frozen",
        "_chunk": "frozen",
        "_chunk_lo": "frozen",
        "_chunk_hi": "frozen",
    },
    # Read-only mmap view: everything is fixed at open.  The mapping and
    # file handle are rebound (to None) only by close(), which never runs
    # while a network is simulating — 'frozen', not 'static'.
    "TraceFile": {
        "path": "static",
        "_fh": "frozen",
        "_mm": "frozen",
        "record_count": "static",
        "n_nodes": "static",
        "chunk_records": "static",
        "_records_off": "static",
        "_heap_off": "static",
        "_heap_words": "static",
        "_index_off": "static",
        "_n_chunks": "static",
    },
}


class Network:
    """A complete simulated NoC under one compression scheme."""

    def __init__(self, config: NocConfig, scheme: CompressionScheme,
                 routing: str = "xy",
                 on_deliver: Optional[Callable] = None,
                 router_factory: Optional[Callable[..., Router]] = None):
        if scheme.n_nodes != config.n_nodes:
            raise ValueError(
                f"scheme built for {scheme.n_nodes} nodes but the network "
                f"has {config.n_nodes}")
        # Static verification gate: prove the (config, routing) pair
        # deadlock-free and internally consistent before building anything.
        # Imported lazily — repro.verify imports repro.noc modules at import
        # time, so a module-level import here would be circular.
        from repro.verify.static import ensure_network_verified
        ensure_network_verified(config, routing)
        self.config = config
        self.scheme = scheme
        self.topology = MeshTopology(config)
        self.stats = NetworkStats()
        self._route = get_routing_fn(routing)
        self.cycle = 0
        # Core selection (DESIGN.md §14): the batched struct-of-arrays core
        # is the default; custom router classes (router_factory) require
        # per-object routers, so they force the object core.
        core_kind = config.core if router_factory is None else "object"
        self._core = None
        if core_kind != "object":
            from repro.noc.core_soa import make_core
            self._core = make_core(core_kind, config, self.topology,
                                   self.stats, self._route)
            self.routers = self._core.routers
        else:
            make_router = (router_factory if router_factory is not None
                           else Router)
            self.routers = [
                make_router(r, self.topology.ports_per_router,
                            config.num_vcs, config.vc_depth,
                            config.router_stages, self.stats)
                for r in range(config.n_routers)]
        for router in self.routers:
            for port in range(NUM_DIRECTIONS, self.topology.ports_per_router):
                router.set_output_credits(port, EJECTION_CREDITS)
        self.nis = [
            NetworkInterface(node, scheme, config.num_vcs, config.vc_depth,
                             self.stats, flit_bytes=config.flit_bytes,
                             on_deliver=on_deliver,
                             overlap_compression=config.overlap_compression)
            for node in range(config.n_nodes)]
        self.traffic_source = None
        # (dst_router, port, vc, flit) due next cycle.
        self._pending_router_arrivals: List[Tuple[int, int, int, Flit]] = []
        # (node, flit) ejections due next cycle.
        self._pending_ejections: List[Tuple[int, Flit]] = []
        # (router, port, vc) credits to apply at end of cycle.
        self._credit_events: List[Tuple[int, int, int]] = []
        # Active-NI fast path (mirrors the router ``_buffered`` skip): an NI
        # with nothing queued, in flight or decoding is skipped entirely in
        # :meth:`step`.  Flags are raised on submit/eject and lowered once
        # the NI reports idle again.
        self._ni_active = [False] * config.n_nodes
        # Event-horizon activity accounting (DESIGN.md §12; every field
        # registered in SKIP_ACCOUNTED_STATE).  _busy_ni_count tracks the
        # raised _ni_active flags, _buffered_total the flits held in router
        # buffers network-wide; both are O(1)-maintained so idle() and the
        # skip precondition never rescan the mesh.  _quiet records whether
        # the last stepped cycle had zero activity.
        self._busy_ni_count = 0
        self._buffered_total = 0
        self._quiet = False
        # Cycle whose step established the current _quiet proof.  Only
        # consulted when fail-stop faults are armed: a proof made while a
        # buffered router was dead is void once that router revives (its
        # frozen heads pin no wakeup yet become movable), and the revival
        # check in _may_skip needs to know which cycle the proof covers.
        self._proof_cycle = 0
        self._skipping = config.event_horizon
        self._profile = config.profile_phases
        # Fault-injection layer (DESIGN.md §13).  Built before the send
        # closures and the sanitizer: both specialize on it.  An all-zero
        # FaultConfig constructs the injector (so the plumbing is always
        # exercised) but arms no hook — the hot paths compile to exactly
        # the faults=None closures and the run is bit-identical.
        self._faults = None
        if config.faults is not None:
            from repro.faults.inject import FaultInjector
            self._faults = FaultInjector(config.faults, config,
                                         self.topology)
        self._fault_tick = (self._faults is not None
                            and self._faults.needs_tick)
        # Credit destination per (router, input port): the attached NI for
        # local ports, the upstream router + opposite port otherwise.
        # Precomputed so _apply_credits does no topology lookups.
        self._credit_targets: List[List[Optional[Tuple]]] = [
            [self._credit_target(r, p)
             for p in range(self.topology.ports_per_router)]
            for r in range(config.n_routers)]
        self._route_fns = [self._make_route_fn(r)
                           for r in range(config.n_routers)]
        self._send_fns = [self._make_send_fn(r)
                          for r in range(config.n_routers)]
        self._credit_fns = [self._make_credit_fn(r)
                            for r in range(config.n_routers)]
        self._accept_fns = [self._make_accept_fn(n)
                            for n in range(config.n_nodes)]
        if self._faults is not None:
            for ni in self.nis:
                ni.attach_fault_layer(self._faults)
            if self._faults.recovery is not None:
                self._faults.recovery.bind(self)
        # NoCSan: when enabled, route every callback through the sanitizer.
        # When disabled, the fast path above is untouched (zero-cost
        # opt-out).  Lazy import for the same cycle reason as above.
        from repro.verify.sanitizer import sanitize_enabled
        self._sanitizer = None
        if sanitize_enabled(config):
            from repro.verify.sanitizer import NocSanitizer
            sanitizer = NocSanitizer(self)
            self._sanitizer = sanitizer
            self._send_fns = [sanitizer.wrap_send(r, fn)
                              for r, fn in enumerate(self._send_fns)]
            self._credit_fns = [sanitizer.wrap_credit(r, fn)
                                for r, fn in enumerate(self._credit_fns)]
            self._accept_fns = [sanitizer.wrap_accept(n, fn)
                                for n, fn in enumerate(self._accept_fns)]
            for ni in self.nis:
                ni.on_deliver = sanitizer.wrap_deliver(ni.node_id,
                                                       ni.on_deliver)
        # Bind last: the core specializes on the final (possibly wrapped)
        # callback tables and on whether link faults need per-flit hooks.
        if self._core is not None:
            self._core.bind(self)

    # -------------------------------------------------------------- wiring

    def _make_route_fn(self, router_id: int):
        topology = self.topology
        route = self._route

        def route_fn(flit: Flit) -> int:
            return route(topology, router_id, flit.packet.dst)

        return route_fn

    def _credit_target(self, rid: int, in_port: int) -> Optional[Tuple]:
        """``(True, node)`` for local ports, ``(False, upstream, port)`` for
        linked directions, None at mesh edges (unreachable by wiring)."""
        if in_port >= NUM_DIRECTIONS:
            return (True, self.topology.node_at(rid, in_port))
        upstream = self.topology.neighbor(rid, in_port)
        if upstream is None:
            return None
        return (False, upstream, OPPOSITE_PORT[in_port])

    def _make_send_fn(self, rid: int):
        topology = self.topology
        stats = self.stats
        # Per-port destination, resolved once: (dst_router, dst_port) for
        # linked directions, (None, node) for local/ejection ports.
        targets = []
        for port in range(topology.ports_per_router):
            link = topology.link(rid, port)
            if link is not None:
                targets.append((link.dst_router, link.dst_port))
            elif port >= NUM_DIRECTIONS:
                targets.append((None, topology.node_at(rid, port)))
            else:
                targets.append(None)  # mesh edge: never routed to

        faults = self._faults
        if faults is None or not faults.affects_links:
            # Hot path: no link fault model armed — no per-flit overhead.
            def send(out_port: int, out_vc: int, flit: Flit) -> None:
                self._buffered_total -= 1
                target = targets[out_port]
                dst_router, dst_port = target
                if dst_router is not None:
                    stats.link_traversals += 1
                    self._pending_router_arrivals.append(
                        (dst_router, dst_port, out_vc, flit))
                else:
                    self._pending_ejections.append((dst_port, flit))

            return send

        def send_faulty(out_port: int, out_vc: int, flit: Flit) -> None:
            self._buffered_total -= 1
            target = targets[out_port]
            dst_router, dst_port = target
            if dst_router is not None:
                if faults.on_link_traversal(rid, out_port, out_vc, flit,
                                            self.cycle):
                    # Dropped mid-link: the flit never arrives and the
                    # spent credit leaks (ledgered for the watchdog).
                    sanitizer = self._sanitizer
                    if sanitizer is not None and sanitizer.fault_tolerant:
                        sanitizer.note_drop(flit)
                    return
                stats.link_traversals += 1
                self._pending_router_arrivals.append(
                    (dst_router, dst_port, out_vc, flit))
            else:
                self._pending_ejections.append((dst_port, flit))

        return send_faulty

    def _make_credit_fn(self, rid: int):
        events = self._credit_events

        def credit(in_port: int, in_vc: int) -> None:
            events.append((rid, in_port, in_vc))

        return credit

    def _make_accept_fn(self, node: int):
        rid = self.topology.router_of(node)
        port = self.topology.local_port_of(node)
        core = self._core
        if core is not None:
            core_accept = core.accept

            def accept(vc: int, flit: Flit, now: int) -> None:
                self._buffered_total += 1
                core_accept(rid, port, vc, flit, now)

            return accept
        router = self.routers[rid]

        def accept(vc: int, flit: Flit, now: int) -> None:
            self._buffered_total += 1
            router.accept(port, vc, flit, now)

        return accept

    def set_traffic(self, source) -> None:
        """Attach a traffic source (``generate(cycle) -> [TrafficRequest]``)."""
        self.traffic_source = source

    def submit(self, request: TrafficRequest):
        """Directly enqueue one request at its source NI (trace replay and
        cache-simulator driven modes use this).  Returns the queued
        packet."""
        packet = self.nis[request.src].submit(request, self.cycle)
        if not self._ni_active[request.src]:
            self._ni_active[request.src] = True
            self._busy_ni_count += 1
        return packet

    # ---------------------------------------------------------- main loop

    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        # Direct step() calls invalidate the quiescence proof; the run
        # loop's _quiet_step wrapper re-establishes it after stepping.
        self._quiet = False
        if self._fault_tick:
            # Credit watchdog (fires on its period when losses are
            # outstanding).  Runs before anything else so restored credits
            # are usable this very cycle — the restoration's first effect
            # is then ordinary activity, which keeps the quiescence proof
            # untouched.
            self._faults.begin_cycle(now, self)
        profile = self._profile
        if profile and (self._pending_router_arrivals
                        or self._pending_ejections):
            self.stats.deliver_phase_ticks += 1
        self._deliver_arrivals(now)
        active = self._ni_active
        if self.traffic_source is not None:
            requests = self.traffic_source.generate(now)
            if profile and requests:
                self.stats.traffic_phase_ticks += 1
            for request in requests:
                self.nis[request.src].submit(request, now)
                if not active[request.src]:
                    active[request.src] = True
                    self._busy_ni_count += 1
        # Only NIs with queued, in-flight or decoding work take their turn;
        # idle ones are skipped (analogous to the router _buffered skip).
        # Per-NI process+inject ordering is unchanged: NIs never interact
        # with each other within a cycle.
        if profile and self._busy_ni_count:
            self.stats.ni_phase_ticks += 1
        nis = self.nis
        accept_fns = self._accept_fns
        for node in range(len(nis)):
            if not active[node]:
                continue
            ni = nis[node]
            ni.process(now)
            ni.inject(now, accept_fns[node])
            if not ni.busy():
                active[node] = False
                self._busy_ni_count -= 1
        if profile and self._buffered_total:
            self.stats.router_phase_ticks += 1
        self._cycle_routers(now)
        if profile and self._credit_events:
            self.stats.credit_phase_ticks += 1
        self._apply_credits()
        if self._sanitizer is not None:
            self._sanitizer.after_cycle(now)
        self.cycle += 1
        self.stats.cycles += 1

    def run(self, cycles: int) -> None:
        """Advance by ``cycles`` simulated cycles (jumping over quiescent
        stretches when the event horizon is enabled; DESIGN.md §12)."""
        end = self.cycle + cycles
        if self._use_horizon():
            self._run_with_horizon(end, stop_when_idle=False)
        else:
            while self.cycle < end:
                self.step()

    def drain(self, max_cycles: int = 100_000) -> bool:
        """Run with traffic off until the network is empty.

        Returns True when fully drained, False on the cycle budget expiring
        (which a test would treat as a deadlock).  Under the event horizon
        a stuck network exhausts the budget in one jump instead of stepping
        through it.
        """
        saved = self.traffic_source
        self.traffic_source = None
        end = self.cycle + max_cycles
        try:
            if self._skipping:
                self._run_with_horizon(end, stop_when_idle=True)
            else:
                while self.cycle < end:
                    if self.idle():
                        return True
                    self.step()
            return self.idle()
        finally:
            self.traffic_source = saved

    def idle(self) -> bool:
        """No flit buffered, in flight, queued or pending anywhere.

        O(1): reads the skip-accounting counters instead of rescanning
        every router and NI (NoCSan cross-checks them every sanitized
        cycle)."""
        return (self._buffered_total == 0
                and self._busy_ni_count == 0
                and not self._pending_router_arrivals
                and not self._pending_ejections)

    # ------------------------------------------------------ event horizon

    def _use_horizon(self) -> bool:
        """Whether run() may skip cycles: the config enables it and the
        attached traffic source (if any) supports the lookahead API.
        Custom sources without ``next_arrival`` fall back to always-step —
        without arrival lookahead the quiescence proof has a hole."""
        if not self._skipping:
            return False
        source = self.traffic_source
        return source is None or hasattr(source, "next_arrival")

    def _run_with_horizon(self, end: int, stop_when_idle: bool) -> None:
        while self.cycle < end:
            if stop_when_idle and self.idle():
                return
            if self._may_skip():
                target = self._skip_horizon(end)
                if target > self.cycle:
                    self._fast_forward(target)
                    continue
            self._quiet_step()

    def _may_skip(self) -> bool:
        """Quiescence precondition: nothing due next cycle, and the router
        state proven at fixed point — either because the last stepped cycle
        had zero activity, or vacuously (no flit buffered anywhere).

        With fail-stop faults armed, a proof made at ``_proof_cycle`` is
        void for any buffered router that has revived since: it never ran
        during the proof cycle, so its heads — stale ``ready_at``, no
        wakeup pinned — are *not* provably credit-blocked and become
        movable the moment the router comes back (DESIGN.md §13)."""
        if self._pending_router_arrivals or self._pending_ejections:
            return False
        if self._buffered_total == 0:
            return True
        if not self._quiet:
            return False
        faults = self._faults
        if faults is not None and faults.affects_routers:
            now = self.cycle
            proof = self._proof_cycle
            for router in self.routers:
                if router._buffered and faults.revived_since(
                        router.router_id, now, proof):
                    return False
        return True

    def _quiet_step(self) -> None:
        """Step once, recording whether the cycle had zero activity.

        A cycle is quiet when no flit moved anywhere: no buffer write or
        read, no codec operation, nothing left pending for the next cycle.
        VC allocations are deliberately not consulted: a quiet cycle's VA
        pass is at its fixed point (§12) — an allocation in an otherwise
        dead cycle leaves a head that is still credit- or pipeline-blocked,
        which the wakeup horizons already cover.
        """
        stats = self.stats
        writes = stats.buffer_writes
        reads = stats.buffer_reads
        comp = stats.compression_ops
        decomp = stats.decompression_ops
        self.step()
        self._quiet = (stats.buffer_writes == writes
                       and stats.buffer_reads == reads
                       and stats.compression_ops == comp
                       and stats.decompression_ops == decomp
                       and not self._pending_router_arrivals
                       and not self._pending_ejections)
        self._proof_cycle = self.cycle - 1

    def _skip_horizon(self, end: int) -> int:
        """Earliest cycle in ``[self.cycle, end]`` at which anything can
        happen, assuming the network is quiescent now.

        Conservative-early answers are safe (the cycle is stepped and
        quiescence re-proven); a late answer would skip real work, so every
        contributor is a hard bound: traffic arrivals, NI timers, router
        pipeline exits.  Credit-blocked and VC-blocked flits contribute no
        wakeup — unblocking them requires activity, which only a wakeup
        can start.
        """
        now = self.cycle
        horizon = end
        faults = self._faults
        if faults is not None and faults.has_events:
            # Scheduled faults (stuck-at / fail-stop window boundaries) and
            # pending watchdog ticks pin wakeups: a skip must never jump
            # over a router dying, reviving, or a credit resync.
            event = faults.next_event(now)
            if event is not None and event < horizon:
                horizon = event
        source = self.traffic_source
        if source is not None:
            arrival = source.next_arrival(now, end - 1)
            if arrival is not None and arrival < horizon:
                horizon = arrival
            if horizon <= now:
                return now
        if self._busy_ni_count:
            nis = self.nis
            for node, active in enumerate(self._ni_active):
                if not active:
                    continue
                work = nis[node].next_work(now)
                if work is not None and work < horizon:
                    horizon = work
            if horizon <= now:
                return now
        if self._buffered_total:
            core = self._core
            if core is not None:
                # One min-reduction over the flat head_ready array replaces
                # the per-router next_ready loop (vectorized under numpy).
                ready = core.next_ready_all(now)
                if ready is not None and ready < horizon:
                    horizon = ready
            else:
                for router in self.routers:
                    if router._buffered:
                        ready = router.next_ready(now)
                        if ready is not None and ready < horizon:
                            horizon = ready
        return max(horizon, now)

    def _fast_forward(self, target: int) -> None:
        """Jump straight to ``target``, skipping provably-dead cycles.

        Preconditions (established by the run loop): :meth:`_may_skip`
        holds and ``target <= _skip_horizon(end)``.  Skipped cycles count
        as simulated time — ``stats.cycles`` advances with ``cycle``, so
        every observable number matches an always-step run bit for bit —
        and are tallied in ``stats.skipped_cycles``.
        """
        skipped = target - self.cycle
        if self._buffered_total:
            faults = self._faults
            if faults is not None and faults.affects_routers:
                # A skip window never crosses a fail-stop boundary (pinned
                # by _skip_horizon), so each router is uniformly dead or
                # alive across it.  Dead routers run no pipeline stage in
                # stepped cycles, so their VA rotation must not be
                # replayed either.
                now = self.cycle
                for router in self.routers:
                    if not faults.router_dead(router.router_id, now):
                        router.skip_cycles(skipped)
            elif self._core is not None:
                self._core.skip_all(skipped)
            else:
                for router in self.routers:
                    router.skip_cycles(skipped)
        if self._sanitizer is not None:
            self._sanitizer.after_skip(self.cycle, target)
        self.cycle = target
        self.stats.cycles += skipped
        self.stats.skipped_cycles += skipped

    # ------------------------------------------------------------ phases

    def _deliver_arrivals(self, now: int) -> None:
        router_arrivals = self._pending_router_arrivals
        ejections = self._pending_ejections
        self._pending_router_arrivals = []
        self._pending_ejections = []
        self._buffered_total += len(router_arrivals)
        if router_arrivals:
            core = self._core
            if core is not None:
                core.accept_arrivals(router_arrivals, now)
            else:
                for router_id, port, vc, flit in router_arrivals:
                    self.routers[router_id].accept(port, vc, flit, now)
        active = self._ni_active
        for node, flit in ejections:
            self.nis[node].eject(flit, now)
            if not active[node]:
                active[node] = True
                self._busy_ni_count += 1

    def _cycle_routers(self, now: int) -> None:
        core = self._core
        if core is not None:
            core.cycle_all(now, self._faults)
            return
        faults = self._faults
        if faults is not None and faults.affects_routers:
            for router in self.routers:
                rid = router.router_id
                if faults.router_dead(rid, now):
                    # Fail-stop window: no pipeline stage runs, buffered
                    # flits freeze (arrivals are still accepted — the
                    # buffers themselves are not the failed logic).
                    continue
                # repro: allow[router-surface-parity] object-router pipeline:
                # guarded by _core is None, SoaRouter views never reach here
                router.cycle(now, self._route_fns[rid], self._send_fns[rid],
                             self._credit_fns[rid])
            return
        for router in self.routers:
            rid = router.router_id
            # repro: allow[router-surface-parity] object-router pipeline:
            # guarded by _core is None, SoaRouter views never reach here
            router.cycle(now, self._route_fns[rid], self._send_fns[rid],
                         self._credit_fns[rid])

    def _apply_credits(self) -> None:
        events = self._credit_events
        if not events:
            return
        core = self._core
        if core is not None:
            core.apply_credits(events, self.nis, self._credit_targets,
                               self._faults)
            return
        targets = self._credit_targets
        nis = self.nis
        routers = self.routers
        faults = self._faults
        swallow = faults is not None and faults.affects_credits
        for rid, in_port, vc in events:
            target = targets[rid][in_port]
            if target is None:  # pragma: no cover - impossible by wiring
                continue
            if swallow and faults.swallow_credit(rid, in_port, vc, target):
                continue  # credit message lost in transit (ledgered)
            if target[0]:  # local port: credit the attached NI
                nis[target[1]].credit(vc)
            else:
                routers[target[1]].credit_return(target[2], vc)
        del events[:]
