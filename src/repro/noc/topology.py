"""Mesh / concentrated-mesh topology and port geometry.

Routers sit on a ``width x height`` grid.  Ports 0..3 are the cardinal
directions (N, E, S, W); ports 4..4+c-1 are the local ports of the ``c``
concentrated nodes.  Node *n* attaches to router ``n // c`` on local port
``4 + n % c``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.noc.config import NocConfig

NORTH, EAST, SOUTH, WEST = 0, 1, 2, 3
DIRECTION_NAMES = {NORTH: "N", EAST: "E", SOUTH: "S", WEST: "W"}
#: Cardinal ports on every router.
NUM_DIRECTIONS = 4


@dataclass(frozen=True, slots=True)
class Link:
    """A unidirectional router-to-router connection."""

    src_router: int
    src_port: int
    dst_router: int
    dst_port: int


class MeshTopology:
    """A 2-D (concentrated) mesh built from a :class:`NocConfig`."""

    def __init__(self, config: NocConfig):
        self.config = config
        self.width = config.mesh_width
        self.height = config.mesh_height
        self.concentration = config.concentration
        self.n_routers = config.n_routers
        self.n_nodes = config.n_nodes
        self.ports_per_router = NUM_DIRECTIONS + self.concentration
        self._links = self._build_links()

    # ----------------------------------------------------------- geometry

    def coords(self, router: int) -> Tuple[int, int]:
        """(x, y) grid position of a router (x grows east, y grows south)."""
        self._check_router(router)
        return router % self.width, router // self.width

    def router_at(self, x: int, y: int) -> int:
        """Router id at grid position (x, y)."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x}, {y}) outside {self.width}x{self.height}")
        return y * self.width + x

    def router_of(self, node: int) -> int:
        """Router a node attaches to."""
        self._check_node(node)
        return node // self.concentration

    def local_port_of(self, node: int) -> int:
        """Router port a node attaches to."""
        self._check_node(node)
        return NUM_DIRECTIONS + node % self.concentration

    def node_at(self, router: int, local_port: int) -> int:
        """Node attached to a router's local port (inverse mapping)."""
        self._check_router(router)
        slot = local_port - NUM_DIRECTIONS
        if not 0 <= slot < self.concentration:
            raise ValueError(f"port {local_port} is not a local port")
        return router * self.concentration + slot

    def neighbor(self, router: int, direction: int) -> Optional[int]:
        """Adjacent router in a cardinal direction (None at mesh edge)."""
        x, y = self.coords(router)
        if direction == NORTH:
            return self.router_at(x, y - 1) if y > 0 else None
        if direction == SOUTH:
            return self.router_at(x, y + 1) if y < self.height - 1 else None
        if direction == EAST:
            return self.router_at(x + 1, y) if x < self.width - 1 else None
        if direction == WEST:
            return self.router_at(x - 1, y) if x > 0 else None
        raise ValueError(f"not a cardinal direction: {direction}")

    def _build_links(self) -> Dict[Tuple[int, int], Link]:
        """Map (router, output port) -> link for all inter-router channels."""
        opposite = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}
        links = {}
        for router in range(self.n_routers):
            for direction in range(NUM_DIRECTIONS):
                peer = self.neighbor(router, direction)
                if peer is not None:
                    links[(router, direction)] = Link(
                        src_router=router, src_port=direction,
                        dst_router=peer, dst_port=opposite[direction])
        return links

    def link(self, router: int, port: int) -> Optional[Link]:
        """The inter-router link leaving ``router`` through ``port``."""
        return self._links.get((router, port))

    def hop_count(self, src_node: int, dst_node: int) -> int:
        """Router hops an XY-routed packet traverses."""
        sx, sy = self.coords(self.router_of(src_node))
        dx, dy = self.coords(self.router_of(dst_node))
        return abs(sx - dx) + abs(sy - dy) + 1

    # --------------------------------------------------------- validation

    def _check_router(self, router: int) -> None:
        if not 0 <= router < self.n_routers:
            raise ValueError(f"router {router} out of range")

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n_nodes:
            raise ValueError(f"node {node} out of range")
