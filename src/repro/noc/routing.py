"""Routing functions.

The paper uses dimension-ordered XY routing (Table 1): packets first travel
along X (east/west), then along Y (north/south), which is deadlock-free on a
mesh without extra virtual-channel classes.  YX is provided for ablations.
"""

from __future__ import annotations

from typing import Callable

from repro.noc.topology import EAST, MeshTopology, NORTH, SOUTH, WEST

#: A routing function maps (topology, current router, destination node) to
#: the output port the head flit must request.
RoutingFn = Callable[[MeshTopology, int, int], int]


def xy_route(topology: MeshTopology, router: int, dst_node: int) -> int:
    """Dimension-ordered XY: correct X first, then Y, then eject."""
    dst_router = topology.router_of(dst_node)
    cx, cy = topology.coords(router)
    dx, dy = topology.coords(dst_router)
    if cx < dx:
        return EAST
    if cx > dx:
        return WEST
    if cy < dy:
        return SOUTH
    if cy > dy:
        return NORTH
    return topology.local_port_of(dst_node)


def yx_route(topology: MeshTopology, router: int, dst_node: int) -> int:
    """Dimension-ordered YX: correct Y first, then X, then eject."""
    dst_router = topology.router_of(dst_node)
    cx, cy = topology.coords(router)
    dx, dy = topology.coords(dst_router)
    if cy < dy:
        return SOUTH
    if cy > dy:
        return NORTH
    if cx < dx:
        return EAST
    if cx > dx:
        return WEST
    return topology.local_port_of(dst_node)


ROUTING_FUNCTIONS = {"xy": xy_route, "yx": yx_route}


def get_routing_fn(name: str) -> RoutingFn:
    """Look up a routing function by name."""
    try:
        return ROUTING_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing function {name!r}; "
            f"choose from {sorted(ROUTING_FUNCTIONS)}") from None
