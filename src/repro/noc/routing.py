"""Routing functions.

The paper uses dimension-ordered XY routing (Table 1): packets first travel
along X (east/west), then along Y (north/south), which is deadlock-free on a
mesh without extra virtual-channel classes.  YX is provided for ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.noc.topology import EAST, MeshTopology, NORTH, SOUTH, WEST

#: A routing function maps (topology, current router, destination node) to
#: the output port the head flit must request.
RoutingFn = Callable[[MeshTopology, int, int], int]


@dataclass(frozen=True, slots=True)
class RoutingProperties:
    """Verifier-relevant metadata of a registered routing function.

    ``minimal`` declares that every route takes exactly the Manhattan
    distance in hops (the verifier downgrades the minimality check to a
    skip when False).  ``requires_escape_vc`` marks adaptive functions that
    are only deadlock-free through an escape virtual channel; for those the
    verifier checks ``escape_fn`` (the routing restricted to the escape VC)
    for acyclicity instead of the full function, and demands ``num_vcs >=
    2`` so an escape VC actually exists.
    """

    minimal: bool = True
    requires_escape_vc: bool = False
    escape_fn: Optional[RoutingFn] = None


def xy_route(topology: MeshTopology, router: int, dst_node: int) -> int:
    """Dimension-ordered XY: correct X first, then Y, then eject."""
    dst_router = topology.router_of(dst_node)
    cx, cy = topology.coords(router)
    dx, dy = topology.coords(dst_router)
    if cx < dx:
        return EAST
    if cx > dx:
        return WEST
    if cy < dy:
        return SOUTH
    if cy > dy:
        return NORTH
    return topology.local_port_of(dst_node)


def yx_route(topology: MeshTopology, router: int, dst_node: int) -> int:
    """Dimension-ordered YX: correct Y first, then X, then eject."""
    dst_router = topology.router_of(dst_node)
    cx, cy = topology.coords(router)
    dx, dy = topology.coords(dst_router)
    if cy < dy:
        return SOUTH
    if cy > dy:
        return NORTH
    if cx < dx:
        return EAST
    if cx > dx:
        return WEST
    return topology.local_port_of(dst_node)


ROUTING_FUNCTIONS = {"xy": xy_route, "yx": yx_route}

#: Verifier metadata per registered function (kept in lockstep with
#: :data:`ROUTING_FUNCTIONS`): dimension-ordered XY/YX are minimal and
#: deadlock-free without escape VCs.
ROUTING_PROPERTIES = {"xy": RoutingProperties(), "yx": RoutingProperties()}


def register_routing_fn(name: str, fn: RoutingFn,
                        properties: Optional[RoutingProperties] = None,
                        replace: bool = False) -> None:
    """Register a routing function (and its verifier metadata) by name.

    New functions — adaptive ones in particular — must declare their
    :class:`RoutingProperties` honestly: ``python -m repro.verify`` and the
    ``Network.__init__`` gate build the channel-dependency graph from
    ``properties.escape_fn`` (when set) or ``fn`` itself and refuse cyclic
    configurations.
    """
    if not replace and name in ROUTING_FUNCTIONS:
        raise ValueError(f"routing function {name!r} already registered")
    ROUTING_FUNCTIONS[name] = fn
    ROUTING_PROPERTIES[name] = properties or RoutingProperties()


def unregister_routing_fn(name: str) -> None:
    """Remove a registered routing function (tests and demos)."""
    if name in ("xy", "yx"):
        raise ValueError(f"built-in routing function {name!r} cannot be "
                         f"unregistered")
    ROUTING_FUNCTIONS.pop(name, None)
    ROUTING_PROPERTIES.pop(name, None)


def get_routing_fn(name: str) -> RoutingFn:
    """Look up a routing function by name."""
    try:
        return ROUTING_FUNCTIONS[name]
    except KeyError:
        raise ValueError(
            f"unknown routing function {name!r}; "
            f"choose from {sorted(ROUTING_FUNCTIONS)}") from None


def get_routing_properties(name: str) -> RoutingProperties:
    """Verifier metadata of a registered routing function."""
    if name not in ROUTING_FUNCTIONS:
        get_routing_fn(name)  # raises the canonical unknown-name error
    return ROUTING_PROPERTIES.get(name, RoutingProperties())
