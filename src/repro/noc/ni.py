"""Network Interface: packetization, compression hooks, reassembly.

The NI is where APPROX-NoC lives (Figure 1): outbound cache blocks pass
through the VAXX + encoder pipeline before fragmentation into flits, and
inbound packets pass through the decoder after reassembly.

Latency model (§4.3):

* compression costs ``scheme.compression_cycles`` (3: two match + one
  encode) but overlaps with NI queueing — a packet's injection may not start
  before ``created + compression_cycles``, yet time spent waiting behind
  earlier packets counts against that bound, so a busy queue hides the
  codec entirely;
* the head flit is never compressed, so its VC arbitration overlaps with
  compression (already covered by the same bound);
* decompression costs ``scheme.decompression_cycles`` (2) after the tail
  flit arrives.

Dictionary-protocol notifications produced by the decoder are injected here
as single-flit control packets addressed to the corresponding encoder node.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.compression.base import (
    CompressionScheme,
    Notification,
    packet_flits,
)
from repro.core.block import CacheBlock
from repro.noc.packet import Flit, Packet, PacketKind, fragment
from repro.noc.stats import NetworkStats

#: Delivery callback: ``(packet, delivered_block, now)``; the block is None
#: for control/notification packets.
DeliverCallback = Callable[[Packet, Optional[CacheBlock], int], None]


@dataclass(frozen=True, slots=True)
class TrafficRequest:
    """What a producer (traffic generator, cache, application) asks the NI
    to transmit."""

    src: int
    dst: int
    kind: PacketKind
    block: Optional[CacheBlock] = None


class NetworkInterface:
    """Per-node NI: injection queue, codec, reassembly and delivery."""

    def __init__(self, node_id: int, scheme: CompressionScheme,
                 num_vcs: int, vc_depth: int, stats: NetworkStats,
                 flit_bytes: int = 8,
                 on_deliver: Optional[DeliverCallback] = None,
                 overlap_compression: bool = True):
        self.node_id = node_id
        self.scheme = scheme
        self.codec = scheme.node(node_id)
        self.stats = stats
        self.flit_bytes = flit_bytes
        self.num_vcs = num_vcs
        self.on_deliver = on_deliver
        #: §4.3 latency-hiding optimization: compression overlaps with NI
        #: queueing.  Disable to quantify the optimization (ablation).
        self.overlap_compression = overlap_compression
        #: Fault-injection layer (repro.faults), attached by the network
        #: when ``config.faults`` is set; None leaves every hook dormant.
        self._fault_layer = None
        self._queue: deque[Packet] = deque()
        self._current_flits: Optional[List[Flit]] = None
        self._current_index = 0
        self._current_vc: Optional[int] = None
        self._vc_rr = 0
        self._credits = [vc_depth] * num_vcs
        #: (completion_cycle, packet) decode jobs, in completion order.
        self._pending_decodes: deque[tuple[int, Packet]] = deque()
        #: Notifications waiting to be packetized.
        self._outbound_notifications: deque[Notification] = deque()

    def attach_fault_layer(self, layer) -> None:
        """Wire the fault-injection layer's NI hooks (network construction
        time, before any simulation)."""
        self._fault_layer = layer

    # ----------------------------------------------------------- ingress

    def submit(self, request: TrafficRequest, now: int) -> Packet:
        """Accept a transmission request; returns the queued packet."""
        if request.src != self.node_id:
            raise ValueError(
                f"request for node {request.src} submitted to NI "
                f"{self.node_id}")
        layer = self._fault_layer
        if layer is not None and request.kind is PacketKind.DATA:
            # Graceful degradation may force the block exact (§13).
            request = layer.on_submit_request(request, now)
        if request.kind is PacketKind.DATA:
            if request.block is None:
                raise ValueError("data packets must carry a cache block")
            encoded = self.codec.encode(request.block, request.dst)
            self.stats.compression_ops += 1
            size = packet_flits(encoded.size_bytes, self.flit_bytes)
            comp_cycles = (encoded.compression_cycles
                           if encoded.compression_cycles is not None
                           else self.scheme.compression_cycles)
            packet = Packet(src=request.src, dst=request.dst,
                            kind=PacketKind.DATA, size_flits=size,
                            block=request.block, encoded=encoded,
                            created=now,
                            inject_ready=now + comp_cycles)
        else:
            packet = Packet(src=request.src, dst=request.dst,
                            kind=request.kind, created=now, inject_ready=now)
        self._queue.append(packet)
        if layer is not None:
            layer.on_packet_queued(self, packet, now)
        return packet

    def credit(self, vc: int) -> None:
        """Credit return from the router's local input port."""
        self._credits[vc] += 1

    @property
    def queue_depth(self) -> int:
        """Packets waiting (including the one being transmitted)."""
        return len(self._queue) + (1 if self._current_flits else 0)

    def busy(self) -> bool:
        """Anything left to inject, decode or notify?"""
        return bool(self._queue or self._current_flits
                    or self._pending_decodes or self._outbound_notifications)

    def next_work(self, now: int) -> Optional[int]:
        """Earliest cycle ``>= now`` this NI can act without external
        input, or None when only network activity can unblock it
        (skip-safety wakeup; DESIGN.md §12).

        Called at a skip decision point, i.e. right after a zero-activity
        cycle (or on an empty network), so any transition this NI could
        make on its own resolves to one of the timers below.  Answering
        too early merely costs a stepped cycle that re-proves quiescence;
        answering too late would skip real work, so every uncertain case
        answers ``now``.
        """
        horizon: Optional[int] = None
        if self._pending_decodes:
            due = self._pending_decodes[0][0]
            if due <= now:
                return now
            horizon = due
        if self._outbound_notifications:
            return now  # defensive: process() drains these every cycle
        if self._current_flits is not None:
            # Mid-packet.  After a zero-activity cycle the next flit must
            # be credit-blocked (otherwise it would have injected, which is
            # activity); credits only arrive via network activity, so no
            # self-wakeup — unless the credit view says otherwise, in
            # which case refuse to skip.
            vc = self._current_vc
            if vc is None:
                if any(credits > 0 for credits in self._credits):
                    return now
            elif self._credits[vc] > 0:
                return now
        elif self._queue:
            head = self._queue[0]
            if not self.overlap_compression and not head.compression_started \
                    and head.kind is PacketKind.DATA:
                # Compression starts when the head packet is first *tried*
                # (§4.3 ablation path); that try stamps inject_ready, so it
                # must happen on a stepped cycle.
                return now
            ready = head.inject_ready
            if ready > now:
                if horizon is None or ready < horizon:
                    horizon = ready
            elif any(credits > 0 for credits in self._credits):
                return now
            # else: injectable but credit-starved — external credits only.
        return horizon

    def audit_credits(self, local_occupancy: List[int],
                      vc_depth: int,
                      missing: Optional[List[int]] = None) -> List[str]:
        """NoCSan hook: check this NI's credit view per VC.

        ``local_occupancy[vc]`` is the current buffer occupancy of the
        router's local input port.  At the end of a network step (credits
        applied, injection synchronous) ``credits + occupancy`` must equal
        ``vc_depth`` exactly; anything else means a credit was lost,
        duplicated or stolen.  ``missing[vc]`` discounts credits the fault
        injector is known to have swallowed (outstanding until the
        watchdog resynchronizes them); without recovery the strict
        equation stands and a swallowed credit is a violation.
        """
        violations: List[str] = []
        for vc, credits in enumerate(self._credits):
            if credits < 0:
                violations.append(f"vc {vc}: negative credit count "
                                  f"{credits}")
            occupancy = local_occupancy[vc]
            expected = vc_depth - (missing[vc] if missing is not None else 0)
            if credits + occupancy != expected:
                violations.append(
                    f"vc {vc}: credits {credits} + local-port occupancy "
                    f"{occupancy} != expected {expected} "
                    f"(vc_depth {vc_depth})")
        return violations

    # --------------------------------------------------------- injection

    def inject(self, now: int,
               accept: Callable[[int, Flit, int], None]) -> None:
        """Push at most one flit into the router's local input port.

        ``accept(vc, flit, now)`` buffers the flit in the router.
        """
        if self._current_flits is None and not self._start_next_packet(now):
            return
        flits = self._current_flits
        packet = flits[0].packet
        if self._current_vc is None:
            self._current_vc = self._pick_vc()
            if self._current_vc is None:
                return  # every VC is out of credits
        vc = self._current_vc
        if self._credits[vc] <= 0:
            return
        flit = flits[self._current_index]
        self._credits[vc] -= 1
        accept(vc, flit, now)
        if flit.is_head:
            packet.head_injected = now
            self.stats.record_injection(packet)
        self._current_index += 1
        if self._current_index >= len(flits):
            self._current_flits = None
            self._current_index = 0
            self._current_vc = None

    def _start_next_packet(self, now: int) -> bool:
        """Dequeue the next injectable packet (FIFO, §4.3 overlap rule)."""
        if not self._queue:
            return False
        head = self._queue[0]
        if not self.overlap_compression and not head.compression_started \
                and head.kind is PacketKind.DATA:
            # Without the overlap optimization, compression only begins
            # when the packet reaches the head of the queue.
            comp_cycles = (head.encoded.compression_cycles
                           if head.encoded.compression_cycles is not None
                           else self.scheme.compression_cycles)
            head.inject_ready = max(head.inject_ready, now + comp_cycles)
            head.compression_started = True
        if head.inject_ready > now:
            return False
        packet = self._queue.popleft()
        self._current_flits = fragment(packet)
        self._current_index = 0
        self._current_vc = None
        return True

    def _pick_vc(self) -> Optional[int]:
        """Round-robin VC selection for a new packet."""
        for k in range(self.num_vcs):
            vc = (self._vc_rr + k) % self.num_vcs
            if self._credits[vc] > 0:
                self._vc_rr = (vc + 1) % self.num_vcs
                return vc
        return None

    # ---------------------------------------------------------- ejection

    def eject(self, flit: Flit, now: int) -> None:
        """A flit arrived on the ejection port."""
        if not flit.is_tail:
            return  # reassembly is implicit: flits arrive in order per packet
        packet = flit.packet
        packet.tail_ejected = now
        if packet.kind is PacketKind.DATA:
            delay = (packet.encoded.decompression_cycles
                     if packet.encoded.decompression_cycles is not None
                     else self.scheme.decompression_cycles)
            self._pending_decodes.append((now + delay, packet))
        else:
            self._complete(packet, decode_latency=0, now=now)

    def process(self, now: int) -> None:
        """Finish decode jobs due this cycle and queue their notifications."""
        while self._pending_decodes and self._pending_decodes[0][0] <= now:
            due, packet = self._pending_decodes.popleft()
            result = self.codec.decode(packet.encoded, packet.src)
            self.stats.decompression_ops += 1
            block = result.block
            fault = packet.fault
            if fault is not None and fault.corrupted:
                # Injected corruption damages the *delivered* value, after
                # decode — the codec and dictionary state stay clean.
                block = fault.apply(block)
                layer = self._fault_layer
                if layer is not None and layer.reject_corrupt(self, packet,
                                                              now):
                    # CRC rejected: consumed (a NACK is queued in its
                    # place); protocol notifications still apply — the
                    # decoders already learned from the encoded stream.
                    for notification in result.notifications:
                        self._outbound_notifications.append(notification)
                    continue
                if layer is not None:
                    layer.on_delivery(self, packet, block, now)
            self._complete(packet, decode_latency=now - packet.tail_ejected,
                           now=now, delivered_block=block)
            for notification in result.notifications:
                self._outbound_notifications.append(notification)
        while self._outbound_notifications:
            notification = self._outbound_notifications.popleft()
            self.submit(TrafficRequest(src=self.node_id,
                                       dst=notification.dst,
                                       kind=PacketKind.NOTIFICATION), now)
            self._queue[-1].notification = notification

    def _complete(self, packet: Packet, decode_latency: int, now: int,
                  delivered_block: Optional[CacheBlock] = None) -> None:
        """Record delivery and hand the payload to the attached consumer."""
        if packet.kind is PacketKind.NOTIFICATION:
            self.codec.deliver_notification(packet.notification)
        elif packet.kind is PacketKind.NACK \
                and self._fault_layer is not None:
            # This node's earlier transmission was CRC-rejected at the
            # destination: retransmit within the retry budget.
            self._fault_layer.on_nack(self, packet, now)
        self.stats.record_delivery(packet, decode_latency)
        if self.on_deliver is not None:
            self.on_deliver(packet, delivered_block, now)
