"""Network statistics: latency breakdown, flit accounting, energy events.

Figure 9 plots average packet latency broken into queueing, network and
decode components; Figure 11 plots injected data flits; Figure 12 plots
latency against offered load.  All of those are aggregations over the
counters collected here.  Energy *event* counts (buffer read/write, crossbar
and link traversals, allocator activity) feed the Figure 15 power model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, Tuple

from repro.noc.packet import Packet, PacketKind

#: Fields that describe the *measurement process* rather than simulated
#: behaviour: how many cycles the event-horizon fast path skipped, which
#: step phases had work, how effective the encode caches were.  They
#: legitimately differ across execution modes (always-step vs event-horizon,
#: serial vs parallel, cold vs warm cache) and are therefore excluded from
#: bit-identity comparisons — see :meth:`NetworkStats.simulation_outputs`.
ACCOUNTING_FIELDS: Tuple[str, ...] = (
    "skipped_cycles", "deliver_phase_ticks", "traffic_phase_ticks",
    "ni_phase_ticks", "router_phase_ticks", "credit_phase_ticks",
    "encode_cache_hits", "encode_cache_misses",
)


@dataclass(slots=True)
class NetworkStats:
    """Aggregate counters for one simulation run."""

    cycles: int = 0

    # Packet accounting, by kind.
    packets_injected: Dict[str, int] = field(default_factory=dict)
    packets_delivered: Dict[str, int] = field(default_factory=dict)
    flits_injected: Dict[str, int] = field(default_factory=dict)
    flits_delivered: Dict[str, int] = field(default_factory=dict)

    # Latency sums over delivered packets.
    queue_latency_sum: int = 0
    network_latency_sum: int = 0
    decode_latency_sum: int = 0

    # Energy events (router datapath).
    buffer_writes: int = 0
    buffer_reads: int = 0
    crossbar_traversals: int = 0
    link_traversals: int = 0
    vc_allocations: int = 0

    # Codec events (engine activity at the NIs).
    compression_ops: int = 0
    decompression_ops: int = 0

    # Encode memoization effectiveness (shared AVCL / pattern-match caches);
    # populated by the harness as the hit/miss delta over one run.
    encode_cache_hits: int = 0
    encode_cache_misses: int = 0

    # Event-horizon accounting (perf instrumentation, not simulation
    # outputs; all listed in ACCOUNTING_FIELDS).  ``skipped_cycles`` counts
    # simulated cycles ``Network._fast_forward`` jumped over (they are
    # *included* in ``cycles``); the ``*_phase_ticks`` counters, collected
    # only under ``NocConfig.profile_phases``, count the stepped cycles in
    # which each step phase had any work.
    skipped_cycles: int = 0
    deliver_phase_ticks: int = 0
    traffic_phase_ticks: int = 0
    ni_phase_ticks: int = 0
    router_phase_ticks: int = 0
    credit_phase_ticks: int = 0

    def record_injection(self, packet: Packet) -> None:
        """A packet's head flit entered the network."""
        kind = packet.kind.value
        self.packets_injected[kind] = self.packets_injected.get(kind, 0) + 1
        self.flits_injected[kind] = (self.flits_injected.get(kind, 0)
                                     + packet.size_flits)

    def record_delivery(self, packet: Packet, decode_latency: int) -> None:
        """A packet finished (tail ejected and decode complete)."""
        kind = packet.kind.value
        self.packets_delivered[kind] = (
            self.packets_delivered.get(kind, 0) + 1)
        self.flits_delivered[kind] = (self.flits_delivered.get(kind, 0)
                                      + packet.size_flits)
        self.queue_latency_sum += packet.queue_latency
        self.network_latency_sum += packet.network_latency
        self.decode_latency_sum += decode_latency

    # ----------------------------------------------------------- reading

    @property
    def total_packets_delivered(self) -> int:
        """Delivered packets across all kinds."""
        return sum(self.packets_delivered.values())

    @property
    def total_flits_injected(self) -> int:
        """Injected flits across all kinds."""
        return sum(self.flits_injected.values())

    @property
    def data_flits_injected(self) -> int:
        """Injected data-packet flits (Figure 11's metric)."""
        return self.flits_injected.get(PacketKind.DATA.value, 0)

    @property
    def avg_queue_latency(self) -> float:
        """Mean NI queueing latency per delivered packet."""
        n = self.total_packets_delivered
        return self.queue_latency_sum / n if n else 0.0

    @property
    def avg_network_latency(self) -> float:
        """Mean in-network latency per delivered packet."""
        n = self.total_packets_delivered
        return self.network_latency_sum / n if n else 0.0

    @property
    def avg_decode_latency(self) -> float:
        """Mean decompression latency per delivered packet."""
        n = self.total_packets_delivered
        return self.decode_latency_sum / n if n else 0.0

    @property
    def avg_packet_latency(self) -> float:
        """Mean total latency (queue + network + decode), Figure 9's bar."""
        return (self.avg_queue_latency + self.avg_network_latency
                + self.avg_decode_latency)

    def throughput_flits_per_node_cycle(self, n_nodes: int) -> float:
        """Delivered flits per node per cycle (Figure 12's x-axis metric is
        *offered* load; this is the accepted counterpart)."""
        if not self.cycles or not n_nodes:
            return 0.0
        return sum(self.flits_delivered.values()) / (self.cycles * n_nodes)

    def simulation_outputs(self) -> Dict[str, object]:
        """Every counter that is a *simulation output* (excludes the
        :data:`ACCOUNTING_FIELDS` instrumentation), for bit-identity
        comparisons across execution modes — the event-horizon equivalence
        tests assert these match an always-step run exactly."""
        return {f.name: getattr(self, f.name) for f in fields(self)
                if f.name not in ACCOUNTING_FIELDS}

    def reset(self) -> None:
        """Clear all counters (used at the warmup/measurement boundary)."""
        self.__init__()

    def latency_breakdown(self) -> Dict[str, float]:
        """The Figure 9 stack: queue / network / decode means."""
        return {
            "queue": self.avg_queue_latency,
            "network": self.avg_network_latency,
            "decode": self.avg_decode_latency,
            "total": self.avg_packet_latency,
        }
