"""x264: block-matching motion estimation (PARSEC kernel stand-in).

x264's dominant approximable traffic is reference-frame pixel data read by
motion-estimation workers.  The stand-in performs exhaustive block matching
(SAD) of a frame against a channel-delivered reference frame and
reconstructs the motion-compensated prediction.  The accuracy metric is the
PSNR drop of the reconstruction — the standard video-quality measure the
approximate-computing literature uses for this benchmark.
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng

BLOCK = 8


def generate_frame_pair(size: int = 64,
                        seed: int = 31) -> Tuple[np.ndarray, np.ndarray]:
    """A reference frame and a shifted+noised current frame (8-bit)."""
    rng = DeterministicRng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    reference = (
        110
        + 60 * np.sin(xs / 6.0)
        + 50 * np.cos(ys / 9.0)
        + 25 * np.sin((xs + 2 * ys) / 13.0)
    )
    reference = np.clip(reference, 0, 255).astype(np.int64)
    current = np.roll(np.roll(reference, 3, axis=0), 2, axis=1).copy()
    noise = np.array([[rng.randint(-4, 4) for _ in range(size)]
                      for _ in range(size)])
    current = np.clip(current + noise, 0, 255)
    return reference, current


def motion_estimate(reference: np.ndarray, current: np.ndarray,
                    search: int = 6,
                    channel: Optional[ApproxChannel] = None) -> np.ndarray:
    """Motion-compensated prediction of ``current`` from the reference.

    The reference frame is what crosses the NoC between the frame buffer
    and the ME workers, so it goes through the channel.
    """
    channel = channel or IdentityChannel()
    observed = channel.transform_ints(reference)
    size = current.shape[0]
    prediction = np.zeros_like(current)
    for by in range(0, size, BLOCK):
        for bx in range(0, size, BLOCK):
            block = current[by:by + BLOCK, bx:bx + BLOCK]
            best_sad = None
            best = None
            for dy in range(-search, search + 1):
                for dx in range(-search, search + 1):
                    y, x = by + dy, bx + dx
                    if y < 0 or x < 0 or y + BLOCK > size or x + BLOCK > size:
                        continue
                    candidate = observed[y:y + BLOCK, x:x + BLOCK]
                    sad = int(np.abs(candidate - block).sum())
                    if best_sad is None or sad < best_sad:
                        best_sad = sad
                        best = (y, x)
            y, x = best
            # Reconstruct from the *approximated* reference (what the
            # decoder-side core actually holds).
            prediction[by:by + BLOCK, bx:bx + BLOCK] = \
                observed[y:y + BLOCK, x:x + BLOCK]
    return prediction


def psnr(frame_a: np.ndarray, frame_b: np.ndarray,
         peak: float = 255.0) -> float:
    """Peak signal-to-noise ratio between two 8-bit frames."""
    mse = float(np.mean((np.asarray(frame_a, dtype=np.float64)
                         - np.asarray(frame_b, dtype=np.float64)) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(peak * peak / mse)


def output_error(precise_prediction: np.ndarray,
                 approx_prediction: np.ndarray, current: np.ndarray) -> float:
    """Relative PSNR degradation of the reconstruction."""
    precise_quality = psnr(precise_prediction, current)
    approx_quality = psnr(approx_prediction, current)
    if math.isinf(precise_quality):
        return 0.0 if math.isinf(approx_quality) else 1.0
    return max(0.0, (precise_quality - approx_quality) / precise_quality)
