"""bodytrack: silhouette tracking over image frames (PARSEC stand-in).

PARSEC's bodytrack follows a human body through camera frames with an
annealed particle filter over edge/silhouette likelihood maps.  The
stand-in tracks a moving 2-D blob across synthetic frames with a weighted-
centroid particle filter; the approximable data are the per-frame pixel
likelihoods the workers exchange.  Two outputs match the paper's study:

* the track (per-frame pose vector) whose relative deviation is the §5.4
  accuracy metric ("the overall output vectors differ by 2.4%"), and
* the rendered output frames, for the Figure 17 visual comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


@dataclass
class TrackResult:
    """Per-frame estimated pose and the rendered frames."""

    track: np.ndarray          # (frames, 2) estimated centers
    frames: List[np.ndarray]   # observed likelihood maps (possibly approx)


def generate_frames(n_frames: int = 12, size: int = 48,
                    seed: int = 3) -> List[np.ndarray]:
    """Synthetic frames: a Gaussian blob walking across the image."""
    rng = DeterministicRng(seed)
    ys, xs = np.mgrid[0:size, 0:size]
    frames = []
    cx, cy = size * 0.25, size * 0.3
    for _ in range(n_frames):
        cx += rng.gauss(1.6, 0.4)
        cy += rng.gauss(0.9, 0.4)
        cx = min(max(cx, 4), size - 4)
        cy = min(max(cy, 4), size - 4)
        blob = np.exp(-(((xs - cx) ** 2 + (ys - cy) ** 2)
                        / (2.0 * (size * 0.08) ** 2)))
        noise = np.array([[rng.random() * 0.05 for _ in range(size)]
                          for _ in range(size)])
        frames.append((blob + noise) * 100.0)
    return frames


def track(frames: List[np.ndarray],
          channel: Optional[ApproxChannel] = None,
          n_particles: int = 64, seed: int = 9) -> TrackResult:
    """Particle-filter blob tracking over channel-delivered frames."""
    channel = channel or IdentityChannel()
    rng = DeterministicRng(seed)
    size = frames[0].shape[0]
    particles = np.array([[rng.random() * size, rng.random() * size]
                          for _ in range(n_particles)])
    track_points = []
    observed_frames = []
    for frame in frames:
        observed = channel.transform_floats(frame)
        observed_frames.append(observed)
        # diffuse particles, then weight by the local likelihood
        particles += np.array([[rng.gauss(0, 2.0), rng.gauss(0, 2.0)]
                               for _ in range(n_particles)])
        particles = np.clip(particles, 0, size - 1)
        xs = particles[:, 0].astype(int)
        ys = particles[:, 1].astype(int)
        weights = observed[ys, xs] + 1e-9
        weights = weights / weights.sum()
        estimate = (particles * weights[:, None]).sum(axis=0)
        track_points.append(estimate)
        # resample around the estimate (systematic resampling, seeded)
        indices = []
        step = 1.0 / n_particles
        position = rng.random() * step
        cumulative = np.cumsum(weights)
        i = 0
        for _ in range(n_particles):
            while position > cumulative[i]:
                i += 1
            indices.append(i)
            position += step
        particles = particles[indices]
    return TrackResult(track=np.array(track_points), frames=observed_frames)


def output_error(precise: TrackResult, approx: TrackResult) -> float:
    """Relative deviation of the output pose vectors (§5.4's metric)."""
    p = precise.track.ravel()
    a = approx.track.ravel()
    return float(np.linalg.norm(a - p) / max(np.linalg.norm(p), 1e-12))


def frame_psnr(precise: np.ndarray, approx: np.ndarray) -> float:
    """PSNR between the precise and approximate frames (Figure 17's
    "difference is hardly captured through human vision")."""
    mse = float(np.mean((np.asarray(precise) - np.asarray(approx)) ** 2))
    if mse == 0:
        return float("inf")
    peak = float(np.max(np.abs(precise))) or 1.0
    return 10.0 * np.log10(peak * peak / mse)
