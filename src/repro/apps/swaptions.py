"""swaptions: Monte-Carlo swaption pricing (PARSEC kernel stand-in).

PARSEC's swaptions prices interest-rate swaptions with HJM Monte-Carlo
simulation.  The stand-in prices payer swaptions under a one-factor
short-rate Monte-Carlo with deterministic seeded paths; the approximable
data are the simulation inputs (forward curve, volatilities, strikes) the
workers share.  The accuracy metric is the mean relative price error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


@dataclass
class SwaptionBook:
    """Inputs for a batch of swaptions."""

    forward: np.ndarray     # initial forward rates per swaption
    volatility: np.ndarray
    strike: np.ndarray
    maturity: np.ndarray    # option maturity, years
    tenor: np.ndarray       # underlying swap length, years


def generate_book(n_swaptions: int = 64, seed: int = 13) -> SwaptionBook:
    """A reproducible synthetic swaption book."""
    rng = DeterministicRng(seed)
    forward = np.array([0.02 + 0.04 * rng.random()
                        for _ in range(n_swaptions)])
    vol = np.array([0.10 + 0.30 * rng.random() for _ in range(n_swaptions)])
    strike = forward * np.array([0.8 + 0.4 * rng.random()
                                 for _ in range(n_swaptions)])
    maturity = np.array([1.0 + 4.0 * rng.random()
                         for _ in range(n_swaptions)])
    tenor = np.array([2.0 + 8.0 * rng.random() for _ in range(n_swaptions)])
    return SwaptionBook(forward, vol, strike, maturity, tenor)


def price(book: SwaptionBook, n_paths: int = 400, seed: int = 21,
          channel: Optional[ApproxChannel] = None) -> np.ndarray:
    """Monte-Carlo payer-swaption prices over channel-delivered inputs.

    The same seeded Gaussian paths are used for precise and approximate
    runs, so price differences come only from the approximated inputs.
    """
    channel = channel or IdentityChannel()
    forward = channel.transform_floats(book.forward)
    vol = channel.transform_floats(book.volatility)
    strike = channel.transform_floats(book.strike)
    maturity = channel.transform_floats(book.maturity)
    tenor = channel.transform_floats(book.tenor)

    rng = DeterministicRng(seed)
    normals = np.array([[rng.gauss(0.0, 1.0) for _ in range(n_paths)]
                        for _ in range(len(forward))])
    # Lognormal terminal swap rate under a one-factor model.
    drift = -0.5 * (vol ** 2) * maturity
    diffusion = vol * np.sqrt(maturity)
    terminal = forward[:, None] * np.exp(drift[:, None]
                                         + diffusion[:, None] * normals)
    payoff = np.maximum(terminal - strike[:, None], 0.0)
    # Annuity factor of the underlying swap discounts the payoff.
    annuity = (1.0 - 1.0 / (1.0 + forward) ** tenor) / np.maximum(
        forward, 1e-6)
    return annuity * payoff.mean(axis=1)


def output_error(precise: np.ndarray, approx: np.ndarray) -> float:
    """Mean relative price error across the book."""
    precise = np.asarray(precise, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    denom = np.maximum(np.abs(precise), 1e-4)
    return float(np.mean(np.abs(approx - precise) / denom))
