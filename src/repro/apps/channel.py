"""The approximation channel: how application data experiences the NoC.

For the output-quality studies (§5.4, Figures 16-17) every shared data
structure an application reads is treated as having been fetched across the
network: values are blocked into cache lines, passed through the compression
scheme's encode→decode round trip (where VAXX may approximate them within
the error threshold) and handed back to the kernel.  Source/destination
node pairs rotate across the mesh so dictionary mechanisms exercise their
per-destination state exactly as they would under real sharing.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.compression.base import CompressionScheme
from repro.core.block import CacheBlock, WORDS_PER_BLOCK


class ApproxChannel:
    """Passes arrays through a compression scheme as cache-block traffic."""

    def __init__(self, scheme: CompressionScheme,
                 words_per_block: int = WORDS_PER_BLOCK):
        if words_per_block < 1:
            raise ValueError("words_per_block must be >= 1")
        if scheme is not None and scheme.n_nodes < 2:
            raise ValueError("the channel needs at least two nodes")
        self.scheme = scheme
        self.words_per_block = words_per_block

    def _pair_for(self, block_index: int) -> tuple:
        """The (src, dst) pair a block travels between.

        The pair is a pure function of the block's position — the software
        analogue of address-interleaved home nodes — so re-reading a
        structure sends each block across the same flow, and per-pair
        dictionary state sees the repetition it would see in the real
        system (the Pin study's "data response from another node").
        """
        n = self.scheme.n_nodes
        src = block_index % n
        dst = (src + 1) % n
        return src, dst

    # ------------------------------------------------------------- floats

    def transform_floats(self, values: Sequence[float],
                         approximable: bool = True) -> np.ndarray:
        """Round-trip a float array through the network.

        Returns a float64 array whose entries went through float32 blocks
        (and possibly mantissa approximation).
        """
        flat = np.asarray(values, dtype=np.float64).ravel()
        out: List[float] = []
        for start in range(0, len(flat), self.words_per_block):
            chunk = flat[start:start + self.words_per_block]
            block = CacheBlock.from_floats(chunk.tolist(),
                                           approximable=approximable)
            src, dst = self._pair_for(start // self.words_per_block)
            delivered, _ = self.scheme.roundtrip(block, src, dst)
            out.extend(delivered.as_floats())
        result = np.array(out[:len(flat)], dtype=np.float64)
        return result.reshape(np.asarray(values).shape)

    # -------------------------------------------------------------- ints

    def transform_ints(self, values: Sequence[int],
                       approximable: bool = True) -> np.ndarray:
        """Round-trip an int32 array through the network."""
        flat = np.asarray(values, dtype=np.int64).ravel()
        if flat.size and (flat.max() > 2**31 - 1 or flat.min() < -2**31):
            raise ValueError("values exceed 32-bit range")
        out: List[int] = []
        for start in range(0, len(flat), self.words_per_block):
            chunk = flat[start:start + self.words_per_block]
            block = CacheBlock.from_ints([int(v) for v in chunk],
                                         approximable=approximable)
            src, dst = self._pair_for(start // self.words_per_block)
            delivered, _ = self.scheme.roundtrip(block, src, dst)
            out.extend(delivered.as_ints())
        result = np.array(out[:len(flat)], dtype=np.int64)
        return result.reshape(np.asarray(values).shape)


class IdentityChannel(ApproxChannel):
    """A channel that delivers data untouched (the precise baseline).

    Keeping the float32 quantization identical to the real channel isolates
    the *approximation* error from representation error, so the precise and
    approximate runs differ only by what VAXX did.
    """

    def __init__(self, words_per_block: int = WORDS_PER_BLOCK):
        self.words_per_block = words_per_block
        self.scheme = None

    def transform_floats(self, values: Sequence[float],
                         approximable: bool = True) -> np.ndarray:
        """Identity delivery (float32 quantization only)."""
        flat = np.asarray(values, dtype=np.float64)
        return flat.astype(np.float32).astype(np.float64)

    def transform_ints(self, values: Sequence[int],
                       approximable: bool = True) -> np.ndarray:
        return np.asarray(values, dtype=np.int64).copy()
