"""blackscholes: European option pricing (PARSEC kernel stand-in).

The PARSEC benchmark prices a portfolio of European options with the
Black-Scholes closed form.  The approximable data are the option parameters
(spot, strike, rate, volatility, expiry) fetched by worker threads; the
output-quality metric is the mean relative error of the computed prices —
the standard metric used by the approximate-computing literature the paper
builds on [23, 24, 29].
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


@dataclass
class OptionPortfolio:
    """Input arrays for one pricing run."""

    spot: np.ndarray
    strike: np.ndarray
    rate: np.ndarray
    volatility: np.ndarray
    expiry: np.ndarray
    is_call: np.ndarray


def generate_portfolio(n_options: int = 512,
                       seed: int = 7) -> OptionPortfolio:
    """A reproducible synthetic option portfolio."""
    rng = DeterministicRng(seed)
    spot = np.array([rng.random() * 150 + 10 for _ in range(n_options)])
    strike = spot * np.array([0.7 + 0.6 * rng.random()
                              for _ in range(n_options)])
    rate = np.array([0.01 + 0.07 * rng.random() for _ in range(n_options)])
    vol = np.array([0.10 + 0.50 * rng.random() for _ in range(n_options)])
    expiry = np.array([0.25 + 2.0 * rng.random() for _ in range(n_options)])
    is_call = np.array([rng.bernoulli(0.5) for _ in range(n_options)])
    return OptionPortfolio(spot, strike, rate, vol, expiry, is_call)


def _norm_cdf(x: np.ndarray) -> np.ndarray:
    """Standard normal CDF via erf (no scipy needed on this path)."""
    return 0.5 * (1.0 + np.vectorize(math.erf)(x / math.sqrt(2.0)))


def price(portfolio: OptionPortfolio,
          channel: Optional[ApproxChannel] = None) -> np.ndarray:
    """Black-Scholes prices; inputs go through the channel when given."""
    channel = channel or IdentityChannel()
    spot = channel.transform_floats(portfolio.spot)
    strike = channel.transform_floats(portfolio.strike)
    rate = channel.transform_floats(portfolio.rate)
    vol = channel.transform_floats(portfolio.volatility)
    expiry = channel.transform_floats(portfolio.expiry)

    sqrt_t = np.sqrt(expiry)
    d1 = (np.log(spot / strike) + (rate + 0.5 * vol ** 2) * expiry) / (
        vol * sqrt_t)
    d2 = d1 - vol * sqrt_t
    call = spot * _norm_cdf(d1) - strike * np.exp(-rate * expiry) * \
        _norm_cdf(d2)
    put = call - spot + strike * np.exp(-rate * expiry)  # put-call parity
    return np.where(portfolio.is_call, call, put)


def output_error(precise: np.ndarray, approx: np.ndarray) -> float:
    """Mean relative price error (the application accuracy metric)."""
    precise = np.asarray(precise, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    denom = np.maximum(np.abs(precise), 1e-3)
    return float(np.mean(np.abs(approx - precise) / denom))
