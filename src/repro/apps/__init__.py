"""Application kernels for the output-quality studies (Figures 16-17).

Small, deterministic re-implementations of each benchmark's approximable
core (see DESIGN.md §4 for the substitution rationale), plus the
:class:`~repro.apps.channel.ApproxChannel` that routes their shared data
through the compression scheme under test.
"""

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.apps.suite import APP_RUNNERS, run_app

__all__ = [
    "ApproxChannel",
    "IdentityChannel",
    "APP_RUNNERS",
    "run_app",
]
