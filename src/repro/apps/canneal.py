"""canneal: simulated-annealing chip routing cost (PARSEC kernel stand-in).

PARSEC's canneal minimizes routing cost of a netlist by annealed element
swaps.  The stand-in anneals a placement of netlist elements on a 2-D grid;
the approximable data are the element coordinates that threads exchange
when evaluating swap costs.  The accuracy metric is the relative difference
of the final total wire length.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


@dataclass
class Netlist:
    """Elements on a grid plus their net connectivity."""

    positions: np.ndarray      # (n, 2) integer grid coordinates
    nets: List[Tuple[int, int]]


def generate_netlist(n_elements: int = 200, n_nets: int = 500,
                     grid: int = 64, seed: int = 17) -> Netlist:
    """A reproducible random netlist with locality-biased nets."""
    rng = DeterministicRng(seed)
    positions = np.array([[rng.randint(0, grid - 1),
                           rng.randint(0, grid - 1)]
                          for _ in range(n_elements)])
    nets = []
    for _ in range(n_nets):
        a = rng.randint(0, n_elements - 1)
        # Nets prefer nearby ids (module locality).
        b = (a + rng.randint(1, max(n_elements // 8, 2))) % n_elements
        nets.append((a, b))
    return Netlist(positions=positions, nets=nets)


def wire_length(positions: np.ndarray,
                nets: List[Tuple[int, int]]) -> float:
    """Total Manhattan wire length of the placement."""
    a = positions[[net[0] for net in nets]]
    b = positions[[net[1] for net in nets]]
    return float(np.abs(a - b).sum())


def anneal(netlist: Netlist, sweeps: int = 30, seed: int = 23,
           channel: Optional[ApproxChannel] = None) -> np.ndarray:
    """Swap-based annealing over channel-delivered coordinates.

    Swap-cost evaluation reads element coordinates through the channel
    (approximation may mis-rank a few swaps); accepted swaps update the
    precise placement, like the real benchmark where only evaluation data
    is approximable.
    """
    channel = channel or IdentityChannel()
    rng = DeterministicRng(seed)
    positions = netlist.positions.copy()
    n = len(positions)
    # Per-element net membership for incremental cost.
    member_nets: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
    for net in netlist.nets:
        member_nets[net[0]].append(net)
        member_nets[net[1]].append(net)
    temperature = 2.0
    for sweep in range(sweeps):
        observed = channel.transform_ints(positions)
        for _ in range(n // 2):
            a = rng.randint(0, n - 1)
            b = rng.randint(0, n - 1)
            if a == b:
                continue
            delta = 0
            for u, v in member_nets[a] + member_nets[b]:
                before = abs(observed[u] - observed[v]).sum()
                swapped = {a: b, b: a}
                uu, vv = swapped.get(u, u), swapped.get(v, v)
                after = abs(observed[uu] - observed[vv]).sum()
                delta += after - before
            if delta < 0 or rng.random() < np.exp(
                    -delta / max(temperature, 1e-6)):
                positions[[a, b]] = positions[[b, a]]
                observed[[a, b]] = observed[[b, a]]
        temperature *= 0.85
    return positions


def output_error(netlist: Netlist, precise_positions: np.ndarray,
                 approx_positions: np.ndarray) -> float:
    """Relative difference of the final routing cost."""
    precise_cost = wire_length(precise_positions, netlist.nets)
    approx_cost = wire_length(approx_positions, netlist.nets)
    return abs(approx_cost - precise_cost) / max(precise_cost, 1e-9)
