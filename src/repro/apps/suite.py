"""One-call application quality runners for the harness (Figure 16).

Each runner builds the benchmark's inputs, evaluates the kernel once through
an identity channel (precise) and once through the approximation channel of
the scheme under test, and returns the application-specific output error —
the quantity Figure 16 plots against the data error budget.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.apps import (
    blackscholes,
    bodytrack,
    canneal,
    fluidanimate,
    ssca2,
    streamcluster,
    swaptions,
    x264,
)
from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.compression.base import CompressionScheme

#: Problem sizes chosen so a full 8-benchmark sweep runs in seconds while
#: still exercising thousands of cache blocks per kernel.
SIZES = {
    "blackscholes": {"n_options": 512},
    "bodytrack": {"n_frames": 8, "size": 40},
    "canneal": {"n_elements": 120, "n_nets": 300, "sweeps": 15},
    "fluidanimate": {"n_particles": 120, "steps": 12},
    "streamcluster": {"n_points": 300, "k": 5, "iterations": 6},
    "swaptions": {"n_swaptions": 48, "n_paths": 200},
    "x264": {"size": 48, "search": 4},
    "ssca2": {"n_vertices": 64, "n_edges": 256},
}


def run_blackscholes(scheme: Optional[CompressionScheme]) -> float:
    """Output error of blackscholes under the scheme (0 when exact)."""
    sizes = SIZES["blackscholes"]
    portfolio = blackscholes.generate_portfolio(sizes["n_options"])
    precise = blackscholes.price(portfolio, IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = blackscholes.price(portfolio, channel)
    return blackscholes.output_error(precise, approx)


def run_bodytrack(scheme: Optional[CompressionScheme]) -> float:
    """Output error of bodytrack under the scheme (0 when exact)."""
    sizes = SIZES["bodytrack"]
    frames = bodytrack.generate_frames(sizes["n_frames"], sizes["size"])
    precise = bodytrack.track(frames, IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = bodytrack.track(frames, channel)
    return bodytrack.output_error(precise, approx)


def run_canneal(scheme: Optional[CompressionScheme]) -> float:
    """Output error of canneal under the scheme (0 when exact)."""
    sizes = SIZES["canneal"]
    netlist = canneal.generate_netlist(sizes["n_elements"], sizes["n_nets"])
    precise = canneal.anneal(netlist, sweeps=sizes["sweeps"],
                             channel=IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = canneal.anneal(netlist, sweeps=sizes["sweeps"], channel=channel)
    return canneal.output_error(netlist, precise, approx)


def run_fluidanimate(scheme: Optional[CompressionScheme]) -> float:
    """Output error of fluidanimate under the scheme (0 when exact)."""
    sizes = SIZES["fluidanimate"]
    positions, velocities = fluidanimate.generate_particles(
        sizes["n_particles"])
    precise = fluidanimate.simulate(positions, velocities,
                                    steps=sizes["steps"],
                                    channel=IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = fluidanimate.simulate(positions, velocities,
                                   steps=sizes["steps"], channel=channel)
    return fluidanimate.output_error(precise, approx)


def run_streamcluster(scheme: Optional[CompressionScheme]) -> float:
    """Output error of streamcluster under the scheme (0 when exact)."""
    sizes = SIZES["streamcluster"]
    points = streamcluster.generate_points(sizes["n_points"])
    precise = streamcluster.cluster(points, k=sizes["k"],
                                    iterations=sizes["iterations"],
                                    channel=IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = streamcluster.cluster(points, k=sizes["k"],
                                   iterations=sizes["iterations"],
                                   channel=channel)
    return streamcluster.output_error(precise, approx)


def run_swaptions(scheme: Optional[CompressionScheme]) -> float:
    """Output error of swaptions under the scheme (0 when exact)."""
    sizes = SIZES["swaptions"]
    book = swaptions.generate_book(sizes["n_swaptions"])
    precise = swaptions.price(book, n_paths=sizes["n_paths"],
                              channel=IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = swaptions.price(book, n_paths=sizes["n_paths"], channel=channel)
    return swaptions.output_error(precise, approx)


def run_x264(scheme: Optional[CompressionScheme]) -> float:
    """Output error of x264 under the scheme (0 when exact)."""
    sizes = SIZES["x264"]
    reference, current = x264.generate_frame_pair(sizes["size"])
    precise = x264.motion_estimate(reference, current,
                                   search=sizes["search"],
                                   channel=IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = x264.motion_estimate(reference, current,
                                  search=sizes["search"], channel=channel)
    return x264.output_error(precise, approx, current)


def run_ssca2(scheme: Optional[CompressionScheme]) -> float:
    """Output error of ssca2 under the scheme (0 when exact)."""
    sizes = SIZES["ssca2"]
    graph = ssca2.generate_rmat_graph(sizes["n_vertices"],
                                      sizes["n_edges"])
    precise = ssca2.betweenness_centrality(graph, IdentityChannel())
    channel = ApproxChannel(scheme) if scheme else IdentityChannel()
    approx = ssca2.betweenness_centrality(graph, channel)
    return ssca2.output_error(precise, approx)


APP_RUNNERS: Dict[str, Callable[[Optional[CompressionScheme]], float]] = {
    "blackscholes": run_blackscholes,
    "bodytrack": run_bodytrack,
    "canneal": run_canneal,
    "fluidanimate": run_fluidanimate,
    "streamcluster": run_streamcluster,
    "swaptions": run_swaptions,
    "x264": run_x264,
    "ssca2": run_ssca2,
}


def run_app(name: str, scheme: Optional[CompressionScheme]) -> float:
    """Output error of one application under one scheme (0 when exact)."""
    try:
        runner = APP_RUNNERS[name]
    except KeyError:
        raise ValueError(f"unknown application {name!r}; "
                         f"choose from {sorted(APP_RUNNERS)}") from None
    return runner(scheme)
