"""streamcluster: online k-median clustering (PARSEC kernel stand-in).

The approximable data are the point coordinates streamed between threads.
The paper singles this benchmark out (§5.4): approximating coordinates can
flip which center a point maps to, so its output error exceeds the data
error budget — a behaviour this kernel reproduces.  The accuracy metric is
the relative increase in clustering cost plus the fraction of points whose
assigned center changed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


def generate_points(n_points: int = 400, n_dims: int = 3,
                    n_clusters: int = 5, seed: int = 11) -> np.ndarray:
    """Gaussian blobs around ``n_clusters`` ground-truth centers."""
    rng = DeterministicRng(seed)
    centers = np.array([[rng.random() * 100 for _ in range(n_dims)]
                        for _ in range(n_clusters)])
    points = np.empty((n_points, n_dims))
    for i in range(n_points):
        center = centers[rng.randint(0, n_clusters - 1)]
        points[i] = [c + rng.gauss(0, 4.0) for c in center]
    return points


@dataclass
class ClusteringResult:
    """Centers, per-point assignment and total cost."""

    centers: np.ndarray
    assignment: np.ndarray
    cost: float


def cluster(points: np.ndarray, k: int = 5, iterations: int = 8,
            channel: Optional[ApproxChannel] = None) -> ClusteringResult:
    """Lloyd-style k-median clustering over channel-delivered coordinates.

    Initial centers are the first *k* points (deterministic, as in the
    PARSEC gsl stream ordering); each iteration re-reads the point stream
    through the channel, which is where approximation enters.
    """
    channel = channel or IdentityChannel()
    points = np.asarray(points, dtype=np.float64)
    centers = points[:k].copy()
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(iterations):
        observed = channel.transform_floats(points)
        distances = np.linalg.norm(
            observed[:, None, :] - centers[None, :, :], axis=2)
        assignment = np.argmin(distances, axis=1)
        for center_index in range(k):
            members = observed[assignment == center_index]
            if len(members):
                centers[center_index] = np.median(members, axis=0)
    final = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=2)
    assignment = np.argmin(final, axis=1)
    cost = float(final[np.arange(len(points)), assignment].sum())
    return ClusteringResult(centers=centers, assignment=assignment,
                            cost=cost)


def output_error(precise: ClusteringResult,
                 approx: ClusteringResult) -> float:
    """Cost degradation plus center-mismatch fraction (§5.4's failure
    mode: approximating coordinates mismatches centers)."""
    cost_err = abs(approx.cost - precise.cost) / max(precise.cost, 1e-9)
    mismatch = float(np.mean(precise.assignment != approx.assignment))
    return cost_err + mismatch
