"""fluidanimate: SPH particle simulation (PARSEC kernel stand-in).

PARSEC's fluidanimate integrates a smoothed-particle-hydrodynamics fluid.
The stand-in runs a small 2-D SPH-like step loop (density from neighbors,
pressure forces, Euler integration); the approximable data are the particle
positions/velocities exchanged between the spatial partitions each thread
owns.  The accuracy metric is the mean particle displacement between the
precise and approximate final states, normalized by the domain size.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng

DOMAIN = 50.0
SMOOTHING = 4.0
STIFFNESS = 40.0
REST_DENSITY = 1.2
DT = 0.04
GRAVITY = np.array([0.0, -2.0])


def generate_particles(n_particles: int = 150,
                       seed: int = 29) -> Tuple[np.ndarray, np.ndarray]:
    """A reproducible dam-break style initial condition."""
    rng = DeterministicRng(seed)
    positions = np.array([[rng.random() * DOMAIN * 0.4 + 2.0,
                           rng.random() * DOMAIN * 0.8 + 2.0]
                          for _ in range(n_particles)])
    velocities = np.zeros_like(positions)
    return positions, velocities


def simulate(positions: np.ndarray, velocities: np.ndarray,
             steps: int = 20,
             channel: Optional[ApproxChannel] = None) -> np.ndarray:
    """Run ``steps`` SPH steps over channel-delivered neighbor data."""
    channel = channel or IdentityChannel()
    positions = positions.copy()
    velocities = velocities.copy()
    for _ in range(steps):
        # Neighbor positions cross the NoC between spatial partitions.
        observed = channel.transform_floats(positions)
        deltas = observed[:, None, :] - observed[None, :, :]
        distances = np.linalg.norm(deltas, axis=2)
        kernel = np.maximum(1.0 - distances / SMOOTHING, 0.0) ** 2
        np.fill_diagonal(kernel, 0.0)
        density = kernel.sum(axis=1) + 1e-6
        pressure = STIFFNESS * np.maximum(density - REST_DENSITY, 0.0)
        # Symmetric pressure force along the neighbor directions.
        direction = deltas / (distances[:, :, None] + 1e-9)
        strength = (pressure[:, None] + pressure[None, :]) * kernel
        force = (direction * strength[:, :, None]).sum(axis=1)
        velocities += (force / density[:, None] + GRAVITY) * DT
        velocities *= 0.995  # viscosity
        positions += velocities * DT
        # Reflecting walls.
        for axis in range(2):
            low = positions[:, axis] < 0.0
            high = positions[:, axis] > DOMAIN
            positions[low, axis] *= -1.0
            positions[high, axis] = 2 * DOMAIN - positions[high, axis]
            velocities[low | high, axis] *= -0.5
    return positions


def output_error(precise: np.ndarray, approx: np.ndarray) -> float:
    """Mean particle displacement normalized by the domain size."""
    displacement = np.linalg.norm(np.asarray(approx) - np.asarray(precise),
                                  axis=1)
    return float(np.mean(displacement)) / DOMAIN
