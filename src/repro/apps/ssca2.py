"""SSCA2 betweenness centrality (the paper's big-data graph benchmark).

SSCA2 evaluates betweenness centrality (BC) on small-world networks; the
paper modifies it "to evaluate betweenness centrality in real-world graphs"
and approximates "the floating-point pair-wise dependencies that is used for
centrality calculation".  We implement Brandes' algorithm from scratch over
an R-MAT graph (the SSCA2 generator model); the per-source dependency
vectors pass through the approximation channel before being accumulated,
exactly the data the paper approximates.  The accuracy metric is the mean
pair-wise BC difference between approximate and precise runs, normalized by
the precise BC scale.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

import numpy as np

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.util.rng import DeterministicRng


def generate_rmat_graph(n_vertices: int = 128, n_edges: int = 512,
                        seed: int = 5,
                        a: float = 0.57, b: float = 0.19,
                        c: float = 0.19) -> List[List[int]]:
    """R-MAT small-world graph (the SSCA2 scalable data generator).

    Returns an undirected adjacency list without self loops or duplicate
    edges.  ``n_vertices`` must be a power of two.
    """
    if n_vertices & (n_vertices - 1):
        raise ValueError("R-MAT needs a power-of-two vertex count")
    rng = DeterministicRng(seed)
    levels = n_vertices.bit_length() - 1
    edges = set()
    attempts = 0
    while len(edges) < n_edges and attempts < n_edges * 20:
        attempts += 1
        u = v = 0
        for _ in range(levels):
            r = rng.random()
            u <<= 1
            v <<= 1
            if r < a:
                pass
            elif r < a + b:
                v |= 1
            elif r < a + b + c:
                u |= 1
            else:
                u |= 1
                v |= 1
        if u != v:
            edges.add((min(u, v), max(u, v)))
    adjacency: List[List[int]] = [[] for _ in range(n_vertices)]
    for u, v in sorted(edges):
        adjacency[u].append(v)
        adjacency[v].append(u)
    return adjacency


def betweenness_centrality(adjacency: List[List[int]],
                           channel: Optional[ApproxChannel] = None
                           ) -> np.ndarray:
    """Brandes' exact BC, with per-source dependencies routed through the
    channel before accumulation (the paper's approximation point)."""
    channel = channel or IdentityChannel()
    n = len(adjacency)
    bc = np.zeros(n, dtype=np.float64)
    for source in range(n):
        # --- forward BFS: shortest-path counts ---
        sigma = np.zeros(n)
        sigma[source] = 1.0
        distance = np.full(n, -1, dtype=np.int64)
        distance[source] = 0
        predecessors: List[List[int]] = [[] for _ in range(n)]
        order: List[int] = []
        queue = deque([source])
        while queue:
            vertex = queue.popleft()
            order.append(vertex)
            for neighbor in adjacency[vertex]:
                if distance[neighbor] < 0:
                    distance[neighbor] = distance[vertex] + 1
                    queue.append(neighbor)
                if distance[neighbor] == distance[vertex] + 1:
                    sigma[neighbor] += sigma[vertex]
                    predecessors[neighbor].append(vertex)
        # --- backward accumulation of pair-wise dependencies ---
        delta = np.zeros(n)
        for vertex in reversed(order):
            for predecessor in predecessors[vertex]:
                delta[predecessor] += (sigma[predecessor] / sigma[vertex]
                                       ) * (1.0 + delta[vertex])
        delta[source] = 0.0
        # The dependency vector is shared data: it crosses the NoC before
        # the accumulating core adds it into the centrality scores.
        bc += channel.transform_floats(delta)
    return bc / 2.0  # undirected graph: each pair counted twice


def output_error(precise: np.ndarray, approx: np.ndarray) -> float:
    """Mean pair-wise BC difference, normalized by the mean precise BC."""
    precise = np.asarray(precise, dtype=np.float64)
    approx = np.asarray(approx, dtype=np.float64)
    scale = max(float(np.mean(np.abs(precise))), 1e-12)
    return float(np.mean(np.abs(approx - precise))) / scale
