"""Deterministic random number generation for reproducible experiments.

Every stochastic component (traffic injection, workload value models, cache
access streams) draws from a :class:`DeterministicRng` seeded from the
experiment configuration, so a figure regenerated twice produces identical
rows.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A thin, seedable wrapper around :class:`random.Random`.

    The wrapper exists so components never touch the global ``random`` module
    and so child generators can be forked deterministically (``fork``), which
    keeps per-node traffic streams independent of simulation interleaving.
    """

    def __init__(self, seed: int = 0):
        self._seed = seed
        self._rng = random.Random(seed)

    @property
    def seed(self) -> int:
        """Seed this generator was created with."""
        return self._seed

    def fork(self, salt: int) -> "DeterministicRng":
        """Create an independent child generator for subcomponent ``salt``."""
        return DeterministicRng((self._seed * 1000003 + salt) & 0x7FFFFFFF)

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self._rng.random()

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def randbits(self, bits: int) -> int:
        """Uniform integer with ``bits`` random bits."""
        return self._rng.getrandbits(bits)

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly pick one element of ``items``."""
        return self._rng.choice(items)

    def choices(self, items: Sequence[T], weights: Optional[Sequence[float]],
                k: int) -> List[T]:
        """Pick ``k`` elements with replacement, optionally weighted."""
        return self._rng.choices(items, weights=weights, k=k)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normal variate."""
        return self._rng.gauss(mu, sigma)

    def expovariate(self, lam: float) -> float:
        """Exponential variate with rate ``lam``."""
        return self._rng.expovariate(lam)

    def shuffle(self, items: List[T]) -> None:
        """Shuffle ``items`` in place."""
        self._rng.shuffle(items)

    def bernoulli(self, p: float) -> bool:
        """Return True with probability ``p``."""
        return self._rng.random() < p
