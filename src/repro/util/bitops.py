"""Two's-complement and IEEE-754 single precision bit manipulation.

All APPROX-NoC structures (AVCL, APCL, the pattern-match tables) operate on
raw 32-bit patterns; these helpers are the single source of truth for the
integer <-> pattern <-> float conversions used throughout the library.
"""

from __future__ import annotations

import struct

WORD_BITS = 32
WORD_MASK = 0xFFFFFFFF
SIGN_BIT = 0x80000000

# IEEE-754 single precision field layout.
MANTISSA_BITS = 23
MANTISSA_MASK = (1 << MANTISSA_BITS) - 1
EXPONENT_BITS = 8
EXPONENT_MASK = (1 << EXPONENT_BITS) - 1
EXPONENT_SHIFT = MANTISSA_BITS
SIGN_SHIFT = 31


def to_signed(pattern: int) -> int:
    """Interpret a 32-bit pattern as a two's-complement signed integer."""
    pattern &= WORD_MASK
    if pattern & SIGN_BIT:
        return pattern - (1 << WORD_BITS)
    return pattern


def to_unsigned(value: int) -> int:
    """Encode a signed integer as its 32-bit two's-complement pattern."""
    return value & WORD_MASK


def sign_extends_from(pattern: int, bits: int) -> bool:
    """Return True when ``pattern`` is the sign extension of its low ``bits``.

    This is the membership test for the frequent-pattern classes of Figure 5
    (4-bit / one-byte / halfword sign-extended patterns).
    """
    if not 0 < bits <= WORD_BITS:
        raise ValueError(f"bits must be in 1..{WORD_BITS}, got {bits}")
    value = to_signed(pattern)
    low = 1 << (bits - 1)
    return -low <= value < low


def float_to_bits(value: float) -> int:
    """Return the IEEE-754 single precision pattern of ``value``.

    The conversion round-trips through ``struct`` so NaN payloads, infinities
    and denormals survive unchanged (modulo the float64 -> float32 rounding
    inherent to storing a Python float in 32 bits).
    """
    return struct.unpack("<I", struct.pack("<f", value))[0]


def bits_to_float(pattern: int) -> float:
    """Decode a 32-bit pattern as an IEEE-754 single precision value."""
    return struct.unpack("<f", struct.pack("<I", pattern & WORD_MASK))[0]


def float_fields(pattern: int) -> tuple[int, int, int]:
    """Split a float pattern into ``(sign, exponent, mantissa)`` fields."""
    pattern &= WORD_MASK
    sign = pattern >> SIGN_SHIFT
    exponent = (pattern >> EXPONENT_SHIFT) & EXPONENT_MASK
    mantissa = pattern & MANTISSA_MASK
    return sign, exponent, mantissa


def fields_to_float(sign: int, exponent: int, mantissa: int) -> int:
    """Assemble a float pattern from its fields (inverse of float_fields)."""
    if sign not in (0, 1):
        raise ValueError(f"sign must be 0 or 1, got {sign}")
    if not 0 <= exponent <= EXPONENT_MASK:
        raise ValueError(f"exponent out of range: {exponent}")
    if not 0 <= mantissa <= MANTISSA_MASK:
        raise ValueError(f"mantissa out of range: {mantissa}")
    return (sign << SIGN_SHIFT) | (exponent << EXPONENT_SHIFT) | mantissa


def clamp(value: int, low: int, high: int) -> int:
    """Clamp ``value`` to the inclusive interval [low, high]."""
    if low > high:
        raise ValueError(f"empty interval [{low}, {high}]")
    return low if value < low else high if value > high else value


def bit_length(value: int) -> int:
    """Number of bits needed to represent ``value`` (0 for 0)."""
    return int(value).bit_length()


def popcount(pattern: int) -> int:
    """Number of set bits in ``pattern``."""
    return (pattern & WORD_MASK).bit_count()
