"""Low-level helpers shared by every APPROX-NoC subsystem.

The whole framework operates on 32-bit machine words (the paper's word
granularity) carried inside 64-byte cache blocks, so this package centralizes
two's-complement and IEEE-754 bit manipulation, plus a tiny deterministic RNG
wrapper used by traffic and workload generators.
"""

from repro.util.bitops import (
    WORD_BITS,
    WORD_MASK,
    SIGN_BIT,
    to_signed,
    to_unsigned,
    sign_extends_from,
    float_to_bits,
    bits_to_float,
    float_fields,
    fields_to_float,
    clamp,
    bit_length,
    popcount,
)
from repro.util.rng import DeterministicRng

__all__ = [
    "WORD_BITS",
    "WORD_MASK",
    "SIGN_BIT",
    "to_signed",
    "to_unsigned",
    "sign_extends_from",
    "float_to_bits",
    "bits_to_float",
    "float_fields",
    "fields_to_float",
    "clamp",
    "bit_length",
    "popcount",
    "DeterministicRng",
]
