"""Unit tests for the flow layer: CFG construction and the fixed-point
dataflow solver (branches, loops, try/except, early returns, aliases)."""

import ast
import textwrap

from repro.analysis.flow import (
    PathEval,
    build_cfg,
    element_exprs,
    iter_elements,
    solve_forward,
)
from repro.analysis.flow.dataflow import AbstractEval


def make_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func)


def solve_paths(source):
    """Solve the first function with PathEval; return (cfg, in-states)."""
    cfg = make_cfg(source)
    return cfg, solve_forward(cfg, PathEval())


def final_state(source):
    """The solved state at the function's ``return`` statement."""
    cfg, states = solve_paths(source)
    for elem, state in iter_elements(cfg, PathEval(), states):
        if isinstance(elem, ast.Return):
            return dict(state)
    raise AssertionError("fixture has no return statement")


class TestCfgShapes:
    def test_linear_body_is_single_block(self):
        cfg = make_cfg("""
            def f(x):
                a = x
                b = a
                return b
            """)
        real = [b for b in cfg.blocks.values() if b.elems]
        assert len(real) == 1

    def test_if_else_branches_and_join(self):
        cfg = make_cfg("""
            def f(x):
                if x:
                    a = 1
                else:
                    a = 2
                return a
            """)
        # entry (test) -> two branch blocks -> join.
        entry = cfg.blocks[cfg.entry]
        assert len(entry.succs) == 2
        joins = [b for b in cfg.blocks.values()
                 if sum(entry_id in blk.succs
                        for entry_id, blk in cfg.blocks.items()) >= 0]
        assert joins  # structural sanity; the solver tests prove the join

    def test_while_has_back_edge(self):
        cfg = make_cfg("""
            def f(x):
                while x:
                    x = x - 1
                return x
            """)
        # Some block must point back at an earlier block (the loop head).
        back = any(succ <= bid
                   for bid, block in cfg.blocks.items()
                   for succ in block.succs)
        assert back

    def test_early_return_targets_exit(self):
        cfg = make_cfg("""
            def f(x):
                if x:
                    return 1
                return 2
            """)
        returning = [b for b in cfg.blocks.values()
                     if any(isinstance(e, ast.Return) for e in b.elems)]
        assert len(returning) == 2
        assert all(b.succs == [cfg.exit_id] for b in returning)

    def test_unreachable_code_still_present(self):
        cfg = make_cfg("""
            def f(x):
                return x
                y = 1
            """)
        elems = [e for b in cfg.blocks.values() for e in b.elems]
        assert any(isinstance(e, ast.Assign) for e in elems)
        assert set(cfg.rpo()) == set(cfg.blocks)

    def test_element_exprs_for_compound_heads(self):
        tree = ast.parse("for i in xs:\n    pass\n")
        for_node = tree.body[0]
        exprs = element_exprs(for_node)
        assert for_node.iter in exprs

    def test_try_except_edges_from_mid_body(self):
        cfg = make_cfg("""
            def f(x):
                try:
                    a = 1
                    b = risky()
                    c = 2
                except ValueError:
                    d = 3
                return x
            """)
        handler_blocks = [bid for bid, b in cfg.blocks.items()
                          if any(isinstance(e, ast.ExceptHandler) or
                                 (isinstance(e, ast.Assign) and
                                  isinstance(e.targets[0], ast.Name) and
                                  e.targets[0].id == "d")
                                 for e in b.elems)]
        assert handler_blocks
        # Every body block must reach a handler entry (exceptions can be
        # raised between any two statements).
        body_blocks = [bid for bid, b in cfg.blocks.items()
                       if any(isinstance(e, ast.Assign) and
                              isinstance(e.targets[0], ast.Name) and
                              e.targets[0].id in ("a", "b", "c")
                              for e in b.elems)]
        for bid in body_blocks:
            reachable = set()
            stack = [bid]
            while stack:
                cur = stack.pop()
                for succ in cfg.blocks[cur].succs:
                    if succ not in reachable:
                        reachable.add(succ)
                        stack.append(succ)
            assert reachable & set(handler_blocks)


class TestSolver:
    def test_straight_line_alias(self):
        state = final_state("""
            def f(self):
                net = self.net
                return net
            """)
        assert state["net"] == frozenset({"self.net"})

    def test_branch_join_unions_labels(self):
        state = final_state("""
            def f(self, cond):
                if cond:
                    target = self.left
                else:
                    target = self.right
                return target
            """)
        assert state["target"] == frozenset({"self.left", "self.right"})

    def test_loop_target_gets_element_path(self):
        state = final_state("""
            def f(self):
                for router in self.routers:
                    last = router
                return last
            """)
        assert "self.routers[]" in state["router"]

    def test_loop_reassignment_reaches_fixed_point(self):
        state = final_state("""
            def f(self, n):
                cur = self.head
                while n:
                    cur = self.tail
                    n = n - 1
                return cur
            """)
        assert state["cur"] == frozenset({"self.head", "self.tail"})

    def test_try_except_merges_partial_defs(self):
        state = final_state("""
            def f(self):
                obj = self.primary
                try:
                    obj = self.risky
                    obj = self.after
                except ValueError:
                    flag = obj
                return obj
            """)
        # Inside the handler, obj may be any of the three definitions.
        assert state["obj"] >= frozenset({"self.after"})

    def test_subscript_appends_index_marker(self):
        state = final_state("""
            def f(self, i):
                ni = self.nis[i]
                return ni
            """)
        assert state["ni"] == frozenset({"self.nis[]"})

    def test_bound_method_alias(self):
        state = final_state("""
            def f(self):
                push = self.net._pending.append
                return push
            """)
        assert state["push"] == frozenset({"self.net._pending.append"})

    def test_del_kills_binding(self):
        state = final_state("""
            def f(self):
                tmp = self.net
                del tmp
                return 0
            """)
        assert "tmp" not in state

    def test_comprehension_targets_resolve(self):
        # Comprehension target binding happens in an inner scope; the
        # outer state must keep its own labels untouched.
        state = final_state("""
            def f(self):
                total = self.count
                sizes = [r.depth for r in self.routers]
                return total
            """)
        assert state["total"] == frozenset({"self.count"})

    def test_reaching_defs_via_bind_labels(self):
        class DefSites(AbstractEval):
            def bind_labels(self, name, labels, elem):
                return frozenset({f"L{elem.lineno}"})

        source = textwrap.dedent("""
            def f(cond):
                v = 1
                if cond:
                    v = 2
                use = v
            """)
        func = ast.parse(source).body[0]
        cfg = build_cfg(func)
        states = solve_forward(cfg, DefSites())
        final = {}
        for elem, state in iter_elements(cfg, DefSites(), states):
            if isinstance(elem, ast.Assign) and \
                    isinstance(elem.targets[0], ast.Name) and \
                    elem.targets[0].id == "use":
                final = dict(state)
        # Both defs of v (lines 3 and 5) reach the use on line 6.
        assert final["v"] == frozenset({"L3", "L5"})

    def test_break_skips_rest_of_loop(self):
        state = final_state("""
            def f(self, items):
                found = self.default
                for item in items:
                    if item:
                        found = self.hit
                        break
                return found
            """)
        assert state["found"] == frozenset({"self.default", "self.hit"})
