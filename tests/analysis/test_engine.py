"""Engine, context, and suppression-comment behaviour."""

import textwrap

import pytest

from repro.analysis import get_rule
from repro.analysis.context import module_name_for_path
from repro.analysis.engine import analyze_paths, analyze_source, \
    iter_python_files


class TestModuleNames:
    @pytest.mark.parametrize("path,module", [
        ("src/repro/noc/router.py", "repro.noc.router"),
        ("src/repro/noc/__init__.py", "repro.noc"),
        ("tests/core/test_avcl.py", "tests.core.test_avcl"),
        ("./src/repro/core/avcl.py", "repro.core.avcl"),
        ("src\\repro\\util\\bitops.py", "repro.util.bitops"),
    ])
    def test_mapping(self, path, module):
        assert module_name_for_path(path) == module


class TestSuppression:
    RULE = "banned-import"

    def test_same_line_allow(self):
        findings = analyze_source(
            "src/repro/noc/fixture.py",
            "import random  # repro: allow[banned-import]\n",
            [get_rule(self.RULE)])
        assert findings == []

    def test_comment_line_allow_covers_next_statement(self):
        findings = analyze_source(
            "src/repro/noc/fixture.py",
            textwrap.dedent("""\
                # Justification for the exception lives here.
                # repro: allow[banned-import]
                import random
                """),
            [get_rule(self.RULE)])
        assert findings == []

    def test_allow_for_other_rule_does_not_suppress(self):
        findings = analyze_source(
            "src/repro/noc/fixture.py",
            "import random  # repro: allow[wall-clock]\n",
            [get_rule(self.RULE)])
        assert len(findings) == 1

    def test_allow_does_not_leak_to_later_lines(self):
        findings = analyze_source(
            "src/repro/noc/fixture.py",
            textwrap.dedent("""\
                import random  # repro: allow[banned-import]
                import secrets
                """),
            [get_rule(self.RULE)])
        assert len(findings) == 1
        assert findings[0].line == 2


class TestEngine:
    def test_syntax_error_raises(self):
        with pytest.raises(SyntaxError):
            analyze_source("src/repro/noc/fixture.py", "def broken(:\n")

    def test_findings_sorted_by_location(self):
        findings = analyze_source(
            "src/repro/noc/fixture.py",
            "import secrets\nimport random\n",
            [get_rule("banned-import")])
        assert [f.line for f in findings] == [1, 2]

    def test_analyze_paths_counts_parse_errors(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = analyze_paths([tmp_path])
        assert report.files_scanned == 2
        assert len(report.parse_errors) == 1
        assert not report.ok

    def test_iter_python_files_skips_caches(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "mod.cpython-310.py").write_text("x = 1\n")
        found = list(iter_python_files([tmp_path]))
        assert [p.name for p in found] == ["mod.py"]

    def test_iter_python_files_dedupes(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("x = 1\n")
        found = list(iter_python_files([tmp_path, mod]))
        assert len(found) == 1
