"""Fixture tests for the REPRO81x RNG stream-isolation taint pass."""

import textwrap

from repro.analysis import get_rule
from repro.analysis.engine import analyze_project, analyze_source

FAULTS = "src/repro/faults/fixture.py"
TRAFFIC = "src/repro/traffic/fixture.py"


def run_rule(rule_name, path, source):
    return analyze_source(path, textwrap.dedent(source),
                          [get_rule(rule_name)])


def run_project(rule_name, sources):
    dedented = {path: textwrap.dedent(src)
                for path, src in sources.items()}
    return analyze_project(dedented, [get_rule(rule_name)])


class TestStreamIsolation:
    def test_fault_stream_drawn_in_workload_flags(self):
        # The fault injector hands its (fault-family) stream to a
        # workload generator, which then draws from it: the taint must
        # survive the constructor-argument hop and the self-attribute
        # store before the draw is flagged.
        findings = run_project("rng-stream-isolation", {
            FAULTS: """\
                from repro.util.rng import DeterministicRng

                class Injector:
                    def __init__(self, seed):
                        self.rng = DeterministicRng(seed)

                    def build_generator(self):
                        return Generator(self.rng.fork(2))
                """,
            TRAFFIC: """\
                class Generator:
                    def __init__(self, rng):
                        self.rng = rng

                    def next_packet(self):
                        return self.rng.randint(0, 7)
                """,
        })
        assert len(findings) == 1
        assert findings[0].path == TRAFFIC
        assert "fault-class stream" in findings[0].message

    def test_workload_owns_its_stream_passes(self):
        assert run_rule("rng-stream-isolation", TRAFFIC, """\
            from repro.util.rng import DeterministicRng

            class Generator:
                def __init__(self, seed):
                    self.rng = DeterministicRng(seed).fork(1)

                def next_packet(self):
                    return self.rng.randint(0, 7)
            """) == []

    def test_fault_code_drawing_workload_stream_flags(self):
        findings = run_project("rng-stream-isolation", {
            TRAFFIC: """\
                from repro.util.rng import DeterministicRng

                def make_stream(seed):
                    return build_models(DeterministicRng(seed))
                """,
            FAULTS: """\
                def build_models(rng):
                    return rng.random()
                """,
        })
        assert len(findings) == 1
        assert findings[0].path == FAULTS
        assert "workload stream" in findings[0].message

    def test_fault_code_drawing_fault_stream_passes(self):
        assert run_rule("rng-stream-isolation", FAULTS, """\
            from repro.util.rng import DeterministicRng
            from repro.faults.config import BITFLIP_SALT

            class Injector:
                def __init__(self, seed):
                    self._bitflip_rng = DeterministicRng(seed).fork(
                        BITFLIP_SALT)

                def flip(self):
                    return self._bitflip_rng.randbits(5)
            """) == []


class TestSaltCollision:
    def test_duplicate_literal_salts_flag(self):
        findings = run_rule("rng-salt-collision", FAULTS, """\
            from repro.util.rng import DeterministicRng

            def make(seed):
                rng = DeterministicRng(seed)
                first = rng.fork(3)
                second = rng.fork(3)
                return first, second
            """)
        assert len(findings) == 1
        assert "collides" in findings[0].message

    def test_constant_aliasing_literal_flags(self):
        # BITFLIP_SALT == 1 in repro.faults.config: forking with the
        # literal and the named constant yields the same stream.
        findings = run_rule("rng-salt-collision", FAULTS, """\
            from repro.util.rng import DeterministicRng
            from repro.faults.config import BITFLIP_SALT

            def make(seed):
                rng = DeterministicRng(seed)
                a = rng.fork(1)
                b = rng.fork(BITFLIP_SALT)
                return a, b
            """)
        assert len(findings) == 1

    def test_distinct_salts_pass(self):
        assert run_rule("rng-salt-collision", FAULTS, """\
            from repro.util.rng import DeterministicRng
            from repro.faults.config import BITFLIP_SALT, DROP_SALT

            def make(seed):
                rng = DeterministicRng(seed)
                a = rng.fork(BITFLIP_SALT)
                b = rng.fork(DROP_SALT)
                return a, b
            """) == []

    def test_unresolvable_salts_pass(self):
        # Data-dependent salts (per-router, per-port) cannot collide
        # statically; the rule stays silent rather than guessing.
        assert run_rule("rng-salt-collision", FAULTS, """\
            from repro.util.rng import DeterministicRng

            def make(seed, rid, port):
                rng = DeterministicRng(seed)
                a = rng.fork(rid)
                b = rng.fork(port)
                return a, b
            """) == []

    def test_loop_fork_is_single_site(self):
        # One syntactic fork site executed many times is not a
        # collision — the salts differ at runtime.
        assert run_rule("rng-salt-collision", FAULTS, """\
            from repro.util.rng import DeterministicRng

            def make(seed):
                rng = DeterministicRng(seed)
                return [rng.fork(7) for _ in range(4)]
            """) == []
