"""The linter's own gate, run as a test: the real tree must be clean.

This is the same check CI runs via ``python -m repro.analysis src tests``,
kept as a test so a plain ``pytest`` run catches invariant violations even
without the CI lint job — and so the baseline policy (empty for
``repro.core`` and ``repro.util``) is enforced in-repo.
"""

from pathlib import Path

from repro.analysis import Baseline, analyze_paths
from repro.analysis.baseline import DEFAULT_BASELINE

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_repo_tree_is_clean():
    report = analyze_paths([REPO_ROOT / "src", REPO_ROOT / "tests"])
    assert report.files_scanned > 100
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    new, _, _ = baseline.split(report.findings)
    assert report.parse_errors == []
    assert new == [], "\n".join(f.format_human() for f in new)


def test_analysis_package_itself_is_clean():
    # The linter must hold itself to its own rules (it sits inside the
    # strict-typing scope, so untyped-def applies to it too).
    report = analyze_paths([REPO_ROOT / "src" / "repro" / "analysis"])
    assert report.ok, "\n".join(f.format_human() for f in report.findings)


def test_committed_baseline_is_empty_for_core_and_util():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    protected = [f for f in baseline.findings
                 if "/repro/core/" in f.path.replace("\\", "/")
                 or "/repro/util/" in f.path.replace("\\", "/")]
    assert protected == [], (
        "baseline policy: repro.core and repro.util carry no grandfathered "
        "debt\n" + "\n".join(f.format_human() for f in protected))


def test_flow_proof_passes_hold_on_real_tree():
    """The whole-program proof passes (REPRO80x/81x/82x) certify the real
    simulator with an *empty* baseline: every state-classification claim,
    RNG stream boundary and cross-core surface is proven, not
    grandfathered."""
    from repro.analysis import get_rule

    flow_rules = [get_rule(name) for name in (
        "state-static-rebind", "state-counter-shape", "skip-path-purity",
        "state-containment", "state-clock-advance",
        "rng-stream-isolation", "rng-salt-collision",
        "router-surface-parity", "core-backend-parity",
        "shift-range", "unmasked-word-arith", "possible-zero-div",
        "avcl-error-bound", "hot-alloc")]
    report = analyze_paths([REPO_ROOT / "src"], flow_rules)
    assert report.ok, "\n".join(f.format_human() for f in report.findings)


def test_committed_baseline_is_empty_for_flow_proofs():
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
    flow = [f for f in baseline.findings
            if f.rule.startswith(("state-", "rng-", "router-", "core-",
                                  "shift-", "unmasked-", "possible-",
                                  "avcl-", "hot-"))]
    assert flow == [], (
        "baseline policy: flow-proof findings are fixed or carry inline "
        "# repro: allow[...] justifications, never baseline entries\n"
        + "\n".join(f.format_human() for f in flow))
