"""Fixture tests for the REPRO80x flow-sensitive state-classification
proofs.

Fixtures shadow the real simulator module paths (e.g.
``src/repro/noc/router.py``) so the mutation collector audits them, while
the classification registry itself is still lazily imported from the
*installed* ``repro.noc.network`` — fixtures are judged against the real
``SKIP_ACCOUNTED_STATE`` claims.
"""

import re
import textwrap
from pathlib import Path

from repro.analysis import get_rule
from repro.analysis.engine import analyze_project, analyze_source

REPO_ROOT = Path(__file__).resolve().parents[2]

NETWORK = "src/repro/noc/network.py"
ROUTER = "src/repro/noc/router.py"
CORE = "src/repro/noc/core_soa.py"
FAULTS = "src/repro/faults/inject.py"


def run_rule(rule_name, path, source):
    return analyze_source(path, textwrap.dedent(source),
                          [get_rule(rule_name)])


def run_project(rule_name, sources):
    dedented = {path: textwrap.dedent(src)
                for path, src in sources.items()}
    return analyze_project(dedented, [get_rule(rule_name)])


class TestStaticFieldRebound:
    def test_rebind_outside_init_flags(self):
        findings = run_rule("state-static-rebind", ROUTER, """\
            class Router:
                def __init__(self, config):
                    self.pipe_delay = config.pipe_delay

                def tick(self, now):
                    self.pipe_delay = 0
            """)
        assert len(findings) == 1
        assert "pipe_delay" in findings[0].message

    def test_init_rebind_passes(self):
        assert run_rule("state-static-rebind", ROUTER, """\
            class Router:
                def __init__(self, config):
                    self.pipe_delay = config.pipe_delay
            """) == []

    def test_registered_late_init_path_passes(self):
        # SoaCore.bind is a registered init path for the static wiring.
        assert run_rule("state-static-rebind", CORE, """\
            class SoaCore:
                def __init__(self):
                    self.net = None

                def bind(self, network):
                    self.net = network
            """) == []

    def test_deep_mutation_through_static_field_passes(self):
        # Router.stats is static (the *binding*); mutating a field of the
        # stats object is not a rebinding of the router's slot.
        assert run_rule("state-static-rebind", ROUTER, """\
            class Router:
                def tick(self, now):
                    self.stats.cycles = now
            """) == []

    def test_alias_content_mutation_flags(self):
        findings = run_rule("state-static-rebind", NETWORK, """\
            class Network:
                def step(self):
                    fns = self._route_fns
                    fns.append(None)
            """)
        assert len(findings) == 1
        assert "_route_fns" in findings[0].message


class TestCounterShape:
    def test_wholesale_reset_flags(self):
        findings = run_rule("state-counter-shape", NETWORK, """\
            class Network:
                def step(self):
                    self._buffered_total = 0
            """)
        assert len(findings) == 1
        assert "_buffered_total" in findings[0].message

    def test_augmented_step_passes(self):
        assert run_rule("state-counter-shape", NETWORK, """\
            class Network:
                def step(self):
                    self._buffered_total += 1
                    self._busy_ni_count -= 1
            """) == []

    def test_boolean_flag_store_passes(self):
        assert run_rule("state-counter-shape", NETWORK, """\
            class Network:
                def step(self, node):
                    self._ni_active[node] = True
            """) == []

    def test_non_boolean_content_store_flags(self):
        findings = run_rule("state-counter-shape", NETWORK, """\
            class Network:
                def step(self, node):
                    self._ni_active[node] = 7
            """)
        assert len(findings) == 1


class TestSkipPathPurity:
    def test_frozen_write_in_skip_path_flags(self):
        findings = run_rule("skip-path-purity", CORE, """\
            class SoaCore:
                def skip_all(self, count):
                    self.out_credits[0] = 0
            """)
        assert len(findings) == 1
        assert "out_credits" in findings[0].message
        assert "frozen" in findings[0].message

    def test_replayed_write_in_skip_path_passes(self):
        assert run_rule("skip-path-purity", CORE, """\
            class SoaCore:
                def skip_all(self, count):
                    self.va_input_rr[0] = count
            """) == []

    def test_unclassified_write_in_skip_path_flags(self):
        findings = run_rule("skip-path-purity", NETWORK, """\
            class Network:
                def _fast_forward(self, target):
                    self.brand_new_cache = target
            """)
        assert len(findings) == 1
        assert "unclassified" in findings[0].message

    def test_clock_advance_in_skip_path_passes(self):
        assert run_rule("skip-path-purity", NETWORK, """\
            class Network:
                def _fast_forward(self, target):
                    self.cycle = target
            """) == []

    def test_non_skip_method_is_out_of_scope(self):
        assert run_rule("skip-path-purity", CORE, """\
            class SoaCore:
                def cycle_all(self, now, faults):
                    self.out_credits[0] = 0
            """) == []

    def test_seeded_mutation_in_real_tree_is_caught(self):
        """Acceptance check: injecting a frozen-field write into the real
        ``SoaCore.skip_all`` is caught statically, without simulating."""
        sources = {}
        for path in (REPO_ROOT / "src" / "repro" / "noc").glob("*.py"):
            sources[f"src/repro/noc/{path.name}"] = path.read_text()
        core = sources["src/repro/noc/core_soa.py"]
        match = re.search(r"def skip_all\(self[^\n]*\n", core)
        assert match, "real SoaCore.skip_all not found"
        seeded = (core[:match.end()]
                  + "        self.out_credits[0] = 0\n"
                  + core[match.end():])
        sources["src/repro/noc/core_soa.py"] = seeded
        findings = analyze_project(sources, [get_rule("skip-path-purity")])
        assert any("out_credits" in f.message for f in findings), \
            "seeded frozen-field write in skip_all was not caught"

    def test_real_tree_is_clean_without_seeding(self):
        sources = {}
        for path in (REPO_ROOT / "src" / "repro" / "noc").glob("*.py"):
            sources[f"src/repro/noc/{path.name}"] = path.read_text()
        assert analyze_project(sources,
                               [get_rule("skip-path-purity")]) == []


class TestStateContainment:
    def test_foreign_queue_append_flags(self):
        findings = run_project("state-containment", {
            FAULTS: """\
                class FaultInjector:
                    def arm(self, net):
                        net._pending_router_arrivals.append(1)
                """,
        })
        assert len(findings) == 1
        assert "unregistered site" in findings[0].message

    def test_registered_queue_site_passes(self):
        assert run_rule("state-containment", NETWORK, """\
            class Network:
                def _deliver_arrivals(self, now):
                    self._pending_router_arrivals = []
            """) == []

    def test_unregistered_intra_class_queue_site_flags(self):
        findings = run_rule("state-containment", NETWORK, """\
            class Network:
                def submit(self, flit):
                    self._credit_events.append(flit)
            """)
        assert len(findings) == 1

    def test_closure_inherits_factory_site(self):
        # The closure created by _make_credit_fn appends to the alias
        # captured at its def site; the factory is a registered site.
        assert run_rule("state-containment", NETWORK, """\
            class Network:
                def _make_credit_fn(self, rid):
                    events = self._credit_events

                    def credit(port, vc):
                        events.append((rid, port, vc))
                    return credit
            """) == []

    def test_frozen_cross_class_write_flags(self):
        findings = run_project("state-containment", {
            FAULTS: """\
                class FaultInjector:
                    def corrupt(self, router):
                        router.out_credits[0] = 0
                """,
        })
        assert len(findings) == 1
        assert "outside its owning class" in findings[0].message


class TestClockAdvance:
    def test_rewind_flags(self):
        findings = run_rule("state-clock-advance", NETWORK, """\
            class Network:
                def drain(self):
                    self.cycle = 0
            """)
        assert len(findings) == 1
        assert "cycle" in findings[0].message

    def test_decrement_flags(self):
        findings = run_rule("state-clock-advance", NETWORK, """\
            class Network:
                def step(self):
                    self.cycle -= 1
            """)
        assert len(findings) == 1

    def test_advance_passes(self):
        assert run_rule("state-clock-advance", NETWORK, """\
            class Network:
                def step(self):
                    self.cycle += 1
            """) == []

    def test_registered_jump_path_passes(self):
        assert run_rule("state-clock-advance", NETWORK, """\
            class Network:
                def _fast_forward(self, target):
                    self.cycle = target
            """) == []


class TestInlineAllow:
    def test_allow_comment_suppresses_project_finding(self):
        findings = run_rule("state-clock-advance", NETWORK, """\
            class Network:
                def drain(self):
                    self.cycle = 0  # repro: allow[state-clock-advance]
            """)
        assert findings == []
