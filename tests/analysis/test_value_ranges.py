"""Good/bad fixtures for the abstract-interpretation rule family (90x).

REPRO901-903 get inline fixtures in the datapath scopes; REPRO904 is
tested against the *real* ``repro.core.avcl`` module — certifying the
committed implementation and, crucially, catching seeded wrong-mask
mutations of it (the headline acceptance criterion: the certifier must
reject an AVCL whose mask arithmetic no longer meets the declared
error bound).
"""

import textwrap
from fractions import Fraction
from pathlib import Path

import pytest

from repro.analysis import get_rule
from repro.analysis.engine import analyze_project, analyze_source
from repro.analysis.checks.value_ranges import (
    CERTIFIED_SCHEMES,
    MODE_FACTORS,
    _spec_shift,
)
from repro.core.avcl import shift_bits_for_threshold

REPO_ROOT = Path(__file__).resolve().parents[2]
AVCL_PATH = "src/repro/core/avcl.py"
CORE = "src/repro/core/fixture.py"
NOC = "src/repro/noc/fixture.py"


def run_rule(rule_name, path, source):
    return analyze_source(path, textwrap.dedent(source),
                          [get_rule(rule_name)])


class TestShiftRangeProofs:
    """REPRO901: every shift amount proven within [0, 31]."""

    def test_derived_in_range_amount_passes(self):
        # k is not constant, but the abstract interpreter proves
        # k = x & 31 stays in [0, 31] — the old syntactic REPRO201
        # could never accept this.
        assert run_rule("shift-range", CORE, """\
            def scale(word, x):
                k = x & 31
                return (word << k) & 0xFFFFFFFF
            """) == []

    def test_unbounded_amount_flags_in_datapath(self):
        findings = run_rule("shift-range", CORE, """\
            def scale(word, x):
                return (word << x) & 0xFFFFFFFF
            """)
        assert len(findings) == 1
        assert "cannot prove shift amount" in findings[0].message

    def test_branch_refinement_proves_amount(self):
        assert run_rule("shift-range", CORE, """\
            def scale(word, k):
                if k < 32 and k >= 0:
                    return (word >> k) & 0xFFFFFFFF
                return word
            """) == []

    def test_augassign_shift_is_covered(self):
        findings = run_rule("shift-range", CORE, """\
            def scale(word, x):
                word <<= x
                return word & 0xFFFFFFFF
            """)
        assert len(findings) == 1

    def test_constant_base_modulus_allows_32(self):
        # 1 << 32 builds the two's-complement modulus: constant base,
        # deliberate, exempt.
        assert run_rule("shift-range", CORE,
                        "MODULUS = 1 << 32\n") == []


class TestWordRangeProofs:
    """REPRO902: unmasked word arithmetic proven in [0, 2^32)."""

    def test_abstractly_bounded_sum_passes_unmasked(self):
        # Two masked halfwords can never leave the 32-bit range, so no
        # re-mask is required — the abstract proof replaces the old
        # expression-local heuristic.
        assert run_rule("unmasked-word-arith", NOC, """\
            def merge(word_a, word_b):
                return (word_a & 0xFFFF) + (word_b & 0xFFFF)
            """) == []

    def test_possible_overflow_flags_with_derived_range(self):
        findings = run_rule("unmasked-word-arith", NOC, """\
            def bump(word):
                return word + 1
            """)
        assert len(findings) == 1
        assert "WORD_MASK" in findings[0].message

    def test_masked_at_use_passes(self):
        assert run_rule("unmasked-word-arith", NOC, """\
            WORD_MASK = 0xFFFFFFFF

            def mix(word, key):
                mixed = word + key
                return mixed & WORD_MASK
            """) == []


class TestZeroDivisionProofs:
    """REPRO903: divisors that can reach zero on some path."""

    def test_possibly_zero_divisor_flags(self):
        findings = run_rule("possible-zero-div", CORE, """\
            def share(total, n):
                n = n & 0xF
                return total // n
            """)
        assert len(findings) == 1
        assert "divisor may be zero" in findings[0].message

    def test_guarded_divisor_passes(self):
        assert run_rule("possible-zero-div", CORE, """\
            def share(total, n):
                n = n & 0xF
                if n:
                    return total // n
                return 0
            """) == []

    def test_excluded_zero_via_or_passes(self):
        assert run_rule("possible-zero-div", CORE, """\
            def share(total, n):
                return total % ((n & 0xF) | 1)
            """) == []

    def test_unknown_divisor_is_not_flagged(self):
        # Positive-knowledge rule: a top divisor (e.g. a float) carries
        # no derived evidence of a zero, so it is skipped.
        assert run_rule("possible-zero-div", CORE, """\
            def share(total, weight):
                return total / weight
            """) == []

    def test_modulo_is_covered(self):
        assert run_rule("possible-zero-div", CORE, """\
            def wrap(value, span):
                span = span & 0xFF
                return value % span
            """)


class TestAvclCertifier:
    """REPRO904: the committed AVCL meets its declared error bounds."""

    @pytest.fixture(scope="class")
    def avcl_source(self):
        return (REPO_ROOT / AVCL_PATH).read_text(encoding="utf-8")

    def certify(self, source):
        return analyze_project({AVCL_PATH: source},
                               [get_rule("avcl-error-bound")])

    def test_committed_avcl_certifies_clean(self, avcl_source):
        assert self.certify(avcl_source) == []

    def test_wrong_mask_mutation_is_caught(self, avcl_source):
        mutated = avcl_source.replace(
            "(1 << self.dont_care_bits) - 1",
            "(2 << self.dont_care_bits) - 1")
        assert mutated != avcl_source
        findings = self.certify(mutated)
        assert findings, "the doubled mask must violate the bound"
        assert any("error bound violated" in f.message for f in findings)

    def test_strict_mode_off_by_one_is_caught(self, avcl_source):
        mutated = avcl_source.replace("(rng + 1).bit_length() - 1",
                                      "(rng + 1).bit_length()")
        assert mutated != avcl_source
        findings = self.certify(mutated)
        assert any("[strict" in f.message for f in findings)

    def test_missing_entry_points_anchor_a_finding(self):
        findings = self.certify("X = 1\n")
        assert findings, "an avcl.py without ApproxInfo cannot certify"

    def test_spec_shift_matches_runtime_shift_table(self):
        # The certifier's own spec of the dont-care width must agree
        # with the runtime's shift_bits_for_threshold for every
        # registered scheme — otherwise the proof certifies the wrong
        # contract.
        for mode, e in CERTIFIED_SCHEMES:
            runtime = shift_bits_for_threshold(e, mode=mode)
            assert _spec_shift(e, mode) == runtime, (mode, e)
            # And the width actually honours the declared budget:
            # paper mode guarantees 4e%, strict mode e%, per unit of
            # the magnitude's bucket floor (see DESIGN.md section 16).
            budget = Fraction(MODE_FACTORS[mode] * e, 100)
            if mode == "strict":
                assert Fraction(1, 1 << runtime) <= budget

    def test_certified_schemes_cover_paper_thresholds(self):
        es = sorted({e for _, e in CERTIFIED_SCHEMES})
        assert es == [1, 5, 10, 20, 25]
        assert sorted({m for m, _ in CERTIFIED_SCHEMES}) \
            == ["paper", "strict"]
