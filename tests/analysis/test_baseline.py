"""Baseline round-trip, splitting, and version handling."""

import json

import pytest

from repro.analysis import Baseline, Finding, Severity


def make_finding(rule="banned-import", path="src/repro/noc/a.py", line=3):
    return Finding(path=path, line=line, col=0, rule=rule,
                   severity=Severity.ERROR, message="fixture finding")


class TestSplit:
    def test_empty_baseline_passes_everything_through(self):
        finding = make_finding()
        new, suppressed, stale = Baseline().split([finding])
        assert new == [finding]
        assert suppressed == []
        assert stale == []

    def test_grandfathered_finding_is_suppressed(self):
        finding = make_finding()
        new, suppressed, stale = Baseline([finding]).split([finding])
        assert new == []
        assert suppressed == [finding]
        assert stale == []

    def test_paid_down_debt_is_stale(self):
        old = make_finding(line=3)
        new, suppressed, stale = Baseline([old]).split([])
        assert (new, suppressed) == ([], [])
        assert stale == [old]

    def test_identity_is_rule_path_line(self):
        # Message and column changes do not evict a baseline entry.
        committed = make_finding()
        moved = Finding(path=committed.path, line=committed.line, col=9,
                        rule=committed.rule, severity=Severity.WARNING,
                        message="reworded")
        _, suppressed, _ = Baseline([committed]).split([moved])
        assert suppressed == [moved]


class TestRoundTrip:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [make_finding(line=3), make_finding(line=9)]
        Baseline(findings).save(path)
        loaded = Baseline.load(path)
        assert loaded.findings == sorted(findings)
        assert all(f in loaded for f in findings)

    def test_missing_file_is_empty_baseline(self, tmp_path):
        loaded = Baseline.load(tmp_path / "nope.json")
        assert len(loaded) == 0

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_save_is_deterministic(self, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        findings = [make_finding(line=9), make_finding(line=3)]
        Baseline(findings).save(a)
        Baseline(list(reversed(findings))).save(b)
        assert a.read_text() == b.read_text()
