"""Unit and differential-soundness tests for the abstract domains.

The differential test is the load-bearing one: it generates random
straight-line programs over 32-bit-ish integers, runs them concretely
with Python ints and abstractly with :class:`AbstractValue`, and checks
after *every* step that the abstract value contains the concrete one.
Any unsound transfer function shows up as a containment failure with
the offending op sequence in the assertion message.

Hypothesis drives the generator when available (it is in the dev
image); otherwise a fixed-seed ``random.Random`` sweep exercises the
same program space so the test never silently vanishes.
"""

import random

import pytest

from repro.analysis.flow.domains import (
    EXT_ZERO,
    WORD_MASK,
    AbstractValue,
    Interval,
    KnownBits,
    fraction_bound,
)

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis is in the dev image
    HAVE_HYPOTHESIS = False


class TestInterval:
    def test_const_and_contains(self):
        iv = Interval.const(7)
        assert iv.as_const == 7
        assert iv.contains(7)
        assert not iv.contains(8)

    def test_join_meet(self):
        a, b = Interval(0, 10), Interval(5, 20)
        assert a.join(b) == Interval(0, 20)
        assert a.meet(b) == Interval(5, 10)
        assert Interval(0, 1).meet(Interval(5, 6)).is_empty

    def test_subset_of_with_open_bounds(self):
        assert Interval(3, 4).subset_of(Interval(0, None))
        assert not Interval(None, 4).subset_of(Interval(0, None))
        assert Interval(None, None).subset_of(Interval.top())

    def test_widen_jumps_to_threshold_then_infinity(self):
        grown = Interval(0, 10).widen(Interval(0, 11))
        # Threshold widening: snaps up to the next landmark, keeping the
        # stable bound.
        assert grown.lo == 0
        assert grown.hi is not None and grown.hi >= 11
        # Growth past the largest threshold reaches +inf in finitely
        # many steps.
        while grown.hi is not None:
            wider = grown.widen(Interval(0, grown.hi + 1))
            assert wider.hi is None or wider.hi > grown.hi
            grown = wider
        assert grown == Interval(0, None)

    def test_add_mul(self):
        assert Interval(1, 2).add(Interval(10, 20)) == Interval(11, 22)
        assert Interval(-2, 3).mul(Interval(4, 5)) == Interval(-10, 15)

    def test_shift_range(self):
        assert Interval.const(1).lshift(Interval(0, 3)) == Interval(1, 8)
        assert Interval(0, 255).rshift(Interval.const(4)) == Interval(0, 15)

    def test_str_renders_infinities(self):
        assert str(Interval(0, None)) == "[0, +inf]"


class TestKnownBits:
    def test_const_round_trip(self):
        kb = KnownBits.const(0b1010)
        assert kb.as_const == 0b1010
        assert kb.contains(0b1010)
        assert not kb.contains(0b1011)

    def test_and_clears_unknown_bits(self):
        # word & 0xF: bits above 3 are provably zero.
        masked = KnownBits.top().and_(KnownBits.const(0xF))
        assert masked.zeros & ~0xF == ~0xF & masked.zeros
        assert masked.ext == EXT_ZERO
        assert masked.to_interval().subset_of(Interval(0, 0xF))

    def test_join_keeps_agreement(self):
        j = KnownBits.const(0b1100).join(KnownBits.const(0b1010))
        assert j.contains(0b1100)
        assert j.contains(0b1010)

    def test_from_interval_pins_high_zeros(self):
        kb = KnownBits.from_interval(Interval(0, 255))
        assert kb.ext == EXT_ZERO
        assert not kb.contains(256)


class TestAbstractValue:
    def test_word_is_in_word_range(self):
        assert AbstractValue.word().in_word_range()
        assert not AbstractValue.top().in_word_range()

    def test_masking_proves_word_range(self):
        v = AbstractValue.top().and_(AbstractValue.const(WORD_MASK))
        assert v.in_word_range()

    def test_reduced_product_refines(self):
        # Interval [0, 300] meet known-low-nibble=0 excludes 1..15.
        v = AbstractValue(Interval(0, 300),
                          KnownBits(ones=0, zeros=0xF, ext=EXT_ZERO))
        assert not v.reduced().contains(3)
        assert v.reduced().contains(16)

    def test_provably_nonzero(self):
        assert AbstractValue.range(1, 10).provably_nonzero()
        assert not AbstractValue.range(0, 10).provably_nonzero()

    def test_fraction_bound_is_exact(self):
        # 3 <= (1/4) * 13 is false; 3 <= (1/4) * 12 is true.
        assert fraction_bound(3, 1, 4) in (True, False)


# --------------------------------------------------------------------------
# Differential soundness: abstract execution contains concrete execution.
# --------------------------------------------------------------------------

#: (name, concrete op, arity). Shift amounts and divisors get dedicated
#: operand generation (see _fresh_operand).
_OPS = (
    ("add", lambda a, b: a + b),
    ("sub", lambda a, b: a - b),
    ("mul", lambda a, b: a * b),
    ("and_", lambda a, b: a & b),
    ("or_", lambda a, b: a | b),
    ("xor", lambda a, b: a ^ b),
    ("lshift", lambda a, b: a << b),
    ("rshift", lambda a, b: a >> b),
    ("floordiv", lambda a, b: a // b),
    ("mod", lambda a, b: a % b),
    ("invert", lambda a: ~a),
    ("neg", lambda a: -a),
    ("abs_", abs),
    ("bit_length", lambda a: a.bit_length()),
)
_UNARY = {"invert", "neg", "abs_", "bit_length"}


def _fresh_operand(rng, op_name):
    """A (concrete, abstract) operand pair with abstract ⊇ concrete."""
    if op_name in ("lshift", "rshift"):
        c = rng.randrange(0, 40)
        lo, hi = max(0, c - rng.randrange(0, 3)), c + rng.randrange(0, 3)
    elif op_name in ("floordiv", "mod"):
        c = rng.choice([1, -1, rng.randrange(1, 1000),
                        -rng.randrange(1, 1000)])
        lo, hi = c - rng.randrange(0, 4), c + rng.randrange(0, 4)
    else:
        c = rng.choice([0, 1, WORD_MASK,
                        rng.randrange(0, 1 << 32),
                        rng.randrange(-(1 << 16), 1 << 16)])
        lo, hi = c - rng.randrange(0, 16), c + rng.randrange(0, 16)
    shape = rng.randrange(4)
    if shape == 0:
        abstract = AbstractValue.const(c)
    elif shape == 1:
        abstract = AbstractValue.range(lo, hi)
    elif shape == 2 and 0 <= c <= WORD_MASK:
        abstract = AbstractValue.word()
    else:
        abstract = AbstractValue.top()
    assert abstract.contains(c)
    return c, abstract


def _run_program(seed, steps=12):
    """One random straight-line program, checked step by step."""
    rng = random.Random(seed)
    concrete = []
    abstract = []
    trace = []
    for _ in range(3):
        c, a = _fresh_operand(rng, "add")
        concrete.append(c)
        abstract.append(a)
        trace.append(f"input {c} in {a}")
    for _ in range(steps):
        name, fn = _OPS[rng.randrange(len(_OPS))]
        i = rng.randrange(len(concrete))
        if name in _UNARY:
            c = fn(concrete[i])
            a = getattr(abstract[i], name)()
            trace.append(f"{name}(t{i}) = {c}")
        else:
            cb, ab = _fresh_operand(rng, name)
            c = fn(concrete[i], cb)
            a = getattr(abstract[i], name)(ab)
            trace.append(f"{name}(t{i}, {cb}) = {c}")
        assert a.contains(c), (
            f"unsound transfer: abstract {a} misses concrete {c}\n"
            + "\n".join(trace))
        reduced = a.reduced()
        assert reduced.contains(c), (
            f"unsound reduction: {a} -> {reduced} misses {c}\n"
            + "\n".join(trace))
        # Keep magnitudes bounded so << chains stay cheap.
        if abs(c) < (1 << 48):
            concrete.append(c)
            abstract.append(reduced)


class TestDifferentialSoundness:
    if HAVE_HYPOTHESIS:
        @settings(max_examples=300, deadline=None)
        @given(st.integers(min_value=0, max_value=2**32))
        def test_abstract_contains_concrete(self, seed):
            _run_program(seed)
    else:  # pragma: no cover - exercised only without hypothesis
        @pytest.mark.parametrize("seed", range(300))
        def test_abstract_contains_concrete(self, seed):
            _run_program(seed)

    def test_join_is_an_upper_bound(self):
        rng = random.Random(1234)
        for _ in range(200):
            c1, a1 = _fresh_operand(rng, "add")
            c2, a2 = _fresh_operand(rng, "add")
            joined = a1.join(a2)
            assert joined.contains(c1) and joined.contains(c2)
            assert a1.subsumed_by(joined) and a2.subsumed_by(joined)

    def test_widen_is_an_upper_bound_and_terminates(self):
        rng = random.Random(99)
        for _ in range(100):
            _, a = _fresh_operand(rng, "add")
            _, b = _fresh_operand(rng, "add")
            w = a.widen(a.join(b))
            assert a.subsumed_by(w) and b.subsumed_by(w)
            # A second widening against further growth must fixpoint.
            _, c = _fresh_operand(rng, "add")
            w2 = w.widen(w.join(c))
            w3 = w2.widen(w2.join(c))
            assert w3.subsumed_by(w2) and w2.subsumed_by(w3)
