"""Fixture tests for the REPRO82x cross-implementation parity rules."""

import textwrap

from repro.analysis import get_rule
from repro.analysis.engine import analyze_project

NETWORK = "src/repro/noc/network.py"
ROUTER = "src/repro/noc/router.py"
CORE = "src/repro/noc/core_soa.py"


def run_project(rule_name, sources):
    dedented = {path: textwrap.dedent(src)
                for path, src in sources.items()}
    return analyze_project(dedented, [get_rule(rule_name)])


ROUTER_PAIR = """\
    class Router:
        def __init__(self):
            self.router_id = 0

        def audit(self):
            return 0

        def flush_pipeline(self):
            return 1

        def occupancy(self, port, vc):
            return 0


    class SoaRouter:
        def __init__(self):
            self.router_id = 0

        def audit(self):
            return 0

        def occupancy(self, port, vc):
            return 0
    """


class TestRouterSurfaceParity:
    def test_one_sided_member_flags(self):
        findings = run_project("router-surface-parity", {
            ROUTER: ROUTER_PAIR,
            NETWORK: """\
                class Network:
                    def sweep(self):
                        for router in self.routers:
                            router.flush_pipeline()
                """,
        })
        assert len(findings) == 1
        assert "flush_pipeline" in findings[0].message
        assert "SoaRouter" in findings[0].message

    def test_shared_member_passes(self):
        assert run_project("router-surface-parity", {
            ROUTER: ROUTER_PAIR,
            NETWORK: """\
                class Network:
                    def sweep(self):
                        for router in self.routers:
                            router.audit()
                            total = router.router_id
                """,
        }) == []

    def test_arity_mismatch_flags(self):
        findings = run_project("router-surface-parity", {
            ROUTER: ROUTER_PAIR,
            NETWORK: """\
                class Network:
                    def sweep(self):
                        for router in self.routers:
                            router.occupancy(0)
                """,
        })
        assert len(findings) == 1
        assert "missing required argument" in findings[0].message

    def test_method_vs_property_mismatch_flags(self):
        findings = run_project("router-surface-parity", {
            ROUTER: """\
                class Router:
                    def buffer_occupancy(self):
                        return 0


                class SoaRouter:
                    @property
                    def buffer_occupancy(self):
                        return 0
                """,
            NETWORK: """\
                class Network:
                    def probe(self, router):
                        return router.buffer_occupancy()
                """,
        })
        assert len(findings) == 1
        assert "property" in findings[0].message

    def test_missing_implementation_disables_rule(self):
        # With only one router class in scope there is no parity claim.
        assert run_project("router-surface-parity", {
            ROUTER: """\
                class Router:
                    def only_here(self):
                        return 0
                """,
            NETWORK: """\
                class Network:
                    def sweep(self, router):
                        router.only_here()
                        router.not_anywhere()
                """,
        }) == []

    def test_inline_allow_suppresses(self):
        assert run_project("router-surface-parity", {
            ROUTER: ROUTER_PAIR,
            NETWORK: """\
                class Network:
                    def sweep(self):
                        for router in self.routers:
                            # repro: allow[router-surface-parity]
                            router.flush_pipeline()
                """,
        }) == []


class TestCoreBackendParity:
    CORE_PAIR = """\
        class SoaCore:
            def __init__(self):
                self.buffered = 0

            def next_ready_all(self, now):
                return None

            def skip_all(self, count):
                return None


        class NumpyCore(SoaCore):
            def next_ready_all(self, now):
                return None
        """

    def test_inherited_member_passes(self):
        assert run_project("core-backend-parity", {
            CORE: self.CORE_PAIR,
            NETWORK: """\
                class Network:
                    def _fast_forward(self, skipped):
                        self._core.skip_all(skipped)
                """,
        }) == []

    def test_unknown_member_flags(self):
        findings = run_project("core-backend-parity", {
            CORE: self.CORE_PAIR,
            NETWORK: """\
                class Network:
                    def step(self):
                        self._core.vectorize_everything()
                """,
        })
        assert len(findings) == 1
        assert "neither" in findings[0].message

    def test_override_signature_mismatch_flags(self):
        findings = run_project("core-backend-parity", {
            CORE: """\
                class SoaCore:
                    def next_ready_all(self, now):
                        return None


                class NumpyCore(SoaCore):
                    def next_ready_all(self, now, horizon):
                        return None
                """,
            NETWORK: """\
                class Network:
                    def probe(self):
                        return self._core.next_ready_all(self.cycle)
                """,
        })
        messages = [f.message for f in findings]
        assert any("different signature" in m for m in messages)

    def test_matching_override_passes(self):
        assert run_project("core-backend-parity", {
            CORE: self.CORE_PAIR,
            NETWORK: """\
                class Network:
                    def probe(self):
                        return self._core.next_ready_all(self.cycle)
                """,
        }) == []
