"""CLI behaviour: exit codes, output formats, baseline workflow."""

import json
import textwrap

from repro.analysis.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main

CLEAN_SOURCE = "X = 1\n"
#: Trips banned-import when placed under a repro package path.
DIRTY_SOURCE = "import random\n"


def make_tree(tmp_path, source):
    """A one-module src tree whose module path is inside repro.noc."""
    pkg = tmp_path / "src" / "repro" / "noc"
    pkg.mkdir(parents=True)
    module = pkg / "fixture.py"
    module.write_text(source)
    return tmp_path / "src"


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--no-baseline"]) == EXIT_CLEAN
        assert "0 finding(s)" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        assert main([str(src), "--no-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "banned-import" in out

    def test_parse_error_exits_one(self, tmp_path, capsys):
        src = make_tree(tmp_path, "def broken(:\n")
        assert main([str(src), "--no-baseline"]) == EXIT_FINDINGS
        assert "parse error" in capsys.readouterr().out

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--rule", "no-such-rule"]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err

    def test_no_files_exits_two(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main([str(empty)]) == EXIT_USAGE
        assert "no Python files" in capsys.readouterr().err

    def test_unreadable_baseline_exits_two(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        bad = tmp_path / "baseline.json"
        bad.write_text("{not json")
        assert main([str(src), "--baseline", str(bad)]) == EXIT_USAGE
        assert "unreadable baseline" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_then_gate(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        # Grandfather the current findings...
        assert main([str(src), "--baseline", str(baseline),
                     "--write-baseline"]) == EXIT_CLEAN
        # ...after which the same tree gates clean...
        assert main([str(src), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "1 baselined" in capsys.readouterr().out
        # ...but --no-baseline still reports the debt.
        assert main([str(src), "--no-baseline"]) == EXIT_FINDINGS

    def test_stale_entries_are_reported(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        main([str(src), "--baseline", str(baseline), "--write-baseline"])
        (src / "repro" / "noc" / "fixture.py").write_text(CLEAN_SOURCE)
        assert main([str(src), "--baseline", str(baseline)]) == EXIT_CLEAN
        assert "stale baseline" in capsys.readouterr().out


class TestOutput:
    def test_json_format(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert payload["files_scanned"] == 1
        assert payload["findings"][0]["rule"] == "banned-import"
        assert payload["parse_errors"] == []

    def test_human_format_has_location(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        main([str(src), "--no-baseline"])
        line = capsys.readouterr().out.splitlines()[0]
        assert "fixture.py:1:" in line
        assert "error[banned-import]" in line

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("REPRO101", "REPRO203", "REPRO301",
                     "REPRO401", "REPRO501"):
            assert code in out

    def test_list_rules_includes_value_analysis(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("REPRO901", "REPRO902", "REPRO903",
                     "REPRO904", "REPRO911"):
            assert code in out
        # The heuristic-era codes are retired, not renumbered.
        assert "REPRO201" not in out
        assert "REPRO202" not in out

    def test_rule_filter_restricts_scan(self, tmp_path):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        # banned-import fires; the float-eq-only run stays clean.
        assert main([str(src), "--no-baseline",
                     "--rule", "float-eq"]) == EXIT_CLEAN

    def test_list_rules_includes_flow_passes(self, capsys):
        assert main(["--list-rules"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for code in ("REPRO801", "REPRO803", "REPRO811", "REPRO821"):
            assert code in out

    def test_json_includes_rule_explanations(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--format", "json"]) == EXIT_FINDINGS
        payload = json.loads(capsys.readouterr().out)
        assert "banned-import" in payload["rules"]
        entry = payload["rules"]["banned-import"]
        assert entry["code"]
        assert entry["invariant"]
        assert entry["explain"]

    def test_json_rules_empty_when_clean(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--format", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["rules"] == {}


class TestExplain:
    def test_explain_by_name(self, capsys):
        assert main(["--explain", "skip-path-purity"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "REPRO803" in out
        assert "Invariant:" in out
        assert "Bad:" in out
        assert "Good:" in out

    def test_explain_by_code(self, capsys):
        assert main(["--explain", "REPRO902"]) == EXIT_CLEAN
        assert "unmasked-word-arith" in capsys.readouterr().out

    def test_explain_unknown_rule_exits_two(self, capsys):
        assert main(["--explain", "no-such-rule"]) == EXIT_USAGE
        assert "unknown rule" in capsys.readouterr().err


class TestValueAnalysisFlags:
    #: The abstract interpreter proves the sum is masked at its only
    #: use; the retired expression-local heuristic could not see past
    #: the assignment (there is no --bits-heuristic fallback any more).
    FLOW_OK = textwrap.dedent("""\
        WORD_MASK = 0xFFFFFFFF


        def mix(word, key):
            mixed = word + key
            return mixed & WORD_MASK
        """)

    def test_flow_proof_is_the_only_mode(self, tmp_path):
        src = make_tree(tmp_path, self.FLOW_OK)
        assert main([str(src), "--no-baseline",
                     "--rule", "unmasked-word-arith"]) == EXIT_CLEAN

    def test_bits_heuristic_flag_is_gone(self, tmp_path, capsys):
        src = make_tree(tmp_path, self.FLOW_OK)
        try:
            main([str(src), "--no-baseline", "--bits-heuristic"])
        except SystemExit as exc:
            assert exc.code == EXIT_USAGE
        else:
            raise AssertionError("--bits-heuristic should be rejected")


class TestJobsAndBudget:
    def test_jobs_matches_serial(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--format", "json"]) == EXIT_FINDINGS
        serial = json.loads(capsys.readouterr().out)
        assert main([str(src), "--no-baseline", "--jobs", "2",
                     "--format", "json"]) == EXIT_FINDINGS
        parallel = json.loads(capsys.readouterr().out)
        assert parallel["findings"] == serial["findings"]
        assert parallel["jobs"] == 2

    def test_json_reports_wall_time(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--format", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["analysis_seconds"] >= 0.0
        assert payload["jobs"] == 1

    def test_max_seconds_budget_gates(self, tmp_path, capsys):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--max-seconds", "0"]) == EXIT_FINDINGS
        assert "over the --max-seconds budget" in capsys.readouterr().err

    def test_generous_budget_passes(self, tmp_path):
        src = make_tree(tmp_path, CLEAN_SOURCE)
        assert main([str(src), "--no-baseline",
                     "--max-seconds", "600"]) == EXIT_CLEAN


class TestUpdateBaseline:
    def test_update_writes_and_flags_stale(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        # Seed a baseline with the dirty finding...
        assert main([str(src), "--baseline", str(baseline),
                     "--write-baseline"]) == EXIT_CLEAN
        # ...fix the tree: --update-baseline shrinks the file and exits
        # non-zero so CI notices the drop.
        (src / "repro" / "noc" / "fixture.py").write_text(CLEAN_SOURCE)
        assert main([str(src), "--baseline", str(baseline),
                     "--update-baseline"]) == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "dropped 1 stale baseline entry" in out
        payload = json.loads(baseline.read_text())
        assert payload["findings"] == []

    def test_update_is_quietly_clean_when_fresh(self, tmp_path, capsys):
        src = make_tree(tmp_path, DIRTY_SOURCE)
        baseline = tmp_path / "baseline.json"
        main([str(src), "--baseline", str(baseline), "--write-baseline"])
        capsys.readouterr()
        assert main([str(src), "--baseline", str(baseline),
                     "--update-baseline"]) == EXIT_CLEAN
        assert "dropped" not in capsys.readouterr().out
