"""Behavioural tests for the branch-refining abstract interpreter.

Each test parses a small function, runs :class:`FuncAnalysis` over it,
and checks the abstract return value — the end-to-end contract the
REPRO90x rules build on (branch refinement, loop widening/narrowing,
parameter seeding and certification ``assume`` facts).
"""

import ast
import textwrap

from repro.analysis.flow.absint import (
    FuncAnalysis,
    Summaries,
    module_seq_constants,
    wordish_name,
)
from repro.analysis.flow.domains import WORD_MASK, AbstractValue, Interval


def analyze(source, **kwargs):
    """FuncAnalysis over the first function in ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    fn = next(node for node in tree.body
              if isinstance(node, ast.FunctionDef))
    return FuncAnalysis(fn, **kwargs).run()


def returns(source, **kwargs):
    return analyze(source, **kwargs).return_value()


class TestBranchRefinement:
    def test_upper_bound_comparison_narrows(self):
        value = returns("""\
            def clamp(k):
                if k < 32:
                    return k
                return 0
            """, seeds={"k": AbstractValue.range(0, None)})
        assert value.iv.subset_of(Interval(0, 31))

    def test_else_branch_gets_complement(self):
        value = returns("""\
            def pick(k):
                if k < 32:
                    return 0
                return k
            """, seeds={"k": AbstractValue.range(0, 100)})
        assert value.iv.subset_of(Interval(0, 100))
        assert not value.contains(-1)

    def test_mask_test_refines_band(self):
        # Inside `if x & 0xFF:` the value is provably nonzero in the
        # low byte; the mask expression itself stays in [0, 255].
        value = returns("""\
            def low(x):
                y = x & 0xFF
                if y:
                    return y
                return 1
            """, seeds={"x": AbstractValue.word()})
        assert value.iv.subset_of(Interval(0, 255))
        assert not value.contains(0)

    def test_isinstance_bool_narrows_to_unit_range(self):
        # Inside `if isinstance(v, bool):` the value is provably 0 or 1.
        value = returns("""\
            def go(v):
                if isinstance(v, bool):
                    return v
                return 0
            """, seeds={"v": AbstractValue.range(0, 100)})
        assert value.iv.subset_of(Interval(0, 1))

    def test_mode_string_comparison_prunes(self):
        value = returns("""\
            def pick(mode):
                if mode == "paper":
                    return 4
                return 1
            """, seeds={"mode": AbstractValue.str_const("paper")})
        assert value.as_const == 4


class TestLoops:
    def test_counting_loop_widens_then_bounds(self):
        value = returns("""\
            def count(n):
                total = 0
                for i in range(n):
                    total = total + 1
                return total
            """, seeds={"n": AbstractValue.range(0, 10)})
        assert not value.contains(-1)

    def test_spec_shift_style_loop_converges(self):
        # The shift_bits_for_threshold shape: widening must terminate
        # and the guard keeps the result in shift range.
        value = returns("""\
            def shift_for(e):
                s = 0
                while (1 << (s + 1)) * e <= 100:
                    s = s + 1
                if not 0 <= s < 32:
                    raise ValueError
                return s
            """, seeds={"e": AbstractValue.range(1, 100)})
        assert value.iv.subset_of(Interval(0, 31))

    def test_accumulating_mask_stays_in_word(self):
        value = returns("""\
            def fold(words):
                acc = 0
                for w in words:
                    acc = (acc ^ w) & 0xFFFFFFFF
                return acc
            """)
        assert value.in_word_range()


class TestSeedsAndAssume:
    def test_wordish_default_without_seeds(self):
        # `word` is wordish: the default environment assumes [0, 2^32).
        value = returns("""\
            def keep(word):
                return word
            """)
        assert value.in_word_range()

    def test_seed_overrides_default(self):
        value = returns("""\
            def keep(word):
                return word
            """, seeds={"word": AbstractValue.const(5)})
        assert value.as_const == 5

    def test_assume_meets_at_every_binding(self):
        # The certification hook: an assume fact constrains the named
        # variable even when it is rebound from an opaque call.
        value = returns("""\
            def run(magnitude):
                magnitude = mystery(magnitude)
                return magnitude
            """, assume={"magnitude": AbstractValue.range(8, 15)})
        assert value.iv.subset_of(Interval(8, 15))

    def test_return_value_joins_all_paths(self):
        value = returns("""\
            def pick(flag):
                if flag:
                    return 3
                return 7
            """)
        assert value.contains(3)
        assert value.contains(7)
        assert not value.contains(5)


class TestSummariesAndConstants:
    def test_callee_summary_feeds_call_sites(self):
        summaries = Summaries()
        summaries.returns["helper"] = AbstractValue.range(0, 9)
        value = returns("""\
            def use():
                return helper()
            """, summaries=summaries)
        assert value.iv.subset_of(Interval(0, 9))

    def test_unknown_call_is_top(self):
        assert returns("""\
            def use():
                return mystery()
            """).is_top

    def test_module_seq_constants_bound_loop_variables(self):
        tree = ast.parse("SHIFTS = (1, 2, 3)\n")
        seqs = module_seq_constants(tree)
        assert seqs["SHIFTS"] == (1, 2, 3)
        value = returns("""\
            def pick():
                last = 0
                for s in SHIFTS:
                    last = s
                return last
            """, seq_constants=seqs)
        assert value.iv.subset_of(Interval(0, 3))
        assert not value.contains(4)

    def test_wordish_name_convention(self):
        assert wordish_name("word")
        assert wordish_name("pattern")
        assert not wordish_name("count")


class TestNonConvergenceDegradesToTop:
    def test_unreachable_code_yields_no_state(self):
        analysis = analyze("""\
            def dead():
                return 1
                x = 2
            """)
        reachable = [elem for elem, _ in analysis.iter_states()]
        assert not any(isinstance(e, ast.Assign) for e in reachable)

    def test_word_mask_fold(self):
        value = returns("""\
            def mask(x):
                return x & 0xFFFFFFFF
            """)
        assert value.iv.subset_of(Interval(0, WORD_MASK))
