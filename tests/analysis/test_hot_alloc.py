"""Fixtures for the hot-path allocation lint (REPRO911)."""

import textwrap

from repro.analysis import get_rule
from repro.analysis.engine import analyze_project

CORE_SOA = "src/repro/noc/core_soa.py"


def run(source):
    return analyze_project(
        {CORE_SOA: textwrap.dedent(source)}, [get_rule("hot-alloc")])


class TestHotPathAllocation:
    def test_dict_literal_in_cycle_flags(self):
        findings = run("""\
            class SoaCore:
                def cycle_all(self, now):
                    requests = {}
                    return requests
            """)
        assert len(findings) == 1
        assert "dict literal" in findings[0].message
        assert "cycle_all" in findings[0].message

    def test_lambda_and_comprehension_flag(self):
        findings = run("""\
            class SoaCore:
                def cycle_all(self, ports):
                    order = sorted(ports, key=lambda p: p)
                    return [p for p in order]
            """)
        kinds = {f.message.split(" in ")[0] for f in findings}
        assert "lambda construction" in kinds
        assert "list comprehension" in kinds

    def test_transitive_self_call_is_descended(self):
        findings = run("""\
            class SoaCore:
                def cycle_all(self, now):
                    self._stage(now)

                def _stage(self, now):
                    return [now]
            """)
        assert len(findings) == 1
        assert "SoaCore._stage" in findings[0].message

    def test_cold_methods_are_skipped(self):
        assert run("""\
            class SoaCore:
                def __init__(self):
                    self.scratch = [[] for _ in range(4)]

                def audit(self):
                    return {"state": list(self.scratch)}

                def cycle_all(self, now):
                    return now
            """) == []

    def test_preallocated_scratch_pattern_passes(self):
        assert run("""\
            class SoaCore:
                def cycle_all(self, now):
                    lst = self.scratch[0]
                    lst.append(now)
                    del lst[:]
                    return now
            """) == []

    def test_constant_tuple_and_parallel_unpack_pass(self):
        # Constant tuples are folded by CPython; parallel unpacks
        # compile to stack rotations — neither allocates per cycle.
        assert run("""\
            class SoaCore:
                def cycle_all(self, a, b):
                    shape = (1, 2, 3)
                    a, b = b, a
                    return shape, a, b  # repro: allow[hot-alloc]
            """) == []

    def test_allow_comment_suppresses(self):
        assert run("""\
            class SoaCore:
                def cycle_all(self, t, flit):
                    # The payload tuple IS the communicated data.
                    # repro: allow[hot-alloc]
                    self.arrivals.append((t, flit))
            """) == []

    def test_annotations_are_not_executed(self):
        assert run("""\
            from typing import Callable, List

            class SoaCore:
                def cycle_all(self, rank: Callable[[int], int]
                              ) -> "List[int]":
                    out: List[int] = self.scratch
                    return out
            """) == []

    def test_non_hot_classes_are_out_of_scope(self):
        assert run("""\
            class Telemetry:
                def cycle_all(self, now):
                    return {"now": now}
            """) == []
