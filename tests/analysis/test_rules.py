"""Per-rule good/bad fixture tests for the invariant linter.

Every rule gets at least one *failing* fixture (the rule fires) and one
*passing* fixture (the idiomatic fix is accepted), plus scope checks that
the rule stays inside its intended packages.  Fixtures are inline source
strings so scanning ``tests/`` with the linter itself stays clean.
"""

import textwrap

import pytest

from repro.analysis import Severity, all_rules, get_rule
from repro.analysis.engine import analyze_source

#: Synthetic paths that land fixtures in each scope of interest.
NOC = "src/repro/noc/fixture.py"
CORE = "src/repro/core/fixture.py"
UTIL_RNG = "src/repro/util/rng.py"
UTIL_BITOPS = "src/repro/util/bitops.py"
HARNESS = "src/repro/harness/fixture.py"
APPS = "src/repro/apps/fixture.py"


def run_rule(rule_name, path, source):
    """Findings of one rule over one in-memory fixture module."""
    return analyze_source(path, textwrap.dedent(source),
                          [get_rule(rule_name)])


class TestBannedEntropyImport:
    def test_import_random_flags(self):
        findings = run_rule("banned-import", NOC, "import random\n")
        assert len(findings) == 1
        assert findings[0].rule == "banned-import"
        assert findings[0].severity is Severity.ERROR

    def test_from_import_flags(self):
        assert run_rule("banned-import", APPS,
                        "from random import Random\n")

    def test_uuid_flags(self):
        assert run_rule("banned-import", CORE, "import uuid\n")

    def test_rng_module_is_exempt(self):
        assert run_rule("banned-import", UTIL_RNG, "import random\n") == []

    def test_clean_import_passes(self):
        assert run_rule("banned-import", NOC,
                        "from repro.util.rng import DeterministicRng\n") == []


class TestWallClock:
    BAD = """\
        import time

        def stamp():
            return time.time()
        """

    def test_time_time_flags(self):
        findings = run_rule("wall-clock", NOC, self.BAD)
        assert len(findings) == 1
        assert "time.time()" in findings[0].message

    def test_datetime_now_flags(self):
        assert run_rule("wall-clock", CORE, """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """)

    def test_os_urandom_flags(self):
        assert run_rule("wall-clock", NOC, """\
            import os

            def entropy():
                return os.urandom(4)
            """)

    def test_harness_is_out_of_scope(self):
        # Progress timers in the harness are presentation, not simulation.
        assert run_rule("wall-clock", HARNESS, self.BAD) == []

    def test_cycle_counter_passes(self):
        assert run_rule("wall-clock", NOC, """\
            def stamp(network):
                return network.stats.cycles
            """) == []


class TestUnorderedIteration:
    def test_set_literal_iteration_flags(self):
        findings = run_rule("unordered-iter", NOC, """\
            def visit(nodes):
                for node in {1, 2, 3}:
                    nodes.append(node)
            """)
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR

    def test_set_valued_local_flags(self):
        assert run_rule("unordered-iter", NOC, """\
            def visit(items):
                pending = set(items)
                return [x for x in pending]
            """)

    def test_keys_iteration_warns(self):
        findings = run_rule("unordered-iter", NOC, """\
            def visit(table):
                for key in table.keys():
                    yield key
            """)
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_sorted_wrapper_passes(self):
        assert run_rule("unordered-iter", NOC, """\
            def visit(items):
                pending = set(items)
                return [x for x in sorted(pending)]
            """) == []

    def test_harness_is_out_of_scope(self):
        assert run_rule("unordered-iter", HARNESS, """\
            def visit():
                return [x for x in {1, 2}]
            """) == []


class TestShiftRange:
    def test_shift_32_on_variable_flags(self):
        findings = run_rule("shift-range", NOC, """\
            def overflow(word):
                return word << 32
            """)
        assert len(findings) == 1
        assert "32" in findings[0].message

    def test_negative_shift_flags(self):
        assert run_rule("shift-range", CORE, """\
            def bad(word):
                return word >> -1
            """)

    def test_constant_modulus_passes(self):
        # ``1 << 32`` builds the two's-complement modulus: deliberate.
        assert run_rule("shift-range", CORE, """\
            MODULUS = 1 << 32
            """) == []

    def test_known_constant_amount_flags(self):
        # WORD_BITS folds to 32 via the known-constants table.
        assert run_rule("shift-range", CORE, """\
            def bad(word):
                return word << WORD_BITS
            """)

    def test_in_range_shift_passes(self):
        assert run_rule("shift-range", NOC, """\
            def ok(word):
                return (word << 16) & 0xFFFFFFFF
            """) == []


class TestUnmaskedWordArithmetic:
    def test_unmasked_add_flags(self):
        findings = run_rule("unmasked-word-arith", NOC, """\
            def bump(word):
                return word + 1
            """)
        assert len(findings) == 1
        assert "WORD_MASK" in findings[0].message

    def test_masked_add_passes(self):
        assert run_rule("unmasked-word-arith", NOC, """\
            def bump(word):
                return (word + 1) & WORD_MASK
            """) == []

    def test_to_unsigned_normalizer_passes(self):
        assert run_rule("unmasked-word-arith", CORE, """\
            def bump(word):
                return to_unsigned(word + 1)
            """) == []

    def test_non_wordish_names_pass(self):
        assert run_rule("unmasked-word-arith", NOC, """\
            def bump(count):
                return count + 1
            """) == []

    def test_traffic_is_out_of_scope(self):
        assert run_rule("unmasked-word-arith",
                        "src/repro/traffic/fixture.py", """\
            def bump(word):
                return word + 1
            """) == []


class TestFloatEquality:
    def test_float_literal_eq_flags(self):
        findings = run_rule("float-eq", NOC, """\
            def check(x):
                return x == 1.0
            """)
        assert len(findings) == 1

    def test_float_call_ne_flags(self):
        assert run_rule("float-eq", APPS, """\
            def check(x):
                return x != float("inf")
            """)

    def test_bitops_is_exempt(self):
        assert run_rule("float-eq", UTIL_BITOPS, """\
            def check(x):
                return x == 1.0
            """) == []

    def test_int_eq_passes(self):
        assert run_rule("float-eq", NOC, """\
            def check(x):
                return x == 1
            """) == []

    def test_isclose_passes(self):
        assert run_rule("float-eq", NOC, """\
            import math

            def check(x):
                return math.isclose(x, 1.0)
            """) == []


class TestNonPicklablePayload:
    def test_lambda_into_parallel_map_flags(self):
        findings = run_rule("parallel-payload", HARNESS, """\
            def sweep(specs):
                return parallel_map(lambda s: s, specs)
            """)
        assert len(findings) == 1
        assert "lambda" in findings[0].message

    def test_nested_function_flags(self):
        assert run_rule("parallel-payload", HARNESS, """\
            def sweep(specs):
                def worker(spec):
                    return spec
                return parallel_map(worker, specs)
            """)

    def test_generator_into_executor_map_flags(self):
        assert run_rule("parallel-payload", HARNESS, """\
            def sweep(executor, specs):
                return executor.map(run_one, (s for s in specs))
            """)

    def test_module_level_function_passes(self):
        assert run_rule("parallel-payload", HARNESS, """\
            def run_one(spec):
                return spec

            def sweep(specs):
                return parallel_map(run_one, specs)
            """) == []

    def test_tests_are_in_scope(self):
        assert run_rule("parallel-payload", "tests/harness/fixture.py", """\
            def test_sweep(specs):
                return parallel_map(lambda s: s, specs)
            """)

    def test_open_handle_into_runspec_flags(self):
        findings = run_rule("parallel-payload", HARNESS, """\
            def shard(path):
                return RunSpec(trace=TraceFile(path))
            """)
        assert len(findings) == 1
        assert "open handle" in findings[0].message
        assert "path" in findings[0].message

    def test_open_call_into_executor_submit_flags(self):
        assert run_rule("parallel-payload", HARNESS, """\
            def sweep(executor, path):
                return executor.submit(run_one, open(path))
            """)

    def test_mmap_attribute_call_flags(self):
        assert run_rule("parallel-payload", HARNESS, """\
            import mmap

            def sweep(path, fh):
                return parallel_map(run_one,
                                    mmap.mmap(fh.fileno(), 0))
            """)

    def test_path_and_offsets_pass(self):
        assert run_rule("parallel-payload", HARNESS, """\
            def shard(path):
                return RunSpec(trace_path=str(path), trace_start=0,
                               trace_stop=1000)
            """) == []


class TestMutableModuleState:
    def test_empty_dict_flags_as_warning(self):
        findings = run_rule("mutable-global", NOC, "cache = {}\n")
        assert len(findings) == 1
        assert findings[0].severity is Severity.WARNING

    def test_constructor_call_flags(self):
        assert run_rule("mutable-global", CORE,
                        "registry = dict()\n")

    def test_populated_allcaps_registry_passes(self):
        assert run_rule("mutable-global", NOC,
                        'PATTERNS = {"zero": 0}\n') == []

    def test_empty_allcaps_still_flags(self):
        # Empty ALL_CAPS containers accumulate state after import: flagged.
        assert run_rule("mutable-global", NOC, "PATTERNS = {}\n")

    def test_dunder_passes(self):
        assert run_rule("mutable-global", NOC,
                        '__all__ = ["a", "b"]\n') == []

    def test_apps_is_out_of_scope(self):
        assert run_rule("mutable-global", APPS, "cache = {}\n") == []


class TestMutableDefaultArg:
    def test_list_default_flags(self):
        findings = run_rule("mutable-default", NOC, """\
            def collect(items=[]):
                return items
            """)
        assert len(findings) == 1

    def test_constructor_default_flags(self):
        assert run_rule("mutable-default", HARNESS, """\
            def collect(items=list()):
                return items
            """)

    def test_kwonly_dict_default_flags(self):
        assert run_rule("mutable-default", CORE, """\
            def collect(*, table={}):
                return table
            """)

    def test_none_default_passes(self):
        assert run_rule("mutable-default", NOC, """\
            def collect(items=None):
                return items if items is not None else []
            """) == []


class TestBlanketExcept:
    def test_bare_except_flags(self):
        findings = run_rule("bare-except", NOC, """\
            def load(path):
                try:
                    return open(path)
                except:
                    return None
            """)
        assert len(findings) == 1

    def test_blanket_exception_flags(self):
        assert run_rule("bare-except", HARNESS, """\
            def load(path):
                try:
                    return open(path)
                except Exception:
                    return None
            """)

    def test_reraise_passes(self):
        assert run_rule("bare-except", HARNESS, """\
            def load(path):
                try:
                    return open(path)
                except Exception:
                    cleanup()
                    raise
            """) == []

    def test_specific_exception_passes(self):
        assert run_rule("bare-except", NOC, """\
            def load(path):
                try:
                    return open(path)
                except FileNotFoundError:
                    return None
            """) == []


class TestMissingSlots:
    def test_plain_dataclass_under_noc_flags(self):
        findings = run_rule("missing-slots", NOC, """\
            from dataclasses import dataclass

            @dataclass
            class Credit:
                count: int = 0
            """)
        assert len(findings) == 1
        assert "slots=True" in findings[0].message

    def test_dataclass_with_slots_passes(self):
        assert run_rule("missing-slots", NOC, """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class Credit:
                count: int = 0
            """) == []

    def test_hot_class_without_slots_flags(self):
        assert run_rule("missing-slots", NOC, """\
            class Flit:
                def __init__(self):
                    self.kind = 0
            """)

    def test_hot_class_with_slots_passes(self):
        assert run_rule("missing-slots", NOC, """\
            class Flit:
                __slots__ = ("kind",)

                def __init__(self):
                    self.kind = 0
            """) == []

    def test_core_is_out_of_scope(self):
        assert run_rule("missing-slots", CORE, """\
            from dataclasses import dataclass

            @dataclass
            class Summary:
                count: int = 0
            """) == []


class TestUntypedDef:
    def test_unannotated_function_flags(self):
        findings = run_rule("untyped-def", CORE, """\
            def scale(value):
                return value * 2
            """)
        assert len(findings) == 1
        assert "'value'" in findings[0].message
        assert "return type" in findings[0].message

    def test_missing_return_only_flags(self):
        findings = run_rule("untyped-def", CORE, """\
            def scale(value: int):
                return value * 2
            """)
        assert len(findings) == 1
        assert "return type" in findings[0].message

    def test_fully_annotated_passes(self):
        assert run_rule("untyped-def", CORE, """\
            def scale(value: int) -> int:
                return value * 2
            """) == []

    def test_self_and_init_are_exempt(self):
        assert run_rule("untyped-def", CORE, """\
            class Engine:
                def __init__(self, size: int):
                    self.size = size

                def reset(self) -> None:
                    self.size = 0
            """) == []

    def test_noc_is_out_of_scope(self):
        # repro.noc is hot-path code outside the strict typing gate.
        assert run_rule("untyped-def", NOC, """\
            def scale(value):
                return value * 2
            """) == []


class TestNocStateMutation:
    def test_direct_credit_write_flags(self):
        findings = run_rule("noc-state-mutation", HARNESS, """\
            def hack(router):
                router.out_credits[4][0] += 1
            """)
        assert len(findings) == 1
        assert "out_credits" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_occupancy_cache_assignment_flags(self):
        assert run_rule("noc-state-mutation", NOC, """\
            def reset(router):
                router._buffered = 0
            """)

    def test_container_method_mutation_flags(self):
        assert run_rule("noc-state-mutation", NOC, """\
            def poke(router, port, vc):
                router._occupied.add(port * 4 + vc)
            """)

    def test_delete_flags(self):
        assert run_rule("noc-state-mutation", HARNESS, """\
            def strip(ni):
                del ni._credits[0]
            """)

    def test_reads_pass(self):
        assert run_rule("noc-state-mutation", HARNESS, """\
            def peek(router, port, vc):
                free = router.out_credits[port][vc]
                owner = router.out_owner[port][vc]
                return free, owner
            """) == []

    def test_router_module_is_exempt(self):
        assert run_rule("noc-state-mutation", "src/repro/noc/router.py", """\
            def credit(self, port, vc):
                self.out_credits[port][vc] += 1
            """) == []

    def test_ni_module_is_exempt(self):
        assert run_rule("noc-state-mutation", "src/repro/noc/ni.py", """\
            def restore(self, vc):
                self._credits[vc] += 1
            """) == []


class TestConfigFieldValidation:
    CONFIG = "src/repro/noc/config.py"

    def test_unregistered_field_flags(self):
        findings = run_rule("config-field-validation", self.CONFIG, """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class NocConfig:
                mesh_width: int = 4
                brand_new_knob: int = 7
            """)
        assert len(findings) == 1
        assert "brand_new_knob" in findings[0].message

    def test_registered_fields_pass(self):
        assert run_rule("config-field-validation", self.CONFIG, """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class NocConfig:
                mesh_width: int = 4
                mesh_height: int = 4
                sanitize: bool = False
            """) == []

    def test_classvar_and_private_fields_skipped(self):
        assert run_rule("config-field-validation", self.CONFIG, """\
            from typing import ClassVar
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class NocConfig:
                SCHEMA: ClassVar[int] = 1
                _scratch: int = 0
            """) == []

    def test_other_classes_ignored(self):
        assert run_rule("config-field-validation", self.CONFIG, """\
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class SomethingElse:
                mystery_knob: int = 3
            """) == []

    def test_other_modules_out_of_scope(self):
        assert run_rule("config-field-validation", NOC, """\
            class NocConfig:
                mystery_knob: int = 3
            """) == []


class TestSkipSafetyAccounting:
    NETWORK = "src/repro/noc/network.py"
    ROUTER = "src/repro/noc/router.py"

    def test_unregistered_field_flags(self):
        findings = run_rule("skip-safety-accounting", self.NETWORK, """\
            class Network:
                def __init__(self, config):
                    self.cycle = 0
                    self._sneaky_cache = {}
            """)
        assert len(findings) == 1
        assert "_sneaky_cache" in findings[0].message
        assert "SKIP_ACCOUNTED_STATE" in findings[0].message
        assert findings[0].severity is Severity.ERROR

    def test_registered_fields_pass(self):
        assert run_rule("skip-safety-accounting", self.NETWORK, """\
            class Network:
                def __init__(self, config):
                    self.config = config
                    self.cycle = 0
                    self._buffered_total = 0
            """) == []

    def test_closure_assignment_in_init_is_audited(self):
        # Fields introduced by closures defined inside __init__ (the send/
        # accept fast-path hooks) are instance state like any other.
        findings = run_rule("skip-safety-accounting", self.ROUTER, """\
            class Router:
                def __init__(self):
                    def hook():
                        self._phantom = 1
                    self._buffered = 0
            """)
        assert len(findings) == 1
        assert "_phantom" in findings[0].message

    def test_unknown_classification_flags(self, monkeypatch):
        from repro.noc import network as network_mod
        monkeypatch.setitem(
            network_mod.SKIP_ACCOUNTED_STATE["Router"], "_weird", "banana")
        findings = run_rule("skip-safety-accounting", self.ROUTER, """\
            class Router:
                def __init__(self):
                    self._weird = 0
            """)
        assert len(findings) == 1
        assert "banana" in findings[0].message

    def test_other_classes_ignored(self):
        assert run_rule("skip-safety-accounting", self.NETWORK, """\
            class TrafficShaper:
                def __init__(self):
                    self.totally_unregistered = {}
            """) == []

    def test_other_modules_out_of_scope(self):
        assert run_rule("skip-safety-accounting", NOC, """\
            class Network:
                def __init__(self):
                    self.totally_unregistered = {}
            """) == []


class TestAsyncBlocking:
    """REPRO313: no blocking calls on the campaign service's event loop."""

    SERVICE = "src/repro/service/fixture.py"

    def test_time_sleep_in_async_def_flags(self):
        findings = run_rule("async-blocking", self.SERVICE, """\
            import time

            async def tick():
                time.sleep(0.1)
            """)
        assert len(findings) == 1
        assert "asyncio.sleep" in findings[0].message

    def test_from_import_sleep_flags(self):
        assert run_rule("async-blocking", self.SERVICE, """\
            from time import sleep

            async def tick():
                sleep(0.1)
            """)

    def test_sync_open_in_async_def_flags(self):
        findings = run_rule("async-blocking", self.SERVICE, """\
            async def slurp(path):
                with open(path) as fh:
                    return fh.read()
            """)
        assert len(findings) == 1
        assert "run_in_executor" in findings[0].message

    def test_submit_result_chain_flags(self):
        findings = run_rule("async-blocking", self.SERVICE, """\
            async def run(pool, spec):
                return pool.submit(go, spec).result()
            """)
        assert len(findings) == 1
        assert "result()" in findings[0].message

    def test_await_asyncio_sleep_passes(self):
        assert run_rule("async-blocking", self.SERVICE, """\
            import asyncio

            async def tick():
                await asyncio.sleep(0.1)
            """) == []

    def test_sync_function_is_out_of_scope(self):
        """Blocking calls in ordinary sync helpers are exactly where the
        blocking work is supposed to live (run_in_executor targets)."""
        assert run_rule("async-blocking", self.SERVICE, """\
            import time

            def tick():
                time.sleep(0.1)

            def slurp(path):
                with open(path) as fh:
                    return fh.read()
            """) == []

    def test_nested_sync_helper_passes(self):
        assert run_rule("async-blocking", self.SERVICE, """\
            async def outer(loop):
                def helper(path):
                    with open(path) as fh:
                        return fh.read()
                return await loop.run_in_executor(None, helper, "x")
            """) == []

    def test_awaited_executor_future_passes(self):
        assert run_rule("async-blocking", self.SERVICE, """\
            async def run(loop, pool, spec):
                return await loop.run_in_executor(pool, go, spec)
            """) == []

    def test_other_packages_out_of_scope(self):
        assert run_rule("async-blocking", HARNESS, """\
            import time

            async def tick():
                time.sleep(0.1)
            """) == []


class TestRegistry:
    def test_at_least_twelve_rules(self):
        assert len(all_rules()) >= 12

    def test_codes_and_names_unique(self):
        rules = all_rules()
        assert len({r.code for r in rules}) == len(rules)
        assert len({r.name for r in rules}) == len(rules)

    def test_every_rule_states_its_invariant(self):
        for rule in all_rules():
            assert rule.invariant, rule.name

    def test_unknown_rule_raises(self):
        with pytest.raises(KeyError):
            get_rule("no-such-rule")
