"""Tests for the energy and area models."""

import pytest

from repro.noc.stats import NetworkStats
from repro.power.area import (
    di_comp_encoder_area,
    di_vaxx_encoder_area,
    encoder_area,
    fp_comp_encoder_area,
    fp_vaxx_encoder_area,
)
from repro.power.energy import (
    CODEC_ENERGY_PJ,
    PowerReport,
    dynamic_power,
    normalized_power,
)


def make_stats(**kw):
    stats = NetworkStats()
    for key, value in kw.items():
        setattr(stats, key, value)
    return stats


class TestEnergyModel:
    def test_zero_activity_zero_energy(self):
        report = dynamic_power(make_stats(cycles=100), "Baseline")
        assert report.total_energy_pj == 0.0
        assert report.dynamic_power_mw == 0.0

    def test_events_accumulate(self):
        stats = make_stats(cycles=100, buffer_writes=10, buffer_reads=10,
                           crossbar_traversals=10, link_traversals=10,
                           vc_allocations=4)
        report = dynamic_power(stats, "Baseline")
        assert report.router_energy_pj == pytest.approx(
            10 * (1.20 + 0.95 + 1.55 + 2.10) + 4 * 0.25)

    def test_codec_energy_ordering(self):
        """TCAM search costs more than CAM, which costs more than static
        comparators (the [1] model)."""
        assert (CODEC_ENERGY_PJ["DI-VAXX"]["compress"]
                > CODEC_ENERGY_PJ["DI-COMP"]["compress"]
                > CODEC_ENERGY_PJ["FP-VAXX"]["compress"]
                > CODEC_ENERGY_PJ["FP-COMP"]["compress"]
                > CODEC_ENERGY_PJ["Baseline"]["compress"])

    def test_codec_events_charged(self):
        stats = make_stats(cycles=10, compression_ops=5,
                           decompression_ops=5)
        baseline = dynamic_power(stats, "Baseline")
        vaxx = dynamic_power(stats, "DI-VAXX")
        assert baseline.codec_energy_pj == 0.0
        assert vaxx.codec_energy_pj > 0.0

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            dynamic_power(make_stats(cycles=1), "LZ77")

    def test_power_units(self):
        # 2000 pJ over 1000 cycles at 2 GHz = 2000e-12 J / 500e-9 s = 4 mW
        report = PowerReport(router_energy_pj=2000.0, codec_energy_pj=0.0,
                             cycles=1000, frequency_ghz=2.0)
        assert report.dynamic_power_mw == pytest.approx(4.0)

    def test_normalized_power(self):
        reports = {
            "Baseline": PowerReport(100.0, 0.0, 10, 2.0),
            "FP-VAXX": PowerReport(80.0, 10.0, 10, 2.0),
        }
        normalized = normalized_power(reports)
        assert normalized["Baseline"] == 1.0
        assert normalized["FP-VAXX"] == pytest.approx(0.9)

    def test_normalized_power_needs_baseline_energy(self):
        with pytest.raises(ValueError):
            normalized_power({"Baseline": PowerReport(0.0, 0.0, 10, 2.0)})


class TestAreaModel:
    def test_di_vaxx_matches_paper(self):
        """§5.5: DI-VAXX encoder is 0.0037 mm² per NI at 45 nm."""
        assert di_vaxx_encoder_area(32).total_mm2 == pytest.approx(
            0.0037, rel=0.08)

    def test_fp_vaxx_matches_paper(self):
        """§5.5: FP-VAXX encoder is 0.0029 mm² per NI at 45 nm."""
        assert fp_vaxx_encoder_area().total_mm2 == pytest.approx(
            0.0029, rel=0.08)

    def test_vaxx_costs_more_than_base(self):
        assert (di_vaxx_encoder_area(32).total_um2
                > di_comp_encoder_area(32).total_um2)
        assert (fp_vaxx_encoder_area().total_um2
                > fp_comp_encoder_area().total_um2)

    def test_di_vaxx_area_grows_with_nodes(self):
        """The per-destination vectors scale with network size."""
        assert (di_vaxx_encoder_area(64).total_um2
                > di_vaxx_encoder_area(16).total_um2)

    def test_lookup(self):
        assert encoder_area("FP-VAXX").total_mm2 > 0
        with pytest.raises(ValueError):
            encoder_area("Baseline")
