"""Write-ahead journal: corruption tolerance and replay idempotence.

The journal is the crash-safety keystone, so these tests attack it the
way a crash would: torn tails, flipped bytes, duplicated records — and
assert the scan never misparses, the reopen never cascades, and replay
is a pure idempotent function of the record sequence.
"""

import json

import pytest

from repro.service.journal import (DONE, FAILED, MAGIC, MAX_RECORD_BYTES,
                                   JobTable, Journal, JournalError,
                                   RecordTooLarge, recover, scan_journal)


def _job_record(job_id="job1", n_specs=3):
    return {
        "t": "job",
        "job": job_id,
        "request": {"benchmarks": ["blackscholes"]},
        "degradation": None,
        "specs": [{"seed": i} for i in range(n_specs)],
        "keys": [f"key-{i}" for i in range(n_specs)],
    }


def _records(job_id="job1"):
    """A realistic record sequence: submit, lease, done, a retried spec
    that fails, an audit, a seal."""
    return [
        _job_record(job_id),
        {"t": "lease", "job": job_id, "index": 0, "kind": "run",
         "worker": 0, "attempt": 1},
        {"t": "done", "job": job_id, "index": 0, "attempt": 1,
         "cached": False, "digest": "d0"},
        {"t": "lease", "job": job_id, "index": 1, "kind": "run",
         "worker": 1, "attempt": 1},
        {"t": "lease", "job": job_id, "index": 1, "kind": "run",
         "worker": 0, "attempt": 2},
        {"t": "fail", "job": job_id, "index": 1, "attempt": 2,
         "error": "poison"},
        {"t": "done", "job": job_id, "index": 2, "attempt": 1,
         "cached": True, "digest": "d2"},
        {"t": "audit", "job": job_id, "index": 0, "attempt": 1,
         "ok": True, "digest": "d0", "error": None},
        {"t": "seal", "job": job_id, "status": "partial",
         "envelope_digest": "e1"},
    ]


def _write_journal(path, records):
    journal = Journal(path)
    for record in records:
        journal.append(record)
    journal.close()


class TestScan:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "j"
        _write_journal(path, _records())
        scan = scan_journal(path)
        assert scan.records == _records()
        assert not scan.truncated
        assert scan.reason is None

    def test_missing_file_scans_empty(self, tmp_path):
        scan = scan_journal(tmp_path / "absent")
        assert scan.records == []
        assert not scan.truncated

    def test_foreign_file_refused(self, tmp_path):
        path = tmp_path / "not-a-journal"
        path.write_bytes(b"PNG\x89thisisnotajournal")
        with pytest.raises(JournalError):
            scan_journal(path)

    def test_truncated_tail_yields_prefix(self, tmp_path):
        """A writer SIGKILLed mid-append leaves a torn final frame; the
        scan returns every record before it."""
        path = tmp_path / "j"
        records = _records()
        _write_journal(path, records)
        blob = path.read_bytes()
        for cut in (1, 5, len(blob) - 1):
            torn = tmp_path / f"torn-{cut}"
            torn.write_bytes(blob[:-cut])
            scan = scan_journal(torn)
            assert scan.truncated
            assert scan.records == records[:len(scan.records)]
            assert len(scan.records) < len(records)

    def test_flipped_checksum_byte_poisons_suffix(self, tmp_path):
        """One flipped payload byte fails that frame's CRC; the scan
        keeps the intact prefix and distrusts everything after."""
        path = tmp_path / "j"
        records = _records()
        _write_journal(path, records)
        blob = bytearray(path.read_bytes())
        # Flip a byte inside the *second* frame's payload.
        first_len = int.from_bytes(blob[8:12], "little")
        second_payload = 8 + 8 + first_len + 8 + 2
        blob[second_payload] ^= 0xFF
        path.write_bytes(bytes(blob))
        scan = scan_journal(path)
        assert scan.truncated
        assert scan.reason == "checksum mismatch"
        assert scan.records == records[:1]

    def test_implausible_length_stops_scan(self, tmp_path):
        path = tmp_path / "j"
        _write_journal(path, _records()[:2])
        with open(path, "ab") as fh:
            fh.write((1 << 30).to_bytes(4, "little") + b"\0\0\0\0zz")
        scan = scan_journal(path)
        assert scan.truncated
        assert "implausible" in scan.reason
        assert len(scan.records) == 2

    def test_reopen_truncates_and_appends_cleanly(self, tmp_path):
        """Recovery amputates the torn tail so new appends start at a
        trusted offset — one torn write can never cascade."""
        path = tmp_path / "j"
        records = _records()
        _write_journal(path, records)
        blob = path.read_bytes()
        path.write_bytes(blob[:-3])
        journal = Journal(path)
        assert journal.recovered.truncated
        journal.append({"t": "fresh", "n": 1}, durable=True)
        journal.close()
        scan = scan_journal(path)
        assert not scan.truncated
        assert scan.records == records[:-1] + [{"t": "fresh", "n": 1}]


class TestReplayIdempotence:
    def test_apply_twice_is_identical(self, tmp_path):
        """Applying the same journal twice produces a bit-identical
        table — the property that makes duplicate records (crash between
        acting and journaling) harmless."""
        records = _records()
        once, twice = JobTable(), JobTable()
        once.replay(records)
        twice.replay(records)
        twice.replay(records)
        assert json.dumps(once.snapshot(), sort_keys=True) == \
            json.dumps(twice.snapshot(), sort_keys=True)

    def test_duplicate_seal_record(self):
        table = JobTable()
        table.replay(_records())
        sealed_before = table.snapshot()
        table.apply({"t": "seal", "job": "job1", "status": "proven",
                     "envelope_digest": "different"})
        assert table.snapshot() == sealed_before
        assert table.jobs["job1"].seal_status == "partial"

    def test_duplicate_done_not_double_charged(self):
        table = JobTable()
        table.replay(_records())
        spec = table.jobs["job1"].specs[0]
        assert spec.executions == 1
        table.apply({"t": "done", "job": "job1", "index": 0,
                     "attempt": 1, "cached": False, "digest": "d0"})
        assert spec.executions == 1  # same attempt: set union, no charge

    def test_distinct_attempts_do_double_charge(self):
        """The accounting must *detect* genuine double execution, not
        paper over it: done records at distinct attempts count twice."""
        table = JobTable()
        table.replay(_records())
        table.apply({"t": "done", "job": "job1", "index": 0,
                     "attempt": 2, "cached": False, "digest": "d0"})
        assert table.jobs["job1"].specs[0].executions == 2
        assert table.accounting("job1")["double_charged"] == [0]

    def test_statuses_and_recovery_reset(self):
        records = _records()[:-1]  # stop before the seal
        records.append({"t": "lease", "job": "job1", "index": 2,
                        "kind": "audit", "worker": 0, "attempt": 1})
        table = JobTable()
        table.replay(records)
        job = table.jobs["job1"]
        assert job.specs[0].status == DONE
        assert job.specs[1].status == FAILED
        assert job.specs[2].status == DONE  # cached done
        reset = table.finish_recovery()
        assert all(s.lease is None for s in job.specs)
        assert reset >= 0

    def test_records_for_unknown_jobs_ignored(self):
        table = JobTable()
        table.apply({"t": "done", "job": "ghost", "index": 0,
                     "attempt": 1, "cached": False, "digest": "x"})
        table.apply({"t": "seal", "job": "ghost", "status": "proven",
                     "envelope_digest": "x"})
        assert table.jobs == {}


class TestRecover:
    def test_recover_round_trip(self, tmp_path):
        path = tmp_path / "j"
        _write_journal(path, _records())
        journal, table = recover(path)
        try:
            assert set(table.jobs) == {"job1"}
            job = table.jobs["job1"]
            assert job.sealed and job.seal_status == "partial"
            assert job.specs[0].status == DONE
            assert all(s.lease is None for s in job.specs)
        finally:
            journal.close()

    def test_recover_empty_creates_magic(self, tmp_path):
        path = tmp_path / "fresh"
        journal, table = recover(path)
        journal.close()
        assert path.read_bytes() == MAGIC
        assert table.jobs == {}

    def test_append_after_close_refused(self, tmp_path):
        journal = Journal(tmp_path / "j")
        journal.close()
        with pytest.raises(JournalError):
            journal.append({"t": "x"})

    def test_oversized_record_rejected_before_writing(self, tmp_path):
        """A record the recovery scan's frame-length limit would refuse
        must be rejected at append time, not durably written and then
        silently discarded (with everything after it) on restart."""
        path = tmp_path / "j"
        journal = Journal(path)
        journal.append({"t": "ok"}, durable=True)
        huge = {"t": "job", "blob": "x" * (MAX_RECORD_BYTES + 1)}
        with pytest.raises(RecordTooLarge):
            journal.append(huge, durable=True)
        journal.append({"t": "after"}, durable=True)
        journal.close()
        scan = scan_journal(path)
        assert not scan.truncated
        assert scan.records == [{"t": "ok"}, {"t": "after"}]
