"""HTTP layer tests: routes, backpressure (429 + Retry-After), graceful
degradation, NDJSON progress streaming.

A real :class:`~repro.service.server.CampaignService` is started on an
ephemeral port with one process-pool worker and spoken to over raw
asyncio sockets, so status lines and headers (Retry-After in
particular) are asserted as actual wire bytes.
"""

import asyncio
import json

import repro.service.server as server_mod
from repro.service.config import ServiceConfig
from repro.service.server import CampaignService, TokenBucket


def tiny_payload(seeds=(11,), **overrides):
    payload = {
        "benchmarks": ["blackscholes"],
        "mechanisms": ["Baseline"],
        "seeds": list(seeds),
        "trace_cycles": 160,
        "warmup": 40,
        "measure": 40,
    }
    payload.update(overrides)
    return payload


async def http(port, method, path, payload=None, client="test"):
    """One HTTP exchange; returns (status, headers, parsed body)."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"X-Client: {client}\r\nContent-Length: {len(body)}\r\n\r\n")
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await asyncio.wait_for(reader.read(), 30.0)
    writer.close()
    await writer.wait_closed()
    header_blob, _, payload_blob = raw.partition(b"\r\n\r\n")
    lines = header_blob.decode("latin-1").split("\r\n")
    status = int(lines[0].split()[1])
    headers = {}
    for line in lines[1:]:
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    try:
        decoded = json.loads(payload_blob.decode() or "null")
    except ValueError:
        decoded = None
    return status, headers, decoded


async def wait_sealed(port, job_id, timeout=60.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        status, _, body = await http(port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if body["sealed"]:
            return body
        await asyncio.sleep(0.05)
    raise AssertionError(f"job {job_id} did not seal within {timeout}s")


def run_with_service(config, scenario):
    """Start a service, run ``scenario(service)``, always stop."""
    async def runner():
        service = CampaignService(config)
        await service.start()
        try:
            return await scenario(service)
        finally:
            await service.stop()

    return asyncio.run(runner())


def base_config(tmp_path, **overrides):
    base = dict(port=0, journal_dir=str(tmp_path / "svc"), workers=1,
                heartbeat_s=0.05, backoff_base_s=0.01,
                backoff_cap_s=0.1, audit_fraction=1.0, rate_burst=3.0,
                rate_refill_per_s=0.1)
    base.update(overrides)
    return ServiceConfig(**base)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(burst=2.0, refill_per_s=1.0, now=0.0)
        assert bucket.admit(0.0) == (True, 0.0)
        assert bucket.admit(0.0) == (True, 0.0)
        admitted, retry_after = bucket.admit(0.0)
        assert not admitted
        assert 0.0 < retry_after <= 1.0
        admitted, _ = bucket.admit(1.5)  # refilled past one token
        assert admitted

    def test_never_exceeds_burst(self):
        bucket = TokenBucket(burst=1.0, refill_per_s=100.0, now=0.0)
        assert bucket.admit(1000.0)[0]
        assert not bucket.admit(1000.0)[0]


class TestRoutes:
    def test_full_campaign_lifecycle(self, tmp_path):
        async def scenario(service):
            port = service.port
            status, _, health = await http(port, "GET", "/healthz")
            assert status == 200
            assert health["status"] == "ok"
            assert health["supervision_errors"] == 0

            status, _, body = await http(port, "POST", "/jobs",
                                         tiny_payload(), client="life")
            assert status == 202
            assert body["created"] and not body["degraded"]
            job_id = body["job"]

            # Idempotent resubmission: same job, not re-created.
            status, _, again = await http(port, "POST", "/jobs",
                                          tiny_payload(), client="life")
            assert status == 200
            assert again["job"] == job_id and not again["created"]

            final = await wait_sealed(port, job_id)
            assert final["status"] == "proven" and final["proven"]

            status, _, envelope = await http(port, "GET",
                                             f"/jobs/{job_id}/envelope")
            assert status == 200
            assert envelope["status"] == "proven"
            assert envelope["audit"]["ok"]
            assert envelope["accounting"]["double_charged"] == []
            assert envelope["identity_digest"] == final["envelope_digest"]

        run_with_service(base_config(tmp_path), scenario)

    def test_validation_errors_are_400(self, tmp_path):
        async def scenario(service):
            port = service.port
            cases = [
                {},  # missing benchmarks
                tiny_payload(benchmarks=["nope"]),
                tiny_payload(seeds=[]),
                tiny_payload(extra_field=1),
                tiny_payload(trace_cycles=0),
            ]
            for i, payload in enumerate(cases):
                status, _, body = await http(port, "POST", "/jobs",
                                             payload, client=f"bad{i}")
                assert status == 400, payload
                assert "error" in body
            status, _, _ = await http(port, "GET", "/jobs/absent")
            assert status == 404
            status, _, _ = await http(port, "GET", "/nowhere")
            assert status == 404
            status, _, body = await http(port, "GET",
                                         "/jobs/absent/envelope")
            assert status == 404

        run_with_service(base_config(tmp_path), scenario)

    def test_job_id_must_be_safe_path_component(self, tmp_path):
        """Client-supplied job ids become envelope filenames, so a
        traversal-shaped id must be a 400, never a filesystem write
        outside the journal directory."""
        async def scenario(service):
            port = service.port
            bad_ids = ["../../tmp/evil", "..", ".", "a/b", "a\\b",
                       ".hidden", "x" * 65, "job id"]
            for i, bad in enumerate(bad_ids):
                status, _, body = await http(port, "POST", "/jobs",
                                             tiny_payload(job=bad),
                                             client=f"trav{i}")
                assert status == 400, bad
                assert "job" in body["error"]
            status, _, body = await http(port, "POST", "/jobs",
                                         tiny_payload(job="My-job.01"),
                                         client="trav-ok")
            assert status == 202
            assert body["job"] == "My-job.01"

        run_with_service(base_config(tmp_path), scenario)

    def test_drain_endpoint(self, tmp_path):
        async def scenario(service):
            port = service.port
            status, _, body = await http(port, "POST", "/drain")
            assert status == 200 and body["drained"]
            # Draining: new submissions refused with Retry-After.
            status, headers, _ = await http(port, "POST", "/jobs",
                                            tiny_payload(), client="late")
            assert status == 503
            assert "retry-after" in headers

        run_with_service(base_config(tmp_path), scenario)


class TestBackpressure:
    def test_rate_limit_429_with_retry_after(self, tmp_path):
        async def scenario(service):
            port = service.port
            # Burn the 3-token burst with invalid (cheap) submissions —
            # admission happens before validation, so these cost tokens.
            for _ in range(3):
                status, _, _ = await http(port, "POST", "/jobs", {},
                                          client="limited")
                assert status == 400
            status, headers, body = await http(port, "POST", "/jobs", {},
                                               client="limited")
            assert status == 429
            assert int(headers["retry-after"]) >= 1
            assert body["retry_after_s"] > 0
            # Other clients are unaffected (per-client buckets).
            status, _, _ = await http(port, "POST", "/jobs", {},
                                      client="someone-else")
            assert status == 400

        run_with_service(base_config(tmp_path), scenario)

    def test_queue_depth_exceeded(self, tmp_path):
        async def scenario(service):
            port = service.port
            status, headers, body = await http(
                port, "POST", "/jobs", tiny_payload(seeds=[1, 2, 3]),
                client="deep")
            assert status == 503  # 3 specs can never fit depth 2
            assert "retry-after" in headers
            assert body["max_queue_depth"] == 2

        run_with_service(base_config(tmp_path, max_queue_depth=2),
                         scenario)


class TestRequestHardening:
    def test_stalled_header_drip_times_out(self, tmp_path, monkeypatch):
        """A client that sends the request line and then stalls must not
        hold the connection open past the whole-request deadline
        (slowloris defence) — it gets a 400 and the socket closes."""
        monkeypatch.setattr(server_mod, "_REQUEST_TIMEOUT_S", 0.2)

        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            writer.write(b"GET /healthz HTTP/1.1\r\nX-Drip: ")  # stall
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            assert b"400" in raw.split(b"\r\n", 1)[0]
            writer.close()
            await writer.wait_closed()

        run_with_service(base_config(tmp_path), scenario)

    def test_header_flood_rejected(self, tmp_path):
        async def scenario(service):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", service.port)
            head = "GET /healthz HTTP/1.1\r\n" + "".join(
                f"X-H{i}: v\r\n" for i in range(200)) + "\r\n"
            writer.write(head.encode())
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 10.0)
            assert b"400" in raw.split(b"\r\n", 1)[0]
            writer.close()
            await writer.wait_closed()

        run_with_service(base_config(tmp_path), scenario)


class TestDegradation:
    def test_sustained_overload_downshifts_to_smoke(self, tmp_path):
        async def scenario(service):
            port = service.port
            payload = tiny_payload(seeds=[1, 2], trace_cycles=200,
                                   warmup=50, measure=50)
            status, _, body = await http(port, "POST", "/jobs", payload,
                                         client="degraded")
            assert status == 202
            assert body["degraded"]
            record = body["degradation"]
            assert record["original"]["seeds"] == [1, 2]
            assert record["effective"]["seeds"] == [1]  # smoke: one seed
            assert body["specs"] == 1
            final = await wait_sealed(port, body["job"])
            assert final["degraded"]
            _, _, envelope = await http(port, "GET",
                                        f"/jobs/{body['job']}/envelope")
            assert envelope["degradation"]["effective"]["seeds"] == [1]

        # degrade_highwater=-1 + degrade_after_s=0: overloaded from the
        # first request, so the downshift path runs deterministically.
        run_with_service(
            base_config(tmp_path, degrade_highwater=-1,
                        degrade_after_s=0.0),
            scenario)


class TestEventStream:
    def test_ndjson_stream_until_sealed(self, tmp_path):
        async def scenario(service):
            port = service.port
            status, _, body = await http(port, "POST", "/jobs",
                                         tiny_payload(), client="events")
            assert status == 202
            job_id = body["job"]

            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write((f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                          f"Host: t\r\nX-Client: events\r\n\r\n"
                          ).encode())
            await writer.drain()
            header = await reader.readuntil(b"\r\n\r\n")
            assert b"200 OK" in header
            assert b"application/x-ndjson" in header
            events = []
            while True:
                line = await asyncio.wait_for(reader.readline(), 60.0)
                if not line:
                    break
                events.append(json.loads(line))
                if events[-1].get("event") == "sealed":
                    break
            # The server must close the stream promptly after sealing —
            # a follower blocks on EOF, so a connection fd leaked into a
            # pool worker (or a missing close) would hang every client.
            tail = await asyncio.wait_for(reader.readline(), 10.0)
            assert tail == b""
            writer.close()
            await writer.wait_closed()
            kinds = [event["event"] for event in events]
            assert kinds[0] == "snapshot"
            assert kinds[-1] == "sealed"
            assert events[-1]["status"] == "proven"

        run_with_service(base_config(tmp_path), scenario)

    def test_stream_on_sealed_job_ends_with_sealed_event(self, tmp_path):
        """Attaching to an already-sealed job must still deliver a
        terminal ``sealed`` event (followers key their exit status off
        its ``status``), then EOF."""
        async def scenario(service):
            port = service.port
            status, _, body = await http(port, "POST", "/jobs",
                                         tiny_payload(), client="events")
            assert status == 202
            job_id = body["job"]
            deadline = asyncio.get_running_loop().time() + 120.0
            while True:
                status, _, body = await http(port, "GET",
                                             f"/jobs/{job_id}",
                                             client="events")
                if body.get("sealed"):
                    break
                assert asyncio.get_running_loop().time() < deadline
                await asyncio.sleep(0.1)

            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write((f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                          f"Host: t\r\nX-Client: events\r\n\r\n"
                          ).encode())
            await writer.drain()
            await reader.readuntil(b"\r\n\r\n")
            events = []
            while True:
                line = await asyncio.wait_for(reader.readline(), 30.0)
                if not line:
                    break
                events.append(json.loads(line))
            writer.close()
            await writer.wait_closed()
            kinds = [event["event"] for event in events]
            assert kinds == ["snapshot", "sealed"]
            assert events[0]["sealed"] is True
            assert events[1]["status"] == "proven"

        run_with_service(base_config(tmp_path), scenario)
