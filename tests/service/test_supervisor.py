"""Lease supervision unit tests: retry budget, quarantine attribution,
hung-worker reclaim, crash-resume exactly-once accounting.

The pool is replaced by a ``ThreadPoolExecutor`` and the worker entry
point by controllable fakes, so worker death (``BrokenProcessPool``),
hangs and deterministic failures can be injected precisely; the journal,
table, queue and seal machinery under test are the real thing.
"""

import asyncio
import json
import threading
from concurrent.futures import ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import repro.service.supervisor as supervisor_mod
from repro.service.config import ServiceConfig
from repro.service.journal import DONE, FAILED, recover
from repro.service.model import envelope_identity, parse_request
from repro.service.supervisor import Supervisor


def tiny_request(seeds=(11,), job=""):
    return parse_request({
        "benchmarks": ["blackscholes"],
        "mechanisms": ["Baseline"],
        "seeds": list(seeds),
        "trace_cycles": 160,
        "warmup": 40,
        "measure": 40,
        "job": job,
    })


@dataclass
class FakeResult:
    """Deterministic stand-in for a RunResult, derived from the spec."""

    seed: int

    def identity_digest(self):
        return f"digest-{self.seed}"

    def simulation_outputs(self):
        return {"seed": self.seed, "latency": 10.0 + self.seed}


def fake_runner(calls=None, fail=None):
    """A ``_pool_run_spec`` stand-in.  ``calls`` (a list) records
    ``(seed, fresh)``; ``fail(seed, nth_run_call)`` may raise to inject
    faults (audit calls never consult ``fail``)."""
    lock = threading.Lock()
    counts = {}

    def run(spec_payload, fresh):
        seed = spec_payload["seed"]
        with lock:
            if calls is not None:
                calls.append((seed, fresh))
            nth = counts[seed] = counts.get(seed, 0) + (0 if fresh else 1)
        if not fresh and fail is not None:
            fail(seed, nth)
        return {"digest": f"digest-{seed}", "cached": False}

    return run


def service_config(tmp_path, **overrides):
    base = dict(journal_dir=str(tmp_path / "svc"), workers=2,
                heartbeat_s=0.02, spec_timeout_s=30.0, retry_budget=3,
                backoff_base_s=0.01, backoff_cap_s=0.05,
                audit_fraction=1.0)
    base.update(overrides)
    return ServiceConfig(**base)


def make_supervisor(config, monkeypatch, run_fn):
    monkeypatch.setattr(supervisor_mod, "_pool_run_spec", run_fn)
    monkeypatch.setattr(supervisor_mod, "load_cached",
                        lambda spec: FakeResult(spec.seed))
    journal, table = recover(config.journal_path,
                             fsync_batch=config.fsync_batch)
    return Supervisor(config, journal, table,
                      executor_factory=lambda: ThreadPoolExecutor(
                          max_workers=config.workers))


async def wait_sealed(sup, job_id, timeout=20.0):
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while loop.time() < deadline:
        job = sup.table.jobs.get(job_id)
        if job is not None and job.sealed:
            return job
        await asyncio.sleep(0.01)
    raise AssertionError(f"job {job_id} did not seal within {timeout}s")


def read_envelope(config, job_id):
    with open(config.envelope_path(job_id)) as fh:
        return json.load(fh)


class TestHappyPath:
    def test_submit_runs_audits_seals_proven(self, tmp_path, monkeypatch):
        async def scenario():
            config = service_config(tmp_path)
            calls = []
            sup = make_supervisor(config, monkeypatch, fake_runner(calls))
            await sup.start()
            try:
                request = tiny_request(seeds=(1, 2))
                job, created = await sup.submit(request, None)
                assert created
                job = await wait_sealed(sup, job.job_id)
            finally:
                await sup.stop()
            assert job.seal_status == "proven"
            envelope = read_envelope(config, job.job_id)
            assert envelope["status"] == "proven"
            assert envelope["audit"]["ok"]
            assert envelope["audit"]["sampled"] == [0, 1]
            acct = envelope["accounting"]
            assert acct["executed"] == 2
            assert acct["double_charged"] == []
            assert acct["unaccounted"] == []
            runs = [c for c in calls if not c[1]]
            audits = [c for c in calls if c[1]]
            assert sorted(seed for seed, _ in runs) == [1, 2]
            assert sorted(seed for seed, _ in audits) == [1, 2]

        asyncio.run(scenario())

    def test_resubmission_is_idempotent(self, tmp_path, monkeypatch):
        async def scenario():
            config = service_config(tmp_path)
            sup = make_supervisor(config, monkeypatch, fake_runner())
            await sup.start()
            try:
                request = tiny_request()
                job1, created1 = await sup.submit(request, None)
                job2, created2 = await sup.submit(request, None)
                assert created1 and not created2
                assert job1 is job2
                await wait_sealed(sup, job1.job_id)
            finally:
                await sup.stop()

        asyncio.run(scenario())

    def test_concurrent_duplicate_submissions_enqueue_once(self,
                                                           tmp_path):
        """Racing submissions of the same job id must not both pass the
        existence check: exactly one creates the job and the spec grid is
        enqueued exactly once (no workers running, so the queue length is
        the direct evidence)."""
        async def scenario():
            config = service_config(tmp_path)
            journal, table = recover(config.journal_path)
            sup = Supervisor(config, journal, table,
                             executor_factory=ThreadPoolExecutor)
            sup._journal_lock = asyncio.Lock()
            try:
                request = tiny_request(seeds=(1, 2))
                results = await asyncio.gather(
                    *(sup.submit(request, None) for _ in range(5)))
            finally:
                journal.close()
            assert sum(1 for _, created in results if created) == 1
            assert len({job.job_id for job, _ in results}) == 1
            assert len(sup._queue) == 2  # one item per spec, once

        asyncio.run(scenario())


class TestFaults:
    def test_deterministic_failure_is_terminal(self, tmp_path,
                                               monkeypatch):
        """An in-run exception would recur on retry, so it consumes the
        whole budget at once and the job still seals (partial)."""
        async def scenario():
            config = service_config(tmp_path)

            def fail(seed, nth):
                raise ValueError(f"poison spec {seed}")

            sup = make_supervisor(config, monkeypatch,
                                  fake_runner(fail=fail))
            await sup.start()
            try:
                job, _ = await sup.submit(tiny_request(), None)
                job = await wait_sealed(sup, job.job_id)
            finally:
                await sup.stop()
            assert job.specs[0].status == FAILED
            assert "poison" in job.specs[0].error
            envelope = read_envelope(config, job.job_id)
            assert envelope["status"] == "partial"
            assert envelope["accounting"]["failed"] == [0]

        asyncio.run(scenario())

    def test_worker_death_charged_until_budget(self, tmp_path,
                                               monkeypatch):
        """A spec whose worker dies every time (cohort of one: fully
        attributable) is charged each attempt and declared poison after
        the retry budget — the queue never wedges."""
        async def scenario():
            config = service_config(tmp_path, retry_budget=2)
            attempts = []

            def fail(seed, nth):
                attempts.append(nth)
                raise BrokenProcessPool("worker died")

            sup = make_supervisor(config, monkeypatch,
                                  fake_runner(fail=fail))
            await sup.start()
            try:
                job, _ = await sup.submit(tiny_request(), None)
                job = await wait_sealed(sup, job.job_id)
            finally:
                await sup.stop()
            assert job.specs[0].status == FAILED
            assert "retry budget" in job.specs[0].error
            assert len(attempts) == 2  # charged once per budget slot

        asyncio.run(scenario())

    def test_pool_break_with_cohort_is_uncharged(self, tmp_path,
                                                 monkeypatch):
        """Two leases in flight when the pool breaks: neither is provably
        guilty, both are requeued uncharged, and the reruns (in
        quarantine solo rounds) complete at attempt 1."""
        async def scenario():
            config = service_config(tmp_path, retry_budget=1)
            barrier = threading.Barrier(2, timeout=10.0)
            died = set()
            lock = threading.Lock()

            def fail(seed, nth):
                with lock:
                    first_time = seed not in died
                    died.add(seed)
                if first_time:
                    barrier.wait()  # both leases in flight at the break
                    raise BrokenProcessPool("pool broke")

            sup = make_supervisor(config, monkeypatch,
                                  fake_runner(fail=fail))
            await sup.start()
            try:
                job, _ = await sup.submit(tiny_request(seeds=(1, 2)), None)
                job = await wait_sealed(sup, job.job_id)
            finally:
                await sup.stop()
            # retry_budget=1: a *charged* reclaim would have been fatal,
            # so sealing proves the cohort reclaim was uncharged.
            assert all(s.status == DONE for s in job.specs)
            acct = sup.table.accounting(job.job_id)
            assert acct["double_charged"] == []
            for spec in job.specs:
                assert spec.done_attempts == {1}  # retried at attempt 1

        asyncio.run(scenario())

    def test_hung_worker_lease_expires(self, tmp_path, monkeypatch):
        """A worker that blows through the hard per-spec ceiling loses
        its lease: the pool is recycled and the spec is charged."""
        async def scenario():
            config = service_config(tmp_path, retry_budget=1,
                                    spec_timeout_s=0.15)
            release = threading.Event()

            def fail(seed, nth):
                if nth == 1:
                    release.wait(10.0)  # hang until the test releases

            sup = make_supervisor(config, monkeypatch,
                                  fake_runner(fail=fail))
            await sup.start()
            try:
                job, _ = await sup.submit(tiny_request(), None)
                job = await wait_sealed(sup, job.job_id)
            finally:
                release.set()
                await sup.stop()
            assert job.specs[0].status == FAILED
            assert "lease expired" in job.specs[0].error

        asyncio.run(scenario())


class TestQueueDiscipline:
    def test_pop_skips_leased_and_inflight_specs(self, tmp_path):
        """A spec that is LEASED (or whose key is in flight) must not be
        schedulable: a duplicate queue item waits instead of running the
        same spec concurrently on two workers."""
        from repro.service.model import expand_specs, spec_to_json
        from repro.service.supervisor import RUN, _Item

        config = service_config(tmp_path)
        journal, table = recover(config.journal_path)
        try:
            sup = Supervisor(config, journal, table,
                             executor_factory=ThreadPoolExecutor)
            request = tiny_request(job="queue-discipline")
            specs = expand_specs(request)
            table.apply({"t": "job", "job": request.job,
                         "request": request.to_json(),
                         "degradation": None,
                         "specs": [spec_to_json(s) for s in specs],
                         "keys": [s.cache_key() for s in specs]})
            sup._queue = [_Item(request.job, 0), _Item(request.job, 0)]
            table.apply({"t": "lease", "job": request.job, "index": 0,
                         "kind": "run", "worker": 0, "attempt": 1})
            assert sup._pop_ready(0.0) is None  # leased: both wait
            assert len(sup._queue) == 2
            table.jobs[request.job].specs[0].lease = None
            assert sup._pop_ready(0.0) is not None  # one copy runs...
            sup._inflight.add((request.job, 0, RUN))
            assert sup._pop_ready(0.0) is None  # ...blocking its twin
        finally:
            journal.close()


class TestSupervisionFailure:
    def test_worker_survives_journal_append_failure(self, tmp_path,
                                                    monkeypatch):
        """An OSError escaping the journal append (disk full) must not
        kill the worker coroutine: the lease is reclaimed uncharged, the
        spec retries, the job still seals, and the failure is counted
        for /healthz."""
        async def scenario():
            config = service_config(tmp_path)
            sup = make_supervisor(config, monkeypatch, fake_runner())
            real_append = sup.journal.append
            tripped = []

            def flaky_append(record, durable=False):
                if record.get("t") == "done" and not tripped:
                    tripped.append(record)
                    raise OSError("disk full")
                real_append(record, durable)

            sup.journal.append = flaky_append
            await sup.start()
            try:
                job, _ = await sup.submit(tiny_request(), None)
                job = await wait_sealed(sup, job.job_id)
            finally:
                await sup.stop()
            assert tripped
            assert sup.supervision_errors == 1
            assert job.seal_status == "proven"
            acct = sup.table.accounting(job.job_id)
            assert acct["double_charged"] == []
            assert acct["unaccounted"] == []

        asyncio.run(scenario())


class TestBackoff:
    def test_backoff_grows_and_caps(self, tmp_path):
        config = service_config(tmp_path, backoff_base_s=0.25,
                                backoff_cap_s=2.0, jitter=0.0)
        journal, table = recover(config.journal_path)
        try:
            sup = Supervisor(config, journal, table,
                             executor_factory=ThreadPoolExecutor)
            delays = [sup._backoff(attempt) for attempt in range(1, 8)]
            assert delays[0] == 0.25
            assert delays == sorted(delays)
            assert max(delays) == 2.0
        finally:
            journal.close()

    def test_jitter_is_deterministic_per_instance(self, tmp_path):
        config = service_config(tmp_path, jitter=0.5)
        journal, table = recover(config.journal_path)
        try:
            mk = lambda: Supervisor(  # noqa: E731
                config, journal, table,
                executor_factory=ThreadPoolExecutor)
            a = [mk()._backoff(n) for n in range(1, 6)]
            b = [mk()._backoff(n) for n in range(1, 6)]
            assert a == b
            assert all(d >= config.backoff_base_s for d in a[:1])
        finally:
            journal.close()


class TestCrashResume:
    def test_restart_resumes_without_recharging(self, tmp_path,
                                                monkeypatch):
        """Stop the supervisor after the first spec completes, recover a
        fresh one from the same journal: only the unfinished spec runs
        again, nothing is double-charged, and the sealed envelope's
        identity matches an uninterrupted run's bit for bit."""
        async def interrupted():
            config = service_config(tmp_path)
            first_done = asyncio.Event()
            calls = []

            sup = make_supervisor(config, monkeypatch, fake_runner(calls))
            queue = None
            await sup.start()
            request = tiny_request(seeds=(1, 2), job="resume-me")
            try:
                job, _ = await sup.submit(request, None)
                queue = sup.subscribe(job.job_id)
                while True:
                    event = await asyncio.wait_for(queue.get(), 10.0)
                    if event.get("event") == "spec_done":
                        first_done.set()
                        break
            finally:
                await sup.stop()  # "crash": abandon everything in flight

            runs_before = [c for c in calls if not c[1]]
            assert len(runs_before) >= 1

            sup2 = make_supervisor(config, monkeypatch,
                                   fake_runner(calls))
            await sup2.start()
            try:
                job = await wait_sealed(sup2, request.job)
            finally:
                await sup2.stop()
            acct = sup2.table.accounting(request.job)
            assert acct["double_charged"] == []
            assert acct["unaccounted"] == []
            assert job.seal_status == "proven"
            return read_envelope(config, request.job)

        async def uninterrupted():
            config = service_config(tmp_path, journal_dir=str(
                tmp_path / "control"))
            sup = make_supervisor(config, monkeypatch, fake_runner())
            await sup.start()
            request = tiny_request(seeds=(1, 2), job="resume-me")
            try:
                await sup.submit(request, None)
                await wait_sealed(sup, request.job)
            finally:
                await sup.stop()
            return read_envelope(config, request.job)

        resumed = asyncio.run(interrupted())
        control = asyncio.run(uninterrupted())
        assert envelope_identity(resumed) == envelope_identity(control)
        assert resumed["identity_digest"] == control["identity_digest"]

    def test_recovery_reenqueues_at_max_attempt(self, tmp_path,
                                                monkeypatch):
        """A restart is not the spec's fault: the re-enqueued item keeps
        the highest journaled attempt number instead of consuming a new
        budget slot, so repeated server kills can never exhaust a spec's
        retry budget."""
        async def scenario():
            config = service_config(tmp_path, retry_budget=1)
            journal, table = recover(config.journal_path)
            request = tiny_request(job="kill-cycle")
            # Hand-journal a submission whose one spec was leased (at its
            # only budgeted attempt) when the server died.
            from repro.service.model import expand_specs, spec_to_json
            specs = expand_specs(request)
            journal.append({"t": "job", "job": request.job,
                            "request": request.to_json(),
                            "degradation": None,
                            "specs": [spec_to_json(s) for s in specs],
                            "keys": [s.cache_key() for s in specs]},
                           durable=True)
            journal.append({"t": "lease", "job": request.job, "index": 0,
                            "kind": "run", "worker": 0, "attempt": 1},
                           durable=True)
            journal.close()

            monkeypatch.setattr(supervisor_mod, "_pool_run_spec",
                                fake_runner())
            monkeypatch.setattr(supervisor_mod, "load_cached",
                                lambda spec: FakeResult(spec.seed))
            journal2, table2 = recover(config.journal_path)
            sup = Supervisor(config, journal2, table2,
                             executor_factory=lambda: ThreadPoolExecutor(
                                 max_workers=2))
            await sup.start()
            try:
                job = await wait_sealed(sup, request.job)
            finally:
                await sup.stop()
            # Budget is 1 and attempt 1 was already journaled; sealing
            # proven means the restart re-ran it uncharged.
            assert job.seal_status == "proven"
            assert job.specs[0].status == DONE

        asyncio.run(scenario())
