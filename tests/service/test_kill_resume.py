"""Kill-resume chaos: SIGKILL worker and server at hypothesis-chosen
points, restart, and prove nothing was lost or double-charged.

The service runs as a real subprocess (``python -m repro.service
serve``); kills are real ``SIGKILL`` (no cleanup handlers run).  After
restarting on the same journal directory the campaign must seal with

* zero lost specs (all accounted: done or failed — here, all done),
* zero double-charged specs (no spec executed-and-charged twice),
* a result envelope whose identity section is bit-identical to an
  uninterrupted control run's.

When ``REPRO_SERVICE_ARTIFACTS`` names a directory, the journal and
sealed envelope of the last scenario are copied there (the CI service
job uploads them).
"""

import http.client
import json
import os
import shutil
import signal
import socket
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.journal import JobTable, scan_journal
from repro.service.model import envelope_identity

SRC = str(Path(__file__).resolve().parents[2] / "src")


def free_port():
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def start_server(port, journal_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC
    return subprocess.Popen(
        [sys.executable, "-m", "repro.service", "serve",
         "--port", str(port), "--journal-dir", journal_dir,
         "--workers", "1", "--heartbeat-s", "0.05",
         "--spec-timeout-s", "60", "--audit-fraction", "1.0", "--fast"],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)


def request(port, method, path, payload=None, timeout=30.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    body = json.dumps(payload).encode() if payload is not None else None
    conn.request(method, path, body=body,
                 headers={"X-Client": "chaos"})
    response = conn.getresponse()
    blob = response.read()
    conn.close()
    return response.status, json.loads(blob.decode() or "null")


def wait_healthy(port, timeout=30.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            status, body = request(port, "GET", "/healthz", timeout=2.0)
            if status == 200:
                return body
        except OSError:
            pass
        time.sleep(0.1)
    raise AssertionError("server did not come up")


def wait_worker_pids(port, timeout=20.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            _, body = request(port, "GET", "/healthz", timeout=2.0)
            if body.get("worker_pids"):
                return body["worker_pids"]
        except OSError:
            pass
        time.sleep(0.05)
    return []


def wait_sealed(port, job_id, timeout=120.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        try:
            status, body = request(port, "GET", f"/jobs/{job_id}",
                                   timeout=5.0)
        except OSError:
            time.sleep(0.2)
            continue
        if status == 200 and body["sealed"]:
            return body
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} did not seal")


def campaign_payload(seeds):
    return {
        "benchmarks": ["blackscholes"],
        "mechanisms": ["Baseline"],
        "seeds": list(seeds),
        "trace_cycles": 400,
        "warmup": 100,
        "measure": 100,
    }


def run_to_seal(journal_dir, payload, chaos=None):
    """Serve, submit, (optionally apply ``chaos(port, server)``), make
    sure the job seals — restarting the server if chaos killed it — and
    return the sealed envelope.  Always reaps the server."""
    port = free_port()
    server = start_server(port, journal_dir)
    try:
        wait_healthy(port)
        status, body = request(port, "POST", "/jobs", payload)
        assert status in (200, 202), body
        job_id = body["job"]
        if chaos is not None:
            server = chaos(port, server)
            if server is None:  # server was SIGKILLed: restart on the
                port = free_port()  # same journal, different port
                server = start_server(port, journal_dir)
                wait_healthy(port)
        wait_sealed(port, job_id)
        status, envelope = request(port, "GET",
                                   f"/jobs/{job_id}/envelope")
        assert status == 200
        return envelope
    finally:
        if server.poll() is None:
            server.terminate()
            try:
                server.wait(timeout=15)
            except subprocess.TimeoutExpired:
                server.kill()
                server.wait(timeout=15)


def assert_exactly_once(envelope):
    acct = envelope["accounting"]
    assert acct["double_charged"] == [], \
        f"specs charged twice: {acct['double_charged']}"
    assert acct["unaccounted"] == [], \
        f"specs lost: {acct['unaccounted']}"
    assert acct["failed"] == []
    assert envelope["status"] == "proven"
    # Every spec produced a result exactly once (a cache hit absorbs a
    # crash that landed between execute and journal).
    assert len(envelope["results"]) == acct["specs"]
    assert all("outputs" in row for row in envelope["results"])


def export_artifacts(journal_dir, envelope):
    target = os.environ.get("REPRO_SERVICE_ARTIFACTS")
    if not target:
        return
    os.makedirs(target, exist_ok=True)
    for entry in Path(journal_dir).iterdir():
        shutil.copy2(entry, Path(target) / entry.name)
    with open(Path(target) / "sealed_envelope.json", "w") as fh:
        json.dump(envelope, fh, indent=2, sort_keys=True)


@settings(max_examples=2, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(worker_kill_delay=st.floats(min_value=0.05, max_value=0.7),
       server_kill_delay=st.floats(min_value=0.05, max_value=0.5),
       seed_base=st.integers(min_value=100, max_value=10 ** 6))
def test_sigkill_worker_then_server_resumes_exactly_once(
        worker_kill_delay, server_kill_delay, seed_base):
    """SIGKILL a pool worker mid-run, then SIGKILL the whole server, at
    hypothesis-chosen delays; restart; the campaign seals with every
    spec executed-and-charged exactly once and an envelope bit-identical
    to an uninterrupted run's."""
    seeds = [seed_base, seed_base + 1, seed_base + 2]
    payload = campaign_payload(seeds)
    chaos_dir = tempfile.mkdtemp(prefix="svc-chaos-")
    control_dir = tempfile.mkdtemp(prefix="svc-control-")
    try:
        def chaos(port, server):
            time.sleep(worker_kill_delay)
            for pid in wait_worker_pids(port, timeout=5.0):
                try:
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass  # worker exited already: the race is the test
            time.sleep(server_kill_delay)
            server.kill()  # SIGKILL: no graceful teardown of any kind
            server.wait(timeout=15)
            return None  # caller restarts on the same journal

        resumed = run_to_seal(chaos_dir, payload, chaos=chaos)
        assert_exactly_once(resumed)

        # The journal that survived two SIGKILLs must replay
        # idempotently into the exact state the envelope reports.
        scan = scan_journal(Path(chaos_dir) / "service.journal")
        once, twice = JobTable(), JobTable()
        once.replay(scan.records)
        twice.replay(scan.records)
        twice.replay(scan.records)
        assert once.snapshot() == twice.snapshot()

        control = run_to_seal(control_dir, payload)
        assert_exactly_once(control)
        assert envelope_identity(resumed) == envelope_identity(control)
        assert resumed["identity_digest"] == control["identity_digest"]

        export_artifacts(chaos_dir, resumed)
    finally:
        shutil.rmtree(chaos_dir, ignore_errors=True)
        shutil.rmtree(control_dir, ignore_errors=True)


def test_sigterm_drains_gracefully():
    """SIGTERM (as a service manager sends) must stop the server cleanly:
    the process exits promptly and the journal replays consistently."""
    journal_dir = tempfile.mkdtemp(prefix="svc-term-")
    try:
        port = free_port()
        server = start_server(port, journal_dir)
        try:
            wait_healthy(port)
            status, body = request(
                port, "POST", "/jobs",
                campaign_payload([7001, 7002]))
            assert status == 202
            server.terminate()  # SIGTERM
            server.wait(timeout=30)
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=15)
        # The journal survives and replays; the job record (acknowledged
        # durably before the 202) must be present.
        scan = scan_journal(Path(journal_dir) / "service.journal")
        table = JobTable()
        table.replay(scan.records)
        assert body["job"] in table.jobs
        # Whatever was in flight is recoverable, not corrupt.
        table.finish_recovery()
        for spec in table.jobs[body["job"]].specs:
            assert spec.lease is None
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
