"""Shared fixtures for the APPROX-NoC test suite."""

import pytest

from repro.core.block import CacheBlock
from repro.harness.parallel import CACHE_DIR_ENV


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_cache(tmp_path_factory, request):
    """Point the on-disk result cache at a per-session temp dir so tests
    never read entries produced by other checkouts (or stale code)."""
    mp = pytest.MonkeyPatch()
    mp.setenv(CACHE_DIR_ENV,
              str(tmp_path_factory.mktemp("repro_cache")))
    request.addfinalizer(mp.undo)


@pytest.fixture
def int_block():
    """A representative approximable integer block."""
    return CacheBlock.from_ints(
        [0, 0, 5, -5, 127, -128, 1000, -1000,
         65536, 70000, 12345, -12345, 9, 9, 2**30, -2**30],
        approximable=True)


@pytest.fixture
def float_block():
    """A representative approximable float block."""
    return CacheBlock.from_floats(
        [0.0, 1.0, 1.5, -2.25, 3.14159, 100.5, -0.001, 1e10,
         2.0, 2.001, 4.0, -4.0, 0.5, 8.125, 1234.5, -777.25],
        approximable=True)
