"""Tests for the approximation channel."""

import numpy as np
import pytest

from repro.apps.channel import ApproxChannel, IdentityChannel
from repro.compression import BaselineScheme
from repro.core import DiVaxxScheme, FpVaxxScheme


class TestIdentityChannel:
    def test_floats_quantized_to_float32(self):
        channel = IdentityChannel()
        values = np.array([1 / 3, 2 / 3])
        out = channel.transform_floats(values)
        assert out[0] == np.float32(1 / 3)

    def test_ints_untouched(self):
        channel = IdentityChannel()
        values = np.array([1, -5, 70000])
        assert (channel.transform_ints(values) == values).all()


class TestApproxChannel:
    def test_baseline_scheme_is_exact_modulo_float32(self):
        channel = ApproxChannel(BaselineScheme(8))
        values = np.linspace(-5, 5, 37)
        out = channel.transform_floats(values)
        assert (out == values.astype(np.float32).astype(np.float64)).all()

    def test_shape_preserved(self):
        channel = ApproxChannel(BaselineScheme(8))
        values = np.arange(24, dtype=np.float64).reshape(4, 6)
        assert channel.transform_floats(values).shape == (4, 6)

    def test_int_range_validated(self):
        channel = ApproxChannel(BaselineScheme(8))
        with pytest.raises(ValueError):
            channel.transform_ints(np.array([2**40]))

    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            ApproxChannel(BaselineScheme(1))

    def test_fp_vaxx_error_bounded(self):
        channel = ApproxChannel(FpVaxxScheme(8, error_threshold_pct=10))
        values = np.array([70000 + i for i in range(64)], dtype=np.int64)
        out = channel.transform_ints(values)
        rel = np.abs(out - values) / values
        assert rel.max() <= 0.4  # paper-mode slack over the nominal 10%

    def test_non_approximable_is_exact(self):
        channel = ApproxChannel(FpVaxxScheme(8, error_threshold_pct=20))
        values = np.array([70000 + i for i in range(64)], dtype=np.int64)
        out = channel.transform_ints(values, approximable=False)
        assert (out == values).all()

    def test_pair_mapping_is_positional(self):
        channel = ApproxChannel(BaselineScheme(8))
        assert channel._pair_for(0) == (0, 1)
        assert channel._pair_for(8) == (0, 1)
        assert channel._pair_for(7) == (7, 0)

    def test_dictionary_learns_across_rereads(self):
        """Re-reading the same array repeatedly becomes compressible."""
        scheme = DiVaxxScheme(16, error_threshold_pct=10,
                              detect_threshold=2)
        channel = ApproxChannel(scheme)
        values = np.array([1000.5] * 256)
        for _ in range(4):
            channel.transform_floats(values)
        assert scheme.quality.encoded_fraction > 0.2
