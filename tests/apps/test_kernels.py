"""Tests for the application kernels (correctness + error behaviour)."""


import numpy as np
import pytest

from repro.apps import blackscholes, bodytrack, canneal, fluidanimate
from repro.apps import ssca2, streamcluster, swaptions, x264
from repro.apps.channel import IdentityChannel
from repro.apps.suite import APP_RUNNERS, run_app
from repro.core import DiVaxxScheme, FpVaxxScheme


class TestBlackscholes:
    def test_put_call_parity(self):
        portfolio = blackscholes.generate_portfolio(64)
        prices = blackscholes.price(portfolio)
        # spot-check one option against a hand-computed value
        assert (prices >= -1e-9).all()

    def test_known_value(self):
        """S=100, K=100, r=5%, v=20%, T=1: call = 10.4506 (textbook)."""
        portfolio = blackscholes.OptionPortfolio(
            spot=np.array([100.0]), strike=np.array([100.0]),
            rate=np.array([0.05]), volatility=np.array([0.2]),
            expiry=np.array([1.0]), is_call=np.array([True]))
        price = blackscholes.price(portfolio)[0]
        assert price == pytest.approx(10.4506, abs=2e-3)

    def test_deterministic(self):
        p1 = blackscholes.price(blackscholes.generate_portfolio(32))
        p2 = blackscholes.price(blackscholes.generate_portfolio(32))
        assert (p1 == p2).all()

    def test_error_zero_without_approximation(self):
        portfolio = blackscholes.generate_portfolio(32)
        a = blackscholes.price(portfolio, IdentityChannel())
        b = blackscholes.price(portfolio, IdentityChannel())
        assert blackscholes.output_error(a, b) == 0.0


class TestSsca2:
    def test_bc_matches_networkx(self):
        networkx = pytest.importorskip("networkx")
        adjacency = ssca2.generate_rmat_graph(32, 96, seed=2)
        ours = ssca2.betweenness_centrality(adjacency)
        graph = networkx.Graph()
        graph.add_nodes_from(range(32))
        for u, neighbors in enumerate(adjacency):
            for v in neighbors:
                graph.add_edge(u, v)
        reference = networkx.betweenness_centrality(graph, normalized=False)
        for vertex in range(32):
            # rel tolerance absorbs the channel's float32 quantization
            assert ours[vertex] == pytest.approx(reference[vertex],
                                                 rel=1e-5, abs=1e-6)

    def test_rmat_power_of_two_required(self):
        with pytest.raises(ValueError):
            ssca2.generate_rmat_graph(100, 200)

    def test_rmat_no_self_loops(self):
        adjacency = ssca2.generate_rmat_graph(64, 128, seed=3)
        for vertex, neighbors in enumerate(adjacency):
            assert vertex not in neighbors

    def test_path_graph_bc(self):
        # path 0-1-2: only vertex 1 lies on a shortest path
        adjacency = [[1], [0, 2], [1]]
        bc = ssca2.betweenness_centrality(adjacency)
        assert bc[0] == pytest.approx(0.0)
        assert bc[1] == pytest.approx(1.0)
        assert bc[2] == pytest.approx(0.0)


class TestStreamcluster:
    def test_cost_positive(self):
        points = streamcluster.generate_points(100)
        result = streamcluster.cluster(points, k=4)
        assert result.cost > 0
        assert len(result.assignment) == 100

    def test_clusters_found(self):
        """Well-separated blobs should be clustered near-optimally."""
        points = streamcluster.generate_points(200, n_clusters=4, seed=1)
        result = streamcluster.cluster(points, k=4, iterations=10)
        # mean distance to assigned center should be close to blob sigma
        mean_distance = result.cost / len(points)
        assert mean_distance < 15


class TestBodytrack:
    def test_track_follows_blob(self):
        frames = bodytrack.generate_frames(10, 48, seed=4)
        result = bodytrack.track(frames)
        # the blob walks right/down; the track should, too
        assert result.track[-1][0] > result.track[0][0]

    def test_frame_psnr_identical_is_infinite(self):
        frame = bodytrack.generate_frames(1, 32)[0]
        assert bodytrack.frame_psnr(frame, frame) == float("inf")

    def test_error_zero_on_identical_runs(self):
        frames = bodytrack.generate_frames(6, 32)
        a = bodytrack.track(frames)
        b = bodytrack.track(frames)
        assert bodytrack.output_error(a, b) == 0.0


class TestCanneal:
    def test_annealing_reduces_wire_length(self):
        netlist = canneal.generate_netlist(100, 250, seed=5)
        before = canneal.wire_length(netlist.positions, netlist.nets)
        after_positions = canneal.anneal(netlist, sweeps=20)
        after = canneal.wire_length(after_positions, netlist.nets)
        assert after < before


class TestFluidanimate:
    def test_particles_stay_in_domain(self):
        positions, velocities = fluidanimate.generate_particles(80)
        final = fluidanimate.simulate(positions, velocities, steps=15)
        assert (final >= -1e-6).all()
        assert (final <= fluidanimate.DOMAIN + 1e-6).all()

    def test_gravity_pulls_down(self):
        positions, velocities = fluidanimate.generate_particles(80)
        final = fluidanimate.simulate(positions, velocities, steps=10)
        assert final[:, 1].mean() < positions[:, 1].mean()


class TestX264:
    def test_motion_estimation_recovers_shift(self):
        reference, current = x264.generate_frame_pair(48, seed=6)
        prediction = x264.motion_estimate(reference, current, search=5)
        quality = x264.psnr(prediction, current)
        # np.roll wraps at the frame edges, so border blocks cannot be
        # matched perfectly; 20 dB still indicates the shift was found.
        assert quality > 20

    def test_psnr_identical(self):
        frame = np.full((8, 8), 100)
        assert x264.psnr(frame, frame) == float("inf")


class TestSuite:
    def test_all_apps_registered(self):
        assert set(APP_RUNNERS) == {
            "blackscholes", "bodytrack", "canneal", "fluidanimate",
            "streamcluster", "swaptions", "x264", "ssca2"}

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            run_app("doom", None)

    def test_exact_scheme_zero_error(self):
        for name in ("blackscholes", "swaptions", "ssca2"):
            assert run_app(name, None) == 0.0

    @pytest.mark.parametrize("name", sorted(APP_RUNNERS))
    def test_error_under_20pct_budget_is_finite_and_sane(self, name):
        scheme = FpVaxxScheme(n_nodes=32, error_threshold_pct=20)
        error = run_app(name, scheme)
        assert 0.0 <= error < 1.0

    def test_streamcluster_error_grows_with_budget(self):
        """The paper's §5.4 observation: streamcluster's output error can
        exceed the data budget because approximated coordinates mismatch
        centers."""
        errors = []
        for threshold in (5, 20):
            scheme = DiVaxxScheme(n_nodes=32, error_threshold_pct=threshold,
                                  detect_threshold=2)
            errors.append(run_app("streamcluster", scheme))
        assert errors[1] > errors[0]
