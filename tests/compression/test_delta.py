"""Tests for base-delta compression and its VAXX coupling."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.delta import (
    BdCompScheme,
    BdVaxxScheme,
    DELTA_WIDTHS,
    _clamp_to_width,
    _fits,
)
from repro.core.block import CacheBlock


class TestPrimitives:
    def test_fits_boundaries(self):
        assert _fits(7, 4) and _fits(-8, 4)
        assert not _fits(8, 4) and not _fits(-9, 4)

    def test_clamp(self):
        assert _clamp_to_width(1000, 0, 8) == 127
        assert _clamp_to_width(-1000, 0, 8) == -128
        assert _clamp_to_width(50, 0, 8) == 50


class TestBdComp:
    def test_narrow_deltas_compress(self):
        block = CacheBlock.from_ints([1000, 1001, 999, 1005])
        scheme = BdCompScheme(2)
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words
        # 2 selector + 32 base + 3 x 4-bit deltas
        assert encoded.size_bits == 2 + 32 + 3 * 4

    def test_width_escalation(self):
        block = CacheBlock.from_ints([1000, 1100, 900, 1000])
        scheme = BdCompScheme(2)
        _, encoded = scheme.roundtrip(block, 0, 1)
        assert encoded.size_bits == 2 + 32 + 3 * 8

    def test_wide_deltas_ship_raw(self):
        block = CacheBlock.from_ints([0, 10_000_000, -10_000_000, 5])
        scheme = BdCompScheme(2)
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words
        assert encoded.size_bits == 4 * 32

    def test_single_word_block(self):
        block = CacheBlock.from_ints([42])
        scheme = BdCompScheme(2)
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_exactness_property(self, values):
        scheme = BdCompScheme(2)
        block = CacheBlock.from_ints(values)
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words
        assert encoded.size_bits <= 32 * len(values)


class TestBdVaxx:
    def test_approximation_rescues_outliers(self):
        """Words past the delta range get nudged into the narrowest width
        the masks admit — here every delta squeezes into 4 bits."""
        block = CacheBlock.from_ints([100000, 100010, 100140, 99990],
                                     approximable=True)
        exact = BdCompScheme(2)
        vaxx = BdVaxxScheme(2, error_threshold_pct=10)
        _, enc_exact = exact.roundtrip(block, 0, 1)
        out, enc_vaxx = vaxx.roundtrip(block, 0, 1)
        assert enc_vaxx.size_bits < enc_exact.size_bits
        assert enc_vaxx.size_bits == 2 + 32 + 3 * 4
        # each delivered word is the clamp of the original into [b-8, b+7]
        assert out.as_ints() == [100000, 100007, 100007, 99992]

    def test_error_within_mask(self):
        block = CacheBlock.from_ints([100000, 100140], approximable=True)
        vaxx = BdVaxxScheme(2, error_threshold_pct=10)
        out, _ = vaxx.roundtrip(block, 0, 1)
        for precise, approx in zip(block.as_ints(), out.as_ints()):
            assert abs(approx - precise) <= 4 * abs(precise) * 0.10 + 1

    def test_non_approximable_stays_exact(self):
        block = CacheBlock.from_ints([100000, 100140], approximable=False)
        vaxx = BdVaxxScheme(2, error_threshold_pct=10)
        out, _ = vaxx.roundtrip(block, 0, 1)
        assert out.words == block.words

    def test_prefers_exact_when_same_size(self):
        block = CacheBlock.from_ints([1000, 1001, 1002], approximable=True)
        vaxx = BdVaxxScheme(2, error_threshold_pct=20)
        out, _ = vaxx.roundtrip(block, 0, 1)
        assert out.words == block.words  # exact 4-bit deltas already fit

    def test_scheme_name(self):
        assert BdVaxxScheme(2).name == "BD-VAXX"
        assert BdCompScheme(2).name == "BD-COMP"

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_error_bound_property(self, values):
        vaxx = BdVaxxScheme(2, error_threshold_pct=10)
        block = CacheBlock.from_ints(values, approximable=True)
        out, _ = vaxx.roundtrip(block, 0, 1)
        for precise, approx in zip(block.as_ints(), out.as_ints()):
            assert abs(approx - precise) <= 4 * abs(precise) * 0.10 + 1
