"""Tests for the Baseline / FP-COMP schemes and block-level assembly."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import fpc
from repro.compression.base import packet_flits
from repro.compression.schemes import (
    BaselineScheme,
    FpCompScheme,
    assemble_fpc_words,
)
from repro.core.block import CacheBlock


class TestPacketFlits:
    def test_uncompressed_64_byte_block(self):
        # 64B payload over 8B flits: 8 body flits + 1 head = 9 (§3.1 model)
        assert packet_flits(64) == 9

    def test_empty_payload_is_head_only(self):
        assert packet_flits(0) == 1

    def test_internal_fragmentation(self):
        # 17 bytes still needs 3 body flits (§5.2.1)
        assert packet_flits(17) == 4

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            packet_flits(-1)
        with pytest.raises(ValueError):
            packet_flits(8, flit_bytes=0)


class TestBaseline:
    def test_size_is_identity(self):
        scheme = BaselineScheme(n_nodes=2)
        block = CacheBlock.from_ints(range(16))
        encoded = scheme.node(0).encode(block, 1)
        assert encoded.size_bits == 512
        assert encoded.compression_ratio == 1.0

    def test_roundtrip_exact(self):
        scheme = BaselineScheme(n_nodes=2)
        block = CacheBlock.from_ints([1, -2, 3])
        out, _ = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words

    def test_no_codec_latency(self):
        assert BaselineScheme.compression_cycles == 0
        assert BaselineScheme.decompression_cycles == 0


class TestZeroRunAssembly:
    def _zero_match(self):
        cls = fpc.COMPRESSIBLE_CLASSES[0]
        return (0, cls, 0, False)

    def test_single_zero_costs_prefix_plus_runlength(self):
        words, bits = assemble_fpc_words([self._zero_match()])
        assert bits == 6
        assert words[0].compressed

    def test_run_of_zeros_costs_one_header(self):
        words, bits = assemble_fpc_words([self._zero_match()] * 8)
        assert bits == 6  # one run header covers up to 8 words

    def test_run_longer_than_8_starts_new_run(self):
        words, bits = assemble_fpc_words([self._zero_match()] * 9)
        assert bits == 12

    def test_interrupted_run_restarts(self):
        cls4, cand = fpc.match_exact(5)
        matches = [self._zero_match(), (5, cls4, cand, False),
                   self._zero_match()]
        _, bits = assemble_fpc_words(matches)
        assert bits == 6 + (3 + 4) + 6


class TestFpComp:
    def test_all_zero_block(self):
        scheme = FpCompScheme(n_nodes=2)
        block = CacheBlock.from_ints([0] * 16)
        encoded = scheme.node(0).encode(block, 1)
        # two runs of 8 zeros
        assert encoded.size_bits == 12
        assert encoded.compression_ratio == pytest.approx(512 / 12)

    def test_incompressible_block_falls_back_to_raw(self):
        """Prefix overhead would expand the block, so it ships raw + flag."""
        scheme = FpCompScheme(n_nodes=2)
        block = CacheBlock((0xDEADBEEF, 0xCAFEBABE))
        encoded = scheme.node(0).encode(block, 1)
        assert encoded.size_bits == 2 * 32

    def test_roundtrip_exact(self, int_block):
        scheme = FpCompScheme(n_nodes=2)
        out, _ = scheme.roundtrip(int_block, 0, 1)
        assert out.words == int_block.words

    def test_stats_accumulate(self):
        scheme = FpCompScheme(n_nodes=2)
        block = CacheBlock.from_ints([0] * 4)
        scheme.node(0).encode(block, 1)
        scheme.node(0).encode(block, 1)
        assert scheme.stats.blocks_encoded == 2
        assert scheme.stats.input_bits == 2 * 128

    def test_node_identity_cached(self):
        scheme = FpCompScheme(n_nodes=2)
        assert scheme.node(0) is scheme.node(0)

    def test_node_range_checked(self):
        scheme = FpCompScheme(n_nodes=2)
        with pytest.raises(ValueError):
            scheme.node(2)

    @given(st.lists(st.integers(0, 0xFFFFFFFF), min_size=1, max_size=16))
    @settings(max_examples=50, deadline=None)
    def test_exactness_property(self, patterns):
        scheme = FpCompScheme(n_nodes=2)
        block = CacheBlock(tuple(patterns))
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert out.words == block.words
        # raw fallback caps the NR at the uncompressed block size
        assert encoded.size_bits <= 32 * len(patterns)
