"""Tests for the adaptive compression controller."""

import pytest

from repro.compression.adaptive import AdaptiveScheme
from repro.compression.schemes import FpCompScheme
from repro.core import CacheBlock, FpVaxxScheme
from repro.util.rng import DeterministicRng


def compressible_block():
    return CacheBlock.from_ints([0, 0, 3, -5, 100, 7, 0, 0] * 2)


def incompressible_block(rng):
    return CacheBlock(tuple(rng.randbits(32) | 0x40000000
                            for _ in range(16)))


def make_scheme(**kw):
    return AdaptiveScheme(FpCompScheme(4), window=8, probe_period=4, **kw)


class TestControl:
    def test_starts_enabled(self):
        scheme = make_scheme()
        assert scheme.node(0).enabled

    def test_stays_on_for_compressible_traffic(self):
        scheme = make_scheme()
        node = scheme.node(0)
        for _ in range(40):
            node.encode(compressible_block(), 1)
        assert node.enabled
        assert scheme.stats.compression_ratio > 1.5

    def test_turns_off_on_incompressible_traffic(self):
        scheme = make_scheme()
        node = scheme.node(0)
        rng = DeterministicRng(1)
        for _ in range(40):
            node.encode(incompressible_block(rng), 1)
        assert not node.enabled
        assert scheme.toggles() >= 1

    def test_off_blocks_skip_codec_latency(self):
        scheme = make_scheme()
        node = scheme.node(0)
        rng = DeterministicRng(2)
        for _ in range(40):
            encoded = node.encode(incompressible_block(rng), 1)
        # not a probe block -> raw path with zero codec latency
        raw = [node.encode(incompressible_block(rng), 1)
               for _ in range(scheme.probe_period - 1)]
        assert any(e.compression_cycles == 0 for e in raw)

    def test_probing_turns_back_on(self):
        scheme = make_scheme()
        node = scheme.node(0)
        rng = DeterministicRng(3)
        for _ in range(40):
            node.encode(incompressible_block(rng), 1)
        assert not node.enabled
        for _ in range(200):
            node.encode(compressible_block(), 1)
        assert node.enabled

    def test_roundtrip_exact_in_both_states(self):
        scheme = make_scheme()
        rng = DeterministicRng(4)
        for _ in range(60):
            block = incompressible_block(rng)
            out, _ = scheme.roundtrip(block, 0, 1)
            assert out.words == block.words
        for _ in range(60):
            block = compressible_block()
            out, _ = scheme.roundtrip(block, 0, 1)
            assert out.words == block.words

    def test_wraps_vaxx_too(self):
        scheme = AdaptiveScheme(FpVaxxScheme(4, error_threshold_pct=10),
                                window=8)
        block = CacheBlock.from_ints([70000] * 16, approximable=True)
        out, encoded = scheme.roundtrip(block, 0, 1)
        assert any(w.approximated for w in encoded.words)

    def test_name(self):
        assert make_scheme().name == "Adaptive(FP-COMP)"

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveScheme(FpCompScheme(4), window=1)
        with pytest.raises(ValueError):
            AdaptiveScheme(FpCompScheme(4), min_gain=0.0)
        with pytest.raises(ValueError):
            AdaptiveScheme(FpCompScheme(4), probe_period=0)
