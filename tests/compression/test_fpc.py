"""Tests for the frequent pattern table (Figure 5) and masked matching."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.compression import fpc
from repro.util.bitops import to_unsigned

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
MASKS = st.integers(min_value=0, max_value=23).map(lambda k: (1 << k) - 1)


class TestExactClasses:
    @pytest.mark.parametrize("value,code", [
        (0, 0b000),
        (7, 0b001),
        (-8, 0b001),
        (100, 0b010),
        (-128, 0b010),
        (30000, 0b011),
        (-30000, 0b011),
        (0x12340000, 0b100),
        (0x00450067, 0b101),   # two halfwords, each a byte sign-extended
        (0xDEADBEEF, 0b111),
    ])
    def test_priority_assignment(self, value, code):
        cls, candidate = fpc.match_exact(to_unsigned(value))
        assert cls.code == code
        assert candidate == to_unsigned(value)

    def test_zero_beats_all(self):
        cls, _ = fpc.match_exact(0)
        assert cls.name == "zero-run"

    def test_halfword_negative_halves(self):
        # high half 0xFF80 (-128 as halfword), low half 0x007F (127)
        cls, _ = fpc.match_exact(0xFF80007F)
        assert cls.code == 0b101

    @given(WORDS)
    def test_exact_match_preserves_word(self, word):
        _cls, candidate = fpc.match_exact(word)
        assert candidate == word

    @given(WORDS)
    def test_some_class_always_matches(self, word):
        cls, _ = fpc.match_exact(word)
        assert cls.code in (0b000, 0b001, 0b010, 0b011, 0b100, 0b101, 0b111)


class TestApproxMatching:
    def test_near_zero_matches_zero(self):
        # 3 with 2 don't-care bits is approximately zero
        cls, candidate = fpc.match_approx(3, mask=0b11)
        assert cls.code == 0b000
        assert candidate == 0

    def test_not_near_zero(self):
        cls, candidate = fpc.match_approx(4, mask=0b11)
        assert cls.code != 0b000

    def test_near_multiple_of_2_16(self):
        # 70000 = 0x11170; with a 14-bit mask the block reaches 0x10000
        cls, candidate = fpc.match_approx(70000, mask=(1 << 14) - 1)
        assert candidate == 0x10000
        assert cls.code in (0b011, 0b100)  # 0x10000 is not halfword-signed

    def test_candidate_stays_in_block(self):
        word = 12345
        mask = (1 << 6) - 1
        cls, candidate = fpc.match_approx(word, mask)
        assert (candidate & ~mask) == (word & ~mask)

    def test_priority_rule_prefers_higher_class(self):
        # 8 with 3 don't-care bits: zero (priority 0) wins even though 8
        # matches 4-bit-sign-extended... it doesn't (8 > 7), but it matches
        # byte-sign-extended exactly; the zero class still wins.
        cls, candidate = fpc.match_approx(8, mask=0b1111)
        assert cls.code == 0b000
        assert candidate == 0

    def test_zero_mask_equals_exact(self):
        for word in (0, 5, 1000, 0xDEADBEEF, to_unsigned(-77)):
            assert fpc.match_approx(word, 0) == fpc.match_exact(word)

    def test_negative_word_sign_class(self):
        word = to_unsigned(-100)
        cls, candidate = fpc.match_approx(word, mask=0b111)
        assert cls.code == 0b010  # still byte sign-extended
        assert (candidate & ~0b111) == (word & ~0b111)

    @given(WORDS, MASKS)
    def test_candidate_always_within_masked_block(self, word, mask):
        cls, candidate = fpc.match_approx(word, mask)
        assert (candidate & ~mask & 0xFFFFFFFF) == (word & ~mask & 0xFFFFFFFF)

    @given(WORDS, MASKS)
    def test_candidate_is_class_member(self, word, mask):
        cls, candidate = fpc.match_approx(word, mask)
        assert cls.exact_match(candidate)

    @given(WORDS, MASKS)
    def test_approx_never_worse_than_exact(self, word, mask):
        """Masked matching compresses at least as well as exact matching."""
        exact_cls, _ = fpc.match_exact(word)
        approx_cls, _ = fpc.match_approx(word, mask)
        order = [c.code for c in fpc.COMPRESSIBLE_CLASSES] + [0b111]
        assert order.index(approx_cls.code) <= order.index(exact_cls.code)

    @given(WORDS)
    def test_exact_match_is_approx_with_zero_mask(self, word):
        assert fpc.match_approx(word, 0) == fpc.match_exact(word)


class TestHalfwordClasses:
    def test_halfword_padded_exact(self):
        cls = fpc.COMPRESSIBLE_CLASSES[4]
        assert cls.exact_match(0xABCD0000)
        assert not cls.exact_match(0xABCD0001)

    def test_halfword_padded_approx_none_when_unreachable(self):
        cls = fpc.COMPRESSIBLE_CLASSES[4]
        # 0x00018000 with tiny mask cannot reach a multiple of 2^16
        assert cls.approx_match(0x00018000, 0b11) is None

    def test_two_halfwords_requires_both(self):
        cls = fpc.COMPRESSIBLE_CLASSES[5]
        assert cls.exact_match(0x007F0001)
        assert not cls.exact_match(0x0080_0001)

    def test_two_halfwords_approx_low_half_only(self):
        cls = fpc.COMPRESSIBLE_CLASSES[5]
        # high half 0x0001 is byte-sign-extended; low half 0x0085 is not but
        # with a 3-bit mask it can reach 0x80... no: 0x80 > 0x7F. It can't.
        assert cls.approx_match(0x00010085, 0b111) is None
        # 0x0081 with 2 don't-care bits covers [0x80, 0x83] — still > 0x7F,
        # no. With the block [0x80,0x83] there is no sign-extended byte.
        assert cls.approx_match(0x00010081, 0b11) is None
        # 0x0082 with a 3-bit mask covers [0x80, 0x87]: none valid either;
        # but 0x7F lies below the block, so approx must fail. A word whose
        # block *contains* 0x7F succeeds:
        assert cls.approx_match(0x0001007F, 0b11) == 0x0001007F
