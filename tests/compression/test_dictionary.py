"""Tests for DI-COMP: decoder detection, PMT protocol, encoder consistency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import NotificationKind
from repro.compression.dictionary import (
    DiCompScheme,
    DictionaryDecoder,
    PatternDetector,
    index_bits,
)
from repro.core.block import CacheBlock


class TestIndexBits:
    def test_eight_entries_need_three_bits(self):
        assert index_bits(8) == 3

    def test_two_entries(self):
        assert index_bits(2) == 1

    def test_non_power_of_two_rounds_up(self):
        assert index_bits(5) == 3

    def test_rejects_tiny_tables(self):
        with pytest.raises(ValueError):
            index_bits(1)


class TestPatternDetector:
    def test_first_occurrence_not_detected(self):
        detector = PatternDetector(threshold=2)
        assert detector.observe(42) is False

    def test_second_occurrence_detected(self):
        detector = PatternDetector(threshold=2)
        detector.observe(42)
        assert detector.observe(42) is True

    def test_counter_resets_after_detection(self):
        detector = PatternDetector(threshold=2)
        detector.observe(42)
        detector.observe(42)
        assert detector.observe(42) is False

    def test_threshold_one_detects_immediately(self):
        detector = PatternDetector(threshold=1)
        assert detector.observe(7) is True

    def test_capacity_eviction(self):
        detector = PatternDetector(capacity=2, threshold=3)
        detector.observe(1)
        detector.observe(1)
        detector.observe(2)
        detector.observe(3)  # evicts pattern 2 (lower count than 1)
        detector.observe(2)
        assert detector.observe(2) is False  # count restarted

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            PatternDetector(threshold=0)


class TestDictionaryDecoder:
    def test_promotion_emits_update(self):
        decoder = DictionaryDecoder(node_id=6, detect_threshold=2)
        assert decoder.observe_uncompressed(0xAB, src=3) == []
        notifications = decoder.observe_uncompressed(0xAB, src=3)
        assert len(notifications) == 1
        update = notifications[0]
        assert update.kind is NotificationKind.UPDATE
        assert update.src == 6 and update.dst == 3
        assert update.pattern == 0xAB

    def test_second_sender_gets_own_update(self):
        decoder = DictionaryDecoder(node_id=6, detect_threshold=2)
        decoder.observe_uncompressed(0xAB, src=3)
        first = decoder.observe_uncompressed(0xAB, src=3)
        second = decoder.observe_uncompressed(0xAB, src=5)
        assert len(second) == 1
        assert second[0].dst == 5
        assert second[0].index == first[0].index

    def test_replacement_invalidates_all_valid_encoders(self):
        decoder = DictionaryDecoder(node_id=0, n_entries=2,
                                    detect_threshold=1)
        decoder.observe_uncompressed(0x1, src=1)
        decoder.observe_uncompressed(0x2, src=2)
        # table is full; promoting a third pattern replaces an entry
        notifications = decoder.observe_uncompressed(0x3, src=3)
        kinds = [n.kind for n in notifications]
        assert NotificationKind.INVALIDATE in kinds
        assert kinds[-1] is NotificationKind.UPDATE

    def test_lfu_victim_selection(self):
        decoder = DictionaryDecoder(node_id=0, n_entries=2,
                                    detect_threshold=1)
        decoder.observe_uncompressed(0x1, src=1)
        decoder.observe_uncompressed(0x2, src=1)
        # bump pattern 0x1's frequency
        decoder.observe_uncompressed(0x1, src=1)
        notifications = decoder.observe_uncompressed(0x3, src=1)
        invalidate = [n for n in notifications
                      if n.kind is NotificationKind.INVALIDATE][0]
        assert invalidate.pattern == 0x2  # the less frequent entry

    def test_compressed_use_bumps_frequency(self):
        decoder = DictionaryDecoder(node_id=0, n_entries=2,
                                    detect_threshold=1)
        decoder.observe_uncompressed(0x1, src=1)
        entry_freq = decoder.entries[0].freq
        decoder.note_compressed_use(0)
        assert decoder.entries[0].freq == entry_freq + 1


class TestDiCompEndToEnd:
    def test_cold_encoder_compresses_nothing(self):
        scheme = DiCompScheme(n_nodes=4)
        block = CacheBlock.from_ints([1, 2, 3, 4])
        encoded = scheme.node(0).encode(block, dst=1)
        assert all(not w.compressed for w in encoded.words)
        # nothing compressed -> the block ships raw (the fallback marker
        # rides in the head flit, not the payload)
        assert encoded.size_bits == 4 * 32

    def test_learning_enables_compression(self):
        scheme = DiCompScheme(n_nodes=4, detect_threshold=2)
        block = CacheBlock.from_ints([7, 7, 7, 7])
        # Two round trips teach the decoder; notifications applied inline.
        scheme.roundtrip(block, 0, 1)
        scheme.roundtrip(block, 0, 1)
        encoded = scheme.node(0).encode(block, dst=1)
        assert all(w.compressed for w in encoded.words)
        assert encoded.size_bits == 4 * (1 + 3)

    def test_compression_is_destination_specific(self):
        scheme = DiCompScheme(n_nodes=4, detect_threshold=2)
        block = CacheBlock.from_ints([7, 7, 7, 7])
        scheme.roundtrip(block, 0, 1)
        scheme.roundtrip(block, 0, 1)
        # Node 2 never learned the pattern: no compression toward it.
        encoded = scheme.node(0).encode(block, dst=2)
        assert all(not w.compressed for w in encoded.words)

    def test_roundtrip_is_always_exact(self):
        scheme = DiCompScheme(n_nodes=4)
        block = CacheBlock.from_ints([5, -9, 100000, 5, 5, -9, 0, 0])
        for _ in range(4):
            out, _ = scheme.roundtrip(block, 0, 1)
            assert out.words == block.words

    def test_invalidation_stops_compression(self):
        # Single-word blocks keep the decoder entries at the admission
        # frequency, so the third pattern's promotion may evict one.
        scheme = DiCompScheme(n_nodes=4, pmt_entries=2, detect_threshold=1)
        a = CacheBlock.from_ints([1])
        b = CacheBlock.from_ints([2])
        c = CacheBlock.from_ints([3])
        scheme.roundtrip(a, 0, 1)
        scheme.roundtrip(b, 0, 1)
        # compressible now
        assert scheme.node(0).encode(a, 1).words[0].compressed
        # c's promotion evicts the LFU entry and invalidates the encoder
        scheme.roundtrip(c, 0, 1)
        enc_a = scheme.node(0).encode(a, 1)
        enc_b = scheme.node(0).encode(b, 1)
        assert not (enc_a.words[0].compressed and enc_b.words[0].compressed)

    def test_admission_control_protects_hot_entries(self):
        """A hot PMT entry is not evicted by a marginal new pattern."""
        scheme = DiCompScheme(n_nodes=4, pmt_entries=2, detect_threshold=1)
        hot = CacheBlock.from_ints([1] * 8)
        for _ in range(3):
            scheme.roundtrip(hot, 0, 1)  # entry frequency well above 1
        warm = CacheBlock.from_ints([2] * 8)
        scheme.roundtrip(warm, 0, 1)  # fills the second slot, heats it
        cold = CacheBlock.from_ints([3])
        scheme.roundtrip(cold, 0, 1)  # admission denied: both entries hot
        assert scheme.node(0).encode(hot, 1).words[0].compressed
        assert scheme.node(0).encode(warm, 1).words[0].compressed

    def test_notification_misdelivery_raises(self):
        scheme = DiCompScheme(n_nodes=4, detect_threshold=1)
        block = CacheBlock.from_ints([9] * 4)
        encoded = scheme.node(0).encode(block, 1)
        result = scheme.node(1).decode(encoded, src=0)
        assert result.notifications
        with pytest.raises(ValueError):
            scheme.node(2).deliver_notification(result.notifications[0])

    @given(st.lists(st.lists(st.integers(-100, 100), min_size=4, max_size=4),
                    min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_exactness_property(self, blocks):
        """DI-COMP never alters data, whatever the traffic history."""
        scheme = DiCompScheme(n_nodes=3, detect_threshold=2)
        for values in blocks:
            block = CacheBlock.from_ints(values)
            out, _ = scheme.roundtrip(block, 0, 1)
            assert out.words == block.words
