"""numpy is an optional extra: the default cores must run without it.

The SoA and object cores are pure stdlib; only ``core="numpy"`` needs
numpy, and asking for it without numpy installed must fail with a clear
pointer at the ``[fast]`` extra.  Each check runs in a subprocess with a
meta-path blocker so an ambient numpy installation cannot mask a stray
import.
"""

import subprocess
import sys
import textwrap

_BLOCKER = """
import sys

class _BlockNumpy:
    def find_module(self, name, path=None):  # pragma: no cover - trivial
        return None

    def find_spec(self, name, path=None, target=None):
        if name == "numpy" or name.startswith("numpy."):
            raise ImportError("numpy blocked for this test")
        return None

sys.meta_path.insert(0, _BlockNumpy())
"""


def _run_blocked(body: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-c", _BLOCKER + textwrap.dedent(body)],
        capture_output=True, text=True, timeout=300)


def test_soa_and_object_cores_run_without_numpy():
    proc = _run_blocked("""
        from repro.harness.experiment import run_trace
        from repro.noc import NocConfig
        from repro.traffic import SyntheticTraffic, record_trace

        config = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
        source = SyntheticTraffic(config, injection_rate=0.05, seed=3)
        trace = record_trace(source, 300)
        ref = run_trace(config, "FP-VAXX", trace, 20, 300, core="object")
        got = run_trace(config, "FP-VAXX", trace, 20, 300, core="soa")
        assert got.simulation_outputs() == ref.simulation_outputs()
        assert ref.packets_delivered > 0
        print("OK")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout


def test_numpy_core_without_numpy_raises_clear_error():
    proc = _run_blocked("""
        from repro.harness.experiment import make_scheme
        from repro.noc import Network, NocConfig

        config = NocConfig(mesh_width=2, mesh_height=2, concentration=1,
                           core="numpy")
        try:
            Network(config, make_scheme("Baseline", config.n_nodes))
        except RuntimeError as exc:
            message = str(exc)
            assert "numpy" in message and "[fast]" in message, message
            print("OK")
        else:
            raise AssertionError("core='numpy' built without numpy")
    """)
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
