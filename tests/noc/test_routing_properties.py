"""Property-based routing checks and routing-registry unit tests.

Hypothesis sweeps random mesh geometries and proves, for every
source/destination pair, that XY and YX are minimal and that their
channel-dependency graphs are acyclic — the machine-checked version of the
Dally–Seitz argument the static verifier relies on.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.noc.config import NocConfig
from repro.noc.routing import (
    ROUTING_FUNCTIONS,
    RoutingProperties,
    get_routing_fn,
    get_routing_properties,
    register_routing_fn,
    unregister_routing_fn,
    xy_route,
    yx_route,
)
from repro.noc.topology import MeshTopology
from repro.verify.cdg import build_cdg, cyclic_demo_route, find_cycle, trace_route

mesh_configs = st.builds(
    NocConfig,
    mesh_width=st.integers(min_value=1, max_value=6),
    mesh_height=st.integers(min_value=1, max_value=6),
    concentration=st.integers(min_value=1, max_value=2),
)

dimension_ordered = st.sampled_from([xy_route, yx_route])


class TestRouteProperties:
    @settings(max_examples=40, deadline=None)
    @given(config=mesh_configs, route_fn=dimension_ordered)
    def test_dimension_ordered_routes_are_minimal(self, config, route_fn):
        topology = MeshTopology(config)
        for src in range(config.n_nodes):
            for dst in range(config.n_nodes):
                if src == dst:
                    continue
                trace = trace_route(topology, route_fn, src, dst)
                assert trace.ok, trace.error
                # Minimal: hop count equals the router-level Manhattan
                # distance (hop_count includes the ejection hop).
                assert trace.hops == topology.hop_count(src, dst) - 1

    @settings(max_examples=40, deadline=None)
    @given(config=mesh_configs, route_fn=dimension_ordered)
    def test_dimension_ordered_cdg_is_acyclic(self, config, route_fn):
        graph, failures = build_cdg(config, route_fn)
        assert not failures
        assert find_cycle(graph) is None

    @settings(max_examples=20, deadline=None)
    @given(
        config=st.builds(
            NocConfig,
            mesh_width=st.integers(min_value=2, max_value=5),
            mesh_height=st.integers(min_value=2, max_value=5),
            concentration=st.integers(min_value=1, max_value=2),
        )
    )
    def test_cyclic_demo_always_caught(self, config):
        # The demo's clockwise spin closes a CDG cycle on every mesh with
        # at least a 2x2 block of routers.
        graph, _ = build_cdg(config, cyclic_demo_route)
        assert find_cycle(graph) is not None


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_routing_fn("xy", xy_route)

    def test_replace_allows_overwrite(self):
        register_routing_fn("scratch", xy_route)
        try:
            register_routing_fn("scratch", yx_route, replace=True)
            assert get_routing_fn("scratch") is yx_route
        finally:
            unregister_routing_fn("scratch")
        assert "scratch" not in ROUTING_FUNCTIONS

    def test_builtins_cannot_be_unregistered(self):
        for name in ("xy", "yx"):
            with pytest.raises(ValueError, match="built-in"):
                unregister_routing_fn(name)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown routing"):
            get_routing_fn("nope")
        with pytest.raises(ValueError, match="unknown routing"):
            get_routing_properties("nope")

    def test_properties_default_and_roundtrip(self):
        register_routing_fn(
            "adaptive-scratch", xy_route,
            RoutingProperties(minimal=False, requires_escape_vc=True,
                              escape_fn=xy_route))
        try:
            props = get_routing_properties("adaptive-scratch")
            assert not props.minimal
            assert props.requires_escape_vc
            assert props.escape_fn is xy_route
        finally:
            unregister_routing_fn("adaptive-scratch")
        register_routing_fn("plain-scratch", yx_route)
        try:
            assert get_routing_properties("plain-scratch") == \
                RoutingProperties()
        finally:
            unregister_routing_fn("plain-scratch")
