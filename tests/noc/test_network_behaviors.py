"""Deeper network behaviours: warmup resets, traffic patterns under load,
regression goldens for zero-load latency."""

import pytest

from repro.compression import BaselineScheme, FpCompScheme
from repro.core import CacheBlock
from repro.noc import Network, NocConfig, PacketKind, TrafficRequest
from repro.traffic import SyntheticTraffic

PAPER = NocConfig()


class TestWarmupReset:
    def test_reset_clears_measurements_not_state(self):
        net = Network(PAPER, FpCompScheme(PAPER.n_nodes))
        net.set_traffic(SyntheticTraffic(PAPER, injection_rate=0.1,
                                         seed=2))
        net.run(400)
        assert net.stats.total_packets_delivered > 0
        net.stats.reset()
        assert net.stats.total_packets_delivered == 0
        assert net.stats.cycles == 0
        net.run(400)
        assert net.stats.total_packets_delivered > 0
        assert net.stats.cycles == 400

    def test_cycle_counter_continues_after_reset(self):
        net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
        net.run(100)
        net.stats.reset()
        assert net.cycle == 100  # simulation time is independent of stats


class TestZeroLoadGoldens:
    """Pinned latencies guard the pipeline model against refactors."""

    CASES = [
        # (src, dst, expected network latency): 3 cycles per router hop
        (0, 1, 3),     # same router, different local port: 1 hop
        (0, 2, 6),     # adjacent router
        (0, 31, 21),   # corner to corner: 7 routers
    ]

    @pytest.mark.parametrize("src,dst,expected", CASES)
    def test_control_latency(self, src, dst, expected):
        net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
        net.submit(TrafficRequest(src, dst, PacketKind.CONTROL))
        assert net.drain()
        assert net.stats.avg_network_latency == expected

    def test_data_latency_golden(self):
        net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
        block = CacheBlock.from_ints(range(16))
        net.submit(TrafficRequest(0, 31, PacketKind.DATA, block))
        assert net.drain()
        # 7 hops x 3 + 8 serialization flits
        assert net.stats.avg_network_latency == 29


class TestPatternsUnderLoad:
    @pytest.mark.parametrize("pattern", [
        "uniform_random", "transpose", "bit_complement", "bit_reverse",
        "neighbor", "hotspot"])
    def test_every_pattern_conserves_packets(self, pattern):
        net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
        net.set_traffic(SyntheticTraffic(PAPER, pattern=pattern,
                                         injection_rate=0.15, seed=3,
                                         duration=300))
        net.run(300)
        assert net.drain(50_000), f"{pattern}: failed to drain"
        assert (sum(net.stats.packets_injected.values())
                == net.stats.total_packets_delivered > 0)

    def test_transpose_has_longer_paths_than_neighbor(self):
        latencies = {}
        for pattern in ("neighbor", "transpose"):
            net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
            net.set_traffic(SyntheticTraffic(PAPER, pattern=pattern,
                                             injection_rate=0.05, seed=4,
                                             duration=400))
            net.run(400)
            net.drain(50_000)
            latencies[pattern] = net.stats.avg_network_latency
        assert latencies["transpose"] > latencies["neighbor"]

    def test_hotspot_congests_more_than_uniform(self):
        latencies = {}
        for pattern in ("uniform_random", "hotspot"):
            net = Network(PAPER, BaselineScheme(PAPER.n_nodes))
            net.set_traffic(SyntheticTraffic(PAPER, pattern=pattern,
                                             injection_rate=0.30, seed=5,
                                             duration=800))
            net.run(800)
            net.drain(100_000)
            latencies[pattern] = net.stats.avg_packet_latency
        assert latencies["hotspot"] > latencies["uniform_random"]


class TestRoutingVariants:
    def test_yx_routing_also_conserves(self):
        net = Network(PAPER, BaselineScheme(PAPER.n_nodes), routing="yx")
        net.set_traffic(SyntheticTraffic(PAPER, injection_rate=0.2,
                                         seed=6, duration=300))
        net.run(300)
        assert net.drain(50_000)
        assert (sum(net.stats.packets_injected.values())
                == net.stats.total_packets_delivered)

    def test_xy_and_yx_same_zero_load_latency(self):
        results = {}
        for routing in ("xy", "yx"):
            net = Network(PAPER, BaselineScheme(PAPER.n_nodes),
                          routing=routing)
            net.submit(TrafficRequest(0, 31, PacketKind.CONTROL))
            net.drain()
            results[routing] = net.stats.avg_network_latency
        assert results["xy"] == results["yx"]  # same minimal hop count


class TestCompressionLatencyVisibility:
    def test_busy_queue_hides_compression(self):
        """§4.3: with packets queued ahead, the 3-cycle codec adds nothing."""
        net = Network(PAPER, FpCompScheme(PAPER.n_nodes))
        block = CacheBlock.from_ints([0] * 16)
        for _ in range(6):
            net.submit(TrafficRequest(0, 31, PacketKind.DATA, block))
        assert net.drain()
        # first packet pays 3 cycles; the rest pay only queueing
        per_packet_queue = net.stats.avg_queue_latency
        assert per_packet_queue >= 3.0  # serialization dominates
        solo = Network(PAPER, FpCompScheme(PAPER.n_nodes))
        solo.submit(TrafficRequest(0, 31, PacketKind.DATA, block))
        solo.drain()
        assert solo.stats.avg_queue_latency == 3.0
