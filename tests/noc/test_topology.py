"""Tests for mesh geometry, node mapping and link wiring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.config import NocConfig
from repro.noc.topology import (
    EAST,
    MeshTopology,
    NORTH,
    NUM_DIRECTIONS,
    SOUTH,
    WEST,
)


@pytest.fixture
def cmesh():
    """The paper's 4x4 concentrated mesh (32 nodes)."""
    return MeshTopology(NocConfig())


@pytest.fixture
def mesh3():
    return MeshTopology(NocConfig(mesh_width=3, mesh_height=3,
                                  concentration=1))


class TestGeometry:
    def test_counts(self, cmesh):
        assert cmesh.n_routers == 16
        assert cmesh.n_nodes == 32
        assert cmesh.ports_per_router == 6

    def test_coords_roundtrip(self, cmesh):
        for router in range(cmesh.n_routers):
            x, y = cmesh.coords(router)
            assert cmesh.router_at(x, y) == router

    def test_corner_neighbors(self, mesh3):
        assert mesh3.neighbor(0, NORTH) is None
        assert mesh3.neighbor(0, WEST) is None
        assert mesh3.neighbor(0, EAST) == 1
        assert mesh3.neighbor(0, SOUTH) == 3

    def test_center_neighbors(self, mesh3):
        assert mesh3.neighbor(4, NORTH) == 1
        assert mesh3.neighbor(4, SOUTH) == 7
        assert mesh3.neighbor(4, EAST) == 5
        assert mesh3.neighbor(4, WEST) == 3

    def test_bad_router_rejected(self, mesh3):
        with pytest.raises(ValueError):
            mesh3.coords(9)

    def test_bad_direction_rejected(self, mesh3):
        with pytest.raises(ValueError):
            mesh3.neighbor(0, 7)


class TestNodeMapping:
    def test_concentration_mapping(self, cmesh):
        assert cmesh.router_of(0) == 0
        assert cmesh.router_of(1) == 0
        assert cmesh.router_of(2) == 1
        assert cmesh.local_port_of(0) == NUM_DIRECTIONS
        assert cmesh.local_port_of(1) == NUM_DIRECTIONS + 1

    def test_node_at_inverse(self, cmesh):
        for node in range(cmesh.n_nodes):
            router = cmesh.router_of(node)
            port = cmesh.local_port_of(node)
            assert cmesh.node_at(router, port) == node

    def test_node_at_rejects_direction_port(self, cmesh):
        with pytest.raises(ValueError):
            cmesh.node_at(0, NORTH)


class TestLinks:
    def test_links_are_symmetric(self, cmesh):
        opposite = {NORTH: SOUTH, SOUTH: NORTH, EAST: WEST, WEST: EAST}
        for router in range(cmesh.n_routers):
            for direction in range(NUM_DIRECTIONS):
                link = cmesh.link(router, direction)
                if link is None:
                    assert cmesh.neighbor(router, direction) is None
                    continue
                back = cmesh.link(link.dst_router, opposite[direction])
                assert back is not None
                assert back.dst_router == router

    def test_local_ports_have_no_link(self, cmesh):
        assert cmesh.link(0, NUM_DIRECTIONS) is None

    def test_link_count(self, mesh3):
        # 3x3 mesh: 2 * (2*3) * 2 directions = 24 unidirectional links
        count = sum(1 for r in range(9) for d in range(4)
                    if mesh3.link(r, d) is not None)
        assert count == 24


class TestHopCount:
    def test_same_router_nodes(self, cmesh):
        assert cmesh.hop_count(0, 1) == 1

    def test_adjacent(self, cmesh):
        assert cmesh.hop_count(0, 2) == 2

    def test_diagonal(self, cmesh):
        # node 0 at router 0 (0,0); node 31 at router 15 (3,3)
        assert cmesh.hop_count(0, 31) == 7

    @given(st.integers(0, 31), st.integers(0, 31))
    def test_symmetric(self, a, b):
        topo = MeshTopology(NocConfig())
        assert topo.hop_count(a, b) == topo.hop_count(b, a)
