"""Tests for XY / YX routing: progress, minimality, deadlock-freedom
preconditions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.noc.config import NocConfig
from repro.noc.routing import get_routing_fn, xy_route, yx_route
from repro.noc.topology import EAST, MeshTopology, NORTH, SOUTH, WEST

TOPO = MeshTopology(NocConfig())  # 4x4 cmesh, 32 nodes
NODES = st.integers(0, TOPO.n_nodes - 1)


def walk(route_fn, src_node, dst_node):
    """Follow a routing function from source to ejection; returns the list
    of routers traversed."""
    router = TOPO.router_of(src_node)
    path = [router]
    for _ in range(100):
        port = route_fn(TOPO, router, dst_node)
        if port >= 4:  # local port: ejection
            assert TOPO.node_at(router, port) == dst_node
            return path
        router = TOPO.neighbor(router, port)
        assert router is not None, "routed off the mesh edge"
        path.append(router)
    raise AssertionError("routing did not converge")


class TestXyRoute:
    def test_local_delivery(self):
        port = xy_route(TOPO, TOPO.router_of(5), 5)
        assert port == TOPO.local_port_of(5)

    def test_x_first(self):
        # router 0 (0,0) to a node on router 15 (3,3): go EAST first
        assert xy_route(TOPO, 0, 31) == EAST

    def test_then_y(self):
        # router 3 (3,0) to node on router 15 (3,3): x done, go SOUTH
        assert xy_route(TOPO, 3, 31) == SOUTH

    def test_west_and_north(self):
        assert xy_route(TOPO, 15, 0) == WEST
        assert xy_route(TOPO, 12, 0) == NORTH

    @given(NODES, NODES)
    def test_path_is_minimal(self, src, dst):
        if src == dst:
            return
        path = walk(xy_route, src, dst)
        assert len(path) == TOPO.hop_count(src, dst)

    @given(NODES, NODES)
    def test_dimension_order_invariant(self, src, dst):
        """Once an XY packet moves in Y it never moves in X again."""
        if src == dst:
            return
        path = walk(xy_route, src, dst)
        moved_y = False
        for a, b in zip(path, path[1:]):
            ax, ay = TOPO.coords(a)
            bx, by = TOPO.coords(b)
            if ay != by:
                moved_y = True
            if ax != bx:
                assert not moved_y, "X move after Y move breaks XY ordering"


class TestYxRoute:
    @given(NODES, NODES)
    def test_path_is_minimal(self, src, dst):
        if src == dst:
            return
        path = walk(yx_route, src, dst)
        assert len(path) == TOPO.hop_count(src, dst)

    def test_y_first(self):
        assert yx_route(TOPO, 0, 31) == SOUTH


class TestLookup:
    def test_names(self):
        assert get_routing_fn("xy") is xy_route
        assert get_routing_fn("yx") is yx_route

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_routing_fn("adaptive")
