"""Cross-core bit-identity (DESIGN.md §14).

The contract under test: ``NocConfig(core=...)`` selects an execution
backend, never a behaviour.  The struct-of-arrays core (and the numpy
variant when numpy is installed) must produce bit-identical
``simulation_outputs``, delivered word streams and stats to the reference
object core on every workload — including with the sanitizer auditing
every cycle, with the event horizon on and off, and with a nonzero fault
campaign armed.  ``Packet.pid`` is a process-global counter, not a
simulation observable, so deliveries are compared by
(src, dst, kind, cycle, words).
"""

from dataclasses import replace

import pytest

from repro.faults import FaultConfig
from repro.harness.experiment import make_scheme, run_trace
from repro.noc import Network, NocConfig
from repro.traffic import SyntheticTraffic, TraceTraffic, record_trace


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


#: Backends compared against the reference object core.  numpy rides along
#: when importable; the suite must pass without it (the SoA core is pure
#: stdlib — see the [fast] optional extra).
ALT_CORES = ["soa"] + (["numpy"] if _has_numpy() else [])

BASE = NocConfig()  # the paper's 4x4 concentrated mesh


def _trace(config, rate, seed, cycles=900):
    source = SyntheticTraffic(config, pattern="uniform_random",
                              injection_rate=rate, seed=seed)
    return record_trace(source, cycles)


def _run_with_deliveries(config, mechanism, trace, cycles):
    """One drained run returning (stats outputs, delivery stream)."""
    deliveries = []
    network = Network(
        config, make_scheme(mechanism, config.n_nodes),
        on_deliver=lambda packet, block, now: deliveries.append(
            (packet.src, packet.dst, packet.kind.value, now,
             tuple(block.words) if block else None)))
    network.set_traffic(TraceTraffic(trace, loop=True))
    network.run(cycles)
    network.drain(50_000)
    return network.stats.simulation_outputs(), deliveries


@pytest.mark.parametrize("core", ALT_CORES)
@pytest.mark.parametrize("mechanism", ["FP-VAXX", "DI-VAXX"])
@pytest.mark.parametrize("rate,seed", [(0.02, 1), (0.1, 7)])
def test_cores_bit_identical(core, mechanism, rate, seed):
    trace = _trace(BASE, rate, seed)
    ref = run_trace(BASE, mechanism, trace, 100, 900, core="object")
    got = run_trace(BASE, mechanism, trace, 100, 900, core=core)
    assert got.simulation_outputs() == ref.simulation_outputs()


@pytest.mark.parametrize("core", ALT_CORES)
def test_delivered_word_streams_identical(core):
    trace = _trace(BASE, 0.05, 3)
    ref_stats, ref_stream = _run_with_deliveries(
        replace(BASE, core="object"), "FP-VAXX", trace, 900)
    got_stats, got_stream = _run_with_deliveries(
        replace(BASE, core=core), "FP-VAXX", trace, 900)
    assert got_stats == ref_stats
    assert got_stream == ref_stream
    assert ref_stream  # the workload actually delivered packets


@pytest.mark.parametrize("core", ALT_CORES)
@pytest.mark.parametrize("event_horizon", [True, False])
def test_cores_identical_across_event_horizon(core, event_horizon):
    trace = _trace(BASE, 0.02, 5)
    ref = run_trace(BASE, "FP-VAXX", trace, 100, 900, core="object",
                    event_horizon=event_horizon)
    got = run_trace(BASE, "FP-VAXX", trace, 100, 900, core=core,
                    event_horizon=event_horizon)
    assert got.simulation_outputs() == ref.simulation_outputs()


@pytest.mark.parametrize("core", ALT_CORES)
def test_cores_identical_under_sanitizer(core):
    """sanitize=True audits every router every cycle (the REPRO_SANITIZE=1
    path), exercising the SoA audit invariants — including the parked
    VA/credit-waiter slots — against live traffic."""
    trace = _trace(BASE, 0.05, 11, cycles=500)
    ref = run_trace(BASE, "DI-VAXX", trace, 50, 500, core="object",
                    sanitize=True)
    got = run_trace(BASE, "DI-VAXX", trace, 50, 500, core=core,
                    sanitize=True)
    assert got.simulation_outputs() == ref.simulation_outputs()


@pytest.mark.parametrize("core", ALT_CORES)
def test_cores_identical_with_faults(core):
    """A nonzero fault campaign (bitflips + credit loss + fail-stop, with
    recovery) must inject and recover identically on every backend."""
    faults = FaultConfig(seed=5, bitflip_rate=5e-3, failstop_rate=2e-4,
                         credit_loss_rate=2e-3, recovery=True)
    config = replace(BASE, faults=faults)
    trace = _trace(BASE, 0.05, 3, cycles=800)
    ref = run_trace(config, "DI-VAXX", trace, 50, 800, core="object")
    got = run_trace(config, "DI-VAXX", trace, 50, 800, core=core)
    assert ref.faults_injected > 0  # the campaign actually fired
    assert got.simulation_outputs() == ref.simulation_outputs()


def test_audit_clean_after_saturated_run():
    """Every per-router audit invariant (including the parking caches)
    holds after a saturated run on the SoA core."""
    config = NocConfig(mesh_width=4, mesh_height=4, concentration=1,
                       core="soa")
    source = SyntheticTraffic(config, pattern="uniform_random",
                              injection_rate=0.1, seed=13)
    network = Network(config, make_scheme("Baseline", config.n_nodes))
    network.set_traffic(source)
    network.run(600)
    core = network._core
    for rid in range(config.n_routers):
        assert core.audit(rid) == []
