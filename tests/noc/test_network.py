"""End-to-end network tests: delivery, conservation, latency, flow control."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import BaselineScheme, FpCompScheme
from repro.core import CacheBlock, FpVaxxScheme
from repro.noc import (
    Network,
    NocConfig,
    PacketKind,
    TrafficRequest,
)

TINY = NocConfig(mesh_width=2, mesh_height=2, concentration=1)


def make_net(config=TINY, scheme_cls=BaselineScheme, **scheme_kw):
    return Network(config, scheme_cls(config.n_nodes, **scheme_kw))


class RandomTraffic:
    """Bernoulli random traffic used by the stress tests."""

    def __init__(self, n_nodes, rate, cycles, seed=7, data_ratio=0.3):
        self.rng = random.Random(seed)
        self.n = n_nodes
        self.rate = rate
        self.cycles = cycles
        self.data_ratio = data_ratio

    def generate(self, cycle):
        if cycle >= self.cycles:
            return []
        requests = []
        for src in range(self.n):
            if self.rng.random() >= self.rate:
                continue
            dst = self.rng.randrange(self.n - 1)
            if dst >= src:
                dst += 1
            if self.rng.random() < self.data_ratio:
                words = [self.rng.choice([0, 1, 7, 1000, 70000])
                         for _ in range(16)]
                block = CacheBlock.from_ints(words, approximable=True)
                requests.append(TrafficRequest(src, dst, PacketKind.DATA,
                                               block))
            else:
                requests.append(TrafficRequest(src, dst, PacketKind.CONTROL))
        return requests


class TestZeroLoadLatency:
    def test_single_hop_control(self):
        net = make_net()
        net.submit(TrafficRequest(0, 1, PacketKind.CONTROL))
        assert net.drain()
        # 2 routers x 3-cycle pipeline (incl. link) = 6 cycles
        assert net.stats.avg_network_latency == 6.0

    def test_diagonal_control(self):
        net = make_net()
        net.submit(TrafficRequest(0, 3, PacketKind.CONTROL))
        assert net.drain()
        assert net.stats.avg_network_latency == 9.0  # 3 routers

    def test_data_packet_serialization(self):
        net = make_net()
        block = CacheBlock.from_ints(range(16))
        net.submit(TrafficRequest(0, 3, PacketKind.DATA, block))
        assert net.drain()
        # 9 flits: 3 hops * 3 + (9 - 1) serialization
        assert net.stats.avg_network_latency == 17.0

    def test_compression_latency_on_idle_queue(self):
        net = make_net(scheme_cls=FpCompScheme)
        block = CacheBlock.from_ints([0] * 16)
        net.submit(TrafficRequest(0, 3, PacketKind.DATA, block))
        assert net.drain()
        # queue latency = 3 compression cycles, decode = 2
        assert net.stats.avg_queue_latency == 3.0
        assert net.stats.avg_decode_latency == 2.0

    def test_compressed_packet_is_shorter(self):
        base = make_net()
        comp = make_net(scheme_cls=FpCompScheme)
        block = CacheBlock.from_ints([0] * 16)
        for net in (base, comp):
            net.submit(TrafficRequest(0, 3, PacketKind.DATA, block))
            assert net.drain()
        assert (comp.stats.data_flits_injected
                < base.stats.data_flits_injected)


class TestConservation:
    @pytest.mark.parametrize("rate", [0.05, 0.2, 0.5])
    def test_every_packet_delivered(self, rate):
        net = make_net()
        net.set_traffic(RandomTraffic(TINY.n_nodes, rate, cycles=400))
        net.run(400)
        assert net.drain(20_000), "network failed to drain (deadlock?)"
        injected = sum(net.stats.packets_injected.values())
        delivered = net.stats.total_packets_delivered
        assert injected == delivered
        assert injected > 0

    def test_flit_conservation(self):
        net = make_net()
        net.set_traffic(RandomTraffic(TINY.n_nodes, 0.3, cycles=300))
        net.run(300)
        assert net.drain(20_000)
        assert (sum(net.stats.flits_injected.values())
                == sum(net.stats.flits_delivered.values()))

    def test_paper_config_conservation(self):
        config = NocConfig()  # 4x4 cmesh
        net = Network(config, FpVaxxScheme(config.n_nodes, 10))
        net.set_traffic(RandomTraffic(config.n_nodes, 0.1, cycles=300))
        net.run(300)
        assert net.drain(30_000)
        assert (sum(net.stats.packets_injected.values())
                == net.stats.total_packets_delivered)

    @given(st.integers(0, 2**31))
    @settings(max_examples=5, deadline=None)
    def test_conservation_random_seeds(self, seed):
        net = make_net()
        net.set_traffic(RandomTraffic(TINY.n_nodes, 0.4, cycles=150,
                                      seed=seed))
        net.run(150)
        assert net.drain(20_000)
        assert (sum(net.stats.packets_injected.values())
                == net.stats.total_packets_delivered)


class TestLatencyMonotonicity:
    def test_latency_grows_with_load(self):
        latencies = []
        for rate in (0.05, 0.45):
            net = make_net()
            net.set_traffic(RandomTraffic(TINY.n_nodes, rate, cycles=600))
            net.run(600)
            net.drain(20_000)
            latencies.append(net.stats.avg_packet_latency)
        assert latencies[1] > latencies[0]


class TestDataIntegrity:
    def test_baseline_delivers_exact_blocks(self):
        delivered = {}

        def on_deliver(packet, block, now):
            if block is not None:
                delivered[packet.pid] = block

        config = TINY
        net = Network(config, BaselineScheme(config.n_nodes),
                      on_deliver=on_deliver)
        block = CacheBlock.from_ints([3, 1, 4, 1, 5, 9, 2, 6])
        net.submit(TrafficRequest(0, 2, PacketKind.DATA, block))
        assert net.drain()
        assert len(delivered) == 1
        assert list(delivered.values())[0].words == block.words

    def test_vaxx_error_bounded_under_load(self):
        """Every block delivered by FP-VAXX respects the error bound."""
        errors = []

        def on_deliver(packet, block, now):
            if block is None:
                return
            for precise, approx in zip(packet.block.as_ints(),
                                       block.as_ints()):
                errors.append(abs(approx - precise)
                              <= 4 * abs(precise) * 0.10 + 1)

        config = TINY
        net = Network(config, FpVaxxScheme(config.n_nodes, 10),
                      on_deliver=on_deliver)
        net.set_traffic(RandomTraffic(config.n_nodes, 0.2, cycles=300))
        net.run(300)
        assert net.drain(20_000)
        assert errors and all(errors)


class TestValidation:
    def test_scheme_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Network(TINY, BaselineScheme(99))

    def test_self_packet_rejected(self):
        net = make_net()
        with pytest.raises(ValueError):
            net.submit(TrafficRequest(0, 0, PacketKind.CONTROL))

    def test_idle_network_is_idle(self):
        net = make_net()
        assert net.idle()
        net.run(10)
        assert net.idle()
