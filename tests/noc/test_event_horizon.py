"""Event-horizon fast-forward equivalence (DESIGN.md §12).

The contract under test: with ``event_horizon=True`` the simulator may
jump over provably-quiescent windows, but every *observable* — the full
``NetworkStats`` (including ``cycles``), the delivered-packet stream with
payload words, the drain outcome, the final clock — must be bit-identical
to a forced always-step run of the same workload.  ``Packet.pid`` is a
process-global counter, not a simulation observable, so deliveries are
compared by (src, dst, kind, cycle, words).
"""

import random
from dataclasses import replace

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network, NocConfig
from repro.noc.config import TINY_CONFIG
from repro.traffic import (
    BenchmarkTraffic,
    SyntheticTraffic,
    TraceTraffic,
    get_benchmark,
)


def run_one(config, mechanism, make_traffic, cycles, drain_budget=50_000):
    """One full run: (stats dict, delivery stream, drained?, final cycle)."""
    deliveries = []
    network = Network(
        config, make_scheme(mechanism, config.n_nodes),
        on_deliver=lambda packet, block, now: deliveries.append(
            (packet.src, packet.dst, packet.kind.value, now,
             tuple(block.words) if block else None)))
    network.set_traffic(make_traffic(config))
    network.run(cycles)
    drained = network.drain(drain_budget)
    return network, deliveries, drained


def assert_equivalent(base_config, mechanism, make_traffic, cycles=2000):
    """Skip-mode and always-step runs agree on every observable."""
    skip_net, skip_deliveries, skip_drained = run_one(
        replace(base_config, event_horizon=True),
        mechanism, make_traffic, cycles)
    step_net, step_deliveries, step_drained = run_one(
        replace(base_config, event_horizon=False),
        mechanism, make_traffic, cycles)
    assert step_net.stats.skipped_cycles == 0
    assert skip_net.stats.simulation_outputs() == \
        step_net.stats.simulation_outputs()
    assert skip_deliveries == step_deliveries
    assert skip_drained == step_drained
    assert skip_net.cycle == step_net.cycle
    return skip_net


class TestSyntheticEquivalence:
    @pytest.mark.parametrize("mechanism", ["FP-VAXX", "DI-VAXX"])
    @pytest.mark.parametrize("rate,seed", [
        (0.02, 3), (0.05, 5), (0.2, 7), (0.02, 11),
    ])
    def test_rates_and_seeds(self, mechanism, rate, seed):
        assert_equivalent(
            TINY_CONFIG, mechanism,
            lambda c: SyntheticTraffic(c, injection_rate=rate, seed=seed))

    def test_low_load_actually_skips(self):
        skip_net = assert_equivalent(
            TINY_CONFIG, "FP-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=0.005, seed=3))
        assert skip_net.stats.skipped_cycles > 0

    def test_non_overlap_compression(self):
        assert_equivalent(
            replace(TINY_CONFIG, overlap_compression=False), "FP-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=0.03, seed=13))

    def test_all_data_packets(self):
        assert_equivalent(
            TINY_CONFIG, "DI-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=0.02, seed=17,
                                       data_ratio=1.0))


class TestOtherSources:
    def test_benchmark_traffic(self):
        assert_equivalent(
            TINY_CONFIG, "FP-VAXX",
            lambda c: BenchmarkTraffic(c, get_benchmark("ssca2"), seed=7))

    def test_trace_replay(self):
        trace = benchmark_trace(TINY_CONFIG, "blackscholes", 800, seed=11)
        assert_equivalent(
            TINY_CONFIG, "FP-VAXX",
            lambda c: TraceTraffic(trace, loop=True))

    def test_no_traffic_source_jumps_to_horizon(self):
        network = Network(replace(TINY_CONFIG, event_horizon=True),
                          make_scheme("Baseline", TINY_CONFIG.n_nodes))
        network.run(10_000)
        assert network.cycle == 10_000
        assert network.stats.cycles == 10_000
        assert network.stats.skipped_cycles == 10_000

    def test_source_without_next_arrival_falls_back_to_stepping(self):
        class LegacyTraffic:
            """Duck-typed source missing the next_arrival API."""

            def __init__(self, config):
                self.inner = SyntheticTraffic(config, injection_rate=0.02,
                                              seed=3)

            def generate(self, cycle):
                return self.inner.generate(cycle)

        skip_net = assert_equivalent(TINY_CONFIG, "FP-VAXX",
                                     LegacyTraffic, cycles=500)
        assert skip_net.stats.skipped_cycles == 0


class TestSanitizerInteraction:
    def test_sanitized_runs_stay_equivalent(self):
        skip_net = assert_equivalent(
            replace(TINY_CONFIG, sanitize=True), "FP-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=0.02, seed=3))
        assert skip_net.stats.skipped_cycles > 0

    def test_env_var_enables_sanitizer_under_skip(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert_equivalent(
            TINY_CONFIG, "DI-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=0.05, seed=5),
            cycles=800)


class TestIdleAccounting:
    def _recount_idle(self, network):
        """The pre-PR O(n) definition of idleness, recomputed from scratch."""
        buffered = sum(len(ivc.buffer)
                       for router in network.routers
                       for port in router.inputs
                       for ivc in port)
        return (buffered == 0
                and not any(ni.busy() for ni in network.nis)
                and not network._pending_router_arrivals
                and not network._pending_ejections)

    @pytest.mark.parametrize("event_horizon", [True, False])
    def test_idle_matches_full_recount(self, event_horizon):
        network = Network(
            replace(TINY_CONFIG, event_horizon=event_horizon),
            make_scheme("FP-VAXX", TINY_CONFIG.n_nodes))
        network.set_traffic(SyntheticTraffic(TINY_CONFIG,
                                             injection_rate=0.1, seed=9))
        saw_busy = saw_idle = False
        for _ in range(600):
            network.step()
            assert network.idle() == self._recount_idle(network)
            saw_busy |= not network.idle()
            saw_idle |= network.idle()
        assert saw_busy and saw_idle


class TestRandomMeshesProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        width=st.integers(min_value=1, max_value=4),
        height=st.integers(min_value=1, max_value=4),
        concentration=st.integers(min_value=1, max_value=2),
        rate=st.floats(min_value=0.005, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_skip_is_invisible(self, width, height, concentration, rate,
                               seed):
        config = NocConfig(mesh_width=width, mesh_height=height,
                           concentration=concentration)
        # Uniform-random traffic needs somewhere to send: a single-node
        # mesh has no destination distinct from the source.
        assume(config.n_nodes >= 2)
        assert_equivalent(
            config, "FP-VAXX",
            lambda c: SyntheticTraffic(c, injection_rate=rate, seed=seed),
            cycles=600)
