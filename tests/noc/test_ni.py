"""Unit tests for the network interface: queueing, codec latency, decode."""

import pytest

from repro.compression import BaselineScheme, FpCompScheme
from repro.compression.dictionary import DiCompScheme
from repro.core import CacheBlock
from repro.noc.ni import NetworkInterface, TrafficRequest
from repro.noc.packet import PacketKind
from repro.noc.stats import NetworkStats


def make_ni(scheme_cls=BaselineScheme, node=0, n_nodes=4, **kw):
    scheme = scheme_cls(n_nodes)
    stats = NetworkStats()
    ni = NetworkInterface(node, scheme, num_vcs=2, vc_depth=4, stats=stats,
                          **kw)
    return ni, scheme, stats


class Sink:
    """Captures injected flits; ``drain=True`` models a router that frees
    the buffer slot immediately (credit returned to the NI)."""

    def __init__(self, ni=None):
        self.flits = []
        self.ni = ni

    def accept(self, vc, flit, now):
        self.flits.append((vc, flit, now))
        if self.ni is not None:
            self.ni.credit(vc)


class TestSubmit:
    def test_control_packet_single_flit(self):
        ni, _, _ = make_ni()
        packet = ni.submit(TrafficRequest(0, 1, PacketKind.CONTROL), now=5)
        assert packet.size_flits == 1
        assert packet.inject_ready == 5

    def test_data_packet_sized_by_codec(self):
        ni, _, _ = make_ni()
        block = CacheBlock.from_ints(range(16))
        packet = ni.submit(TrafficRequest(0, 1, PacketKind.DATA, block),
                           now=0)
        assert packet.size_flits == 9  # uncompressed 64B + head

    def test_compression_latency_delays_inject_ready(self):
        ni, _, _ = make_ni(FpCompScheme)
        block = CacheBlock.from_ints([0] * 16)
        packet = ni.submit(TrafficRequest(0, 1, PacketKind.DATA, block),
                           now=10)
        assert packet.inject_ready == 13  # 3-cycle compression

    def test_compressed_data_packet_is_short(self):
        ni, _, _ = make_ni(FpCompScheme)
        block = CacheBlock.from_ints([0] * 16)
        packet = ni.submit(TrafficRequest(0, 1, PacketKind.DATA, block),
                           now=0)
        assert packet.size_flits == 2  # 12-bit NR -> 2B payload + head

    def test_data_without_block_rejected(self):
        ni, _, _ = make_ni()
        with pytest.raises(ValueError):
            ni.submit(TrafficRequest(0, 1, PacketKind.DATA), now=0)

    def test_wrong_source_rejected(self):
        ni, _, _ = make_ni(node=0)
        with pytest.raises(ValueError):
            ni.submit(TrafficRequest(1, 2, PacketKind.CONTROL), now=0)


class TestInjection:
    def test_one_flit_per_cycle(self):
        ni, _, _ = make_ni()
        block = CacheBlock.from_ints(range(16))
        ni.submit(TrafficRequest(0, 1, PacketKind.DATA, block), now=0)
        sink = Sink(ni)
        for cycle in range(12):
            ni.inject(cycle, sink.accept)
        assert len(sink.flits) == 9
        # contiguous wormhole: all flits of the packet share one VC
        assert len({vc for vc, _, _ in sink.flits}) == 1

    def test_injection_respects_inject_ready(self):
        ni, _, _ = make_ni(FpCompScheme)
        block = CacheBlock.from_ints([0] * 16)
        ni.submit(TrafficRequest(0, 1, PacketKind.DATA, block), now=0)
        sink = Sink()
        ni.inject(0, sink.accept)
        ni.inject(2, sink.accept)
        assert sink.flits == []
        ni.inject(3, sink.accept)
        assert len(sink.flits) == 1

    def test_injection_stalls_without_credits(self):
        ni, _, _ = make_ni()
        ni._credits = [0, 0]
        ni.submit(TrafficRequest(0, 1, PacketKind.CONTROL), now=0)
        sink = Sink()
        ni.inject(0, sink.accept)
        assert sink.flits == []
        ni.credit(1)
        ni.inject(1, sink.accept)
        assert len(sink.flits) == 1
        assert sink.flits[0][0] == 1

    def test_fifo_order_between_packets(self):
        ni, _, _ = make_ni()
        first = ni.submit(TrafficRequest(0, 1, PacketKind.CONTROL), now=0)
        second = ni.submit(TrafficRequest(0, 2, PacketKind.CONTROL), now=0)
        sink = Sink()
        ni.inject(0, sink.accept)
        ni.inject(1, sink.accept)
        assert sink.flits[0][1].packet is first
        assert sink.flits[1][1].packet is second

    def test_queue_depth(self):
        ni, _, _ = make_ni()
        assert ni.queue_depth == 0
        ni.submit(TrafficRequest(0, 1, PacketKind.CONTROL), now=0)
        assert ni.queue_depth == 1


class TestEjection:
    def _send_packet(self, src_ni, dst_ni, block, now=0):
        packet = src_ni.submit(
            TrafficRequest(src_ni.node_id, dst_ni.node_id, PacketKind.DATA,
                           block), now)
        sink = Sink(src_ni)
        cycle = now
        while src_ni.busy():
            src_ni.inject(cycle, sink.accept)
            cycle += 1
        for _vc, flit, _t in sink.flits:
            dst_ni.eject(flit, cycle)
        return packet, cycle

    def test_decode_latency_charged(self):
        scheme = FpCompScheme(4)
        stats = NetworkStats()
        src = NetworkInterface(0, scheme, 2, 4, stats)
        dst = NetworkInterface(1, scheme, 2, 4, stats)
        block = CacheBlock.from_ints([0] * 16)
        packet, arrived = self._send_packet(src, dst, block)
        dst.process(arrived)
        assert stats.total_packets_delivered == 0  # still decoding
        dst.process(arrived + 2)
        assert stats.total_packets_delivered == 1
        assert stats.decode_latency_sum == 2

    def test_delivery_callback_gets_block(self):
        received = []
        scheme = BaselineScheme(4)
        stats = NetworkStats()
        src = NetworkInterface(0, scheme, 2, 4, stats)
        dst = NetworkInterface(1, scheme, 2, 4, stats,
                               on_deliver=lambda p, b, t: received.append(b))
        block = CacheBlock.from_ints([7] * 16)
        _, arrived = self._send_packet(src, dst, block)
        dst.process(arrived)
        assert len(received) == 1
        assert received[0].words == block.words

    def test_dictionary_notifications_become_packets(self):
        scheme = DiCompScheme(4, detect_threshold=1)
        stats = NetworkStats()
        src = NetworkInterface(0, scheme, 2, 4, stats)
        dst = NetworkInterface(1, scheme, 2, 4, stats)
        block = CacheBlock.from_ints([42] * 16)
        _, arrived = self._send_packet(src, dst, block)
        dst.process(arrived + 2)
        # the decoder detected 42 and queued an update toward node 0
        assert dst.queue_depth >= 1
        sink = Sink(dst)
        cycle = arrived + 3
        while dst.busy():
            dst.inject(cycle, sink.accept)
            dst.process(cycle)
            cycle += 1
        kinds = {f.packet.kind for _, f, _ in sink.flits}
        assert PacketKind.NOTIFICATION in kinds
