"""Unit tests for router internals: pipeline, credits, VC/switch arbiters."""

import pytest

from repro.noc.packet import Packet, PacketKind, fragment
from repro.noc.router import Router
from repro.noc.stats import NetworkStats


def make_router(n_ports=5, num_vcs=2, vc_depth=4, stages=3):
    return Router(router_id=0, n_ports=n_ports, num_vcs=num_vcs,
                  vc_depth=vc_depth, stages=stages, stats=NetworkStats())


def make_flits(n=1, dst=1):
    packet = Packet(src=0, dst=dst, kind=PacketKind.DATA, size_flits=n)
    return fragment(packet)


def route_to(port):
    return lambda flit: port


class Collector:
    def __init__(self):
        self.sent = []
        self.credits = []

    def send(self, out_port, out_vc, flit):
        self.sent.append((out_port, out_vc, flit))

    def credit(self, in_port, in_vc):
        self.credits.append((in_port, in_vc))


class TestPipelineTiming:
    def test_flit_not_ready_before_pipe_delay(self):
        router = make_router(stages=3)
        sink = Collector()
        flit = make_flits()[0]
        router.accept(0, 0, flit, now=10)
        router.cycle(10, route_to(1), sink.send, sink.credit)
        router.cycle(11, route_to(1), sink.send, sink.credit)
        assert sink.sent == []
        router.cycle(12, route_to(1), sink.send, sink.credit)
        assert len(sink.sent) == 1

    def test_single_stage_router_forwards_immediately(self):
        router = make_router(stages=1)
        sink = Collector()
        router.accept(0, 0, make_flits()[0], now=5)
        router.cycle(5, route_to(1), sink.send, sink.credit)
        assert len(sink.sent) == 1

    def test_idle_router_fast_path(self):
        router = make_router()
        sink = Collector()
        router.cycle(0, route_to(1), sink.send, sink.credit)
        assert sink.sent == [] and sink.credits == []


class TestCredits:
    def test_credit_spent_on_traversal(self):
        router = make_router()
        sink = Collector()
        router.accept(0, 0, make_flits()[0], now=0)
        router.cycle(2, route_to(1), sink.send, sink.credit)
        assert router.out_credits[1][sink.sent[0][1]] == 3

    def test_no_traversal_without_credit(self):
        router = make_router(num_vcs=1)
        router.set_output_credits(1, 0)
        sink = Collector()
        router.accept(0, 0, make_flits()[0], now=0)
        for cycle in range(2, 6):
            router.cycle(cycle, route_to(1), sink.send, sink.credit)
        assert sink.sent == []
        router.credit_return(1, 0)
        router.cycle(6, route_to(1), sink.send, sink.credit)
        assert len(sink.sent) == 1

    def test_credit_returned_upstream_on_pop(self):
        router = make_router()
        sink = Collector()
        router.accept(2, 1, make_flits()[0], now=0)
        router.cycle(2, route_to(1), sink.send, sink.credit)
        assert sink.credits == [(2, 1)]

    def test_buffer_overflow_detected(self):
        router = make_router(vc_depth=1)
        router.accept(0, 0, make_flits()[0], now=0)
        with pytest.raises(RuntimeError):
            router.accept(0, 0, make_flits()[0], now=0)


class TestWormhole:
    def test_packet_holds_vc_until_tail(self):
        router = make_router(num_vcs=2)
        sink = Collector()
        flits = make_flits(3)
        for flit in flits:
            router.accept(0, 0, flit, now=0)
        router.cycle(2, route_to(1), sink.send, sink.credit)
        out_vc = sink.sent[0][1]
        assert router.out_owner[1][out_vc] == (0, 0)
        router.cycle(3, route_to(1), sink.send, sink.credit)
        assert router.out_owner[1][out_vc] == (0, 0)
        router.cycle(4, route_to(1), sink.send, sink.credit)
        assert router.out_owner[1][out_vc] is None  # tail released it

    def test_flits_leave_in_order(self):
        router = make_router()
        sink = Collector()
        flits = make_flits(4)
        for flit in flits:
            router.accept(0, 0, flit, now=0)
        for cycle in range(2, 8):
            router.cycle(cycle, route_to(1), sink.send, sink.credit)
        assert [f for _, _, f in sink.sent] == flits

    def test_two_packets_share_output_port_via_vcs(self):
        router = make_router(num_vcs=2)
        sink = Collector()
        a = make_flits(2)
        b = make_flits(2)
        for flit in a:
            router.accept(0, 0, flit, now=0)
        for flit in b:
            router.accept(2, 0, flit, now=0)
        for cycle in range(2, 10):
            router.cycle(cycle, route_to(1), sink.send, sink.credit)
        assert len(sink.sent) == 4
        vcs = {vc for _, vc, _ in sink.sent}
        assert len(vcs) == 2  # each packet got its own output VC

    def test_one_flit_per_output_port_per_cycle(self):
        router = make_router(num_vcs=2)
        sink = Collector()
        for port in (0, 2):
            for flit in make_flits(1):
                router.accept(port, 0, flit, now=0)
        router.cycle(2, route_to(1), sink.send, sink.credit)
        assert len(sink.sent) == 1  # both compete for output port 1

    def test_different_outputs_traverse_in_parallel(self):
        router = make_router(num_vcs=2)
        sink = Collector()
        router.accept(0, 0, make_flits(1, dst=1)[0], now=0)
        router.accept(2, 0, make_flits(1, dst=3)[0], now=0)
        routes = {0: 1, 2: 3}

        def route(flit):
            return routes[0] if flit.packet.dst == 1 else routes[2]

        router.cycle(2, route, sink.send, sink.credit)
        assert len(sink.sent) == 2


class TestFairness:
    def test_switch_round_robin_alternates(self):
        """Two input ports contending for one output alternate grants."""
        router = make_router(num_vcs=1, vc_depth=16)
        # credit pool big enough for the whole experiment
        router.set_output_credits(1, 100)
        sink = Collector()
        for port in (0, 2):
            for _ in range(4):
                router.accept(port, 0, make_flits(1)[0], now=0)
        for cycle in range(2, 10):
            router.cycle(cycle, route_to(1), sink.send, sink.credit)
        # all 8 delivered, both contenders served equally, and grants
        # interleave (no port is starved until the other finishes)
        assert len(sink.sent) == 8
        origins = [port for port, _vc in sink.credits]
        assert origins.count(0) == 4 and origins.count(2) == 4
        alternations = sum(1 for a, b in zip(origins, origins[1:])
                           if a != b)
        assert alternations >= 3
