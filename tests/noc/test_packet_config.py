"""Tests for packets, flits and the NoC configuration."""

import pytest

from repro.noc.config import NocConfig, PAPER_CONFIG, TINY_CONFIG
from repro.noc.packet import Packet, PacketKind, fragment


class TestPacket:
    def test_self_addressed_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=1, dst=1, kind=PacketKind.CONTROL)

    def test_zero_flits_rejected(self):
        with pytest.raises(ValueError):
            Packet(src=0, dst=1, kind=PacketKind.DATA, size_flits=0)

    def test_latency_accessors(self):
        packet = Packet(src=0, dst=1, kind=PacketKind.CONTROL, created=10)
        packet.head_injected = 14
        packet.tail_ejected = 25
        assert packet.queue_latency == 4
        assert packet.network_latency == 11

    def test_unique_ids(self):
        a = Packet(src=0, dst=1, kind=PacketKind.CONTROL)
        b = Packet(src=0, dst=1, kind=PacketKind.CONTROL)
        assert a.pid != b.pid

    def test_kind_single_flit(self):
        assert PacketKind.CONTROL.is_single_flit
        assert PacketKind.NOTIFICATION.is_single_flit
        assert not PacketKind.DATA.is_single_flit


class TestFragment:
    def test_single_flit_is_head_and_tail(self):
        packet = Packet(src=0, dst=1, kind=PacketKind.CONTROL, size_flits=1)
        flits = fragment(packet)
        assert len(flits) == 1
        assert flits[0].is_head and flits[0].is_tail

    def test_multi_flit_structure(self):
        packet = Packet(src=0, dst=1, kind=PacketKind.DATA, size_flits=5)
        flits = fragment(packet)
        assert len(flits) == 5
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])
        assert all(f.packet is packet for f in flits)


class TestConfig:
    def test_paper_config_is_table1(self):
        assert PAPER_CONFIG.n_routers == 16
        assert PAPER_CONFIG.n_nodes == 32
        assert PAPER_CONFIG.words_per_block == 16
        assert PAPER_CONFIG.uncompressed_data_flits == 9

    def test_tiny_config(self):
        assert TINY_CONFIG.n_nodes == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            NocConfig(mesh_width=0)
        with pytest.raises(ValueError):
            NocConfig(num_vcs=0)
        with pytest.raises(ValueError):
            NocConfig(flit_bytes=0)

    def test_full_system_mesh(self):
        """The §5.4 full-system 8x8 mesh with 64 cores."""
        config = NocConfig(mesh_width=8, mesh_height=8, concentration=1)
        assert config.n_nodes == 64
        assert config.n_routers == 64

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.mesh_width = 8  # type: ignore[misc]
