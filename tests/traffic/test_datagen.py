"""Tests for benchmark value models and block generation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import DataType
from repro.traffic.datagen import BlockGenerator, ValueModel
from repro.util.rng import DeterministicRng


def make_gen(seed=1, **kw):
    model = ValueModel(name="test", **kw)
    return BlockGenerator(model, DeterministicRng(seed))


class TestValueModel:
    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            ValueModel(name="bad", p_zero=0.5, p_small=0.4, p_pool=0.3)

    def test_pool_size_validated(self):
        with pytest.raises(ValueError):
            ValueModel(name="bad", pool_size=0)


class TestBlockGenerator:
    def test_block_geometry(self):
        gen = make_gen()
        block = gen.next_block(words=16)
        assert len(block) == 16
        assert block.size_bytes == 64

    def test_dtype_respected(self):
        int_gen = make_gen(dtype=DataType.INT)
        float_gen = make_gen(dtype=DataType.FLOAT)
        assert int_gen.next_block().dtype is DataType.INT
        assert float_gen.next_block().dtype is DataType.FLOAT

    def test_approximable_flag(self):
        gen = make_gen()
        assert gen.next_block(approximable=True).approximable
        assert not gen.next_block(approximable=False).approximable

    def test_determinism(self):
        a = make_gen(seed=9)
        b = make_gen(seed=9)
        for _ in range(10):
            assert a.next_block().words == b.next_block().words

    def test_seeds_differ(self):
        a, b = make_gen(seed=1), make_gen(seed=2)
        blocks_a = [a.next_block().words for _ in range(5)]
        blocks_b = [b.next_block().words for _ in range(5)]
        assert blocks_a != blocks_b

    def test_zero_fraction_matches_model(self):
        gen = make_gen(p_zero=0.5, p_small=0.1, p_pool=0.2,
                       p_block_coherent=0.0)
        words = [w for _ in range(300) for w in gen.next_block(16)]
        zero_frac = sum(1 for w in words if w == 0) / len(words)
        assert 0.42 <= zero_frac <= 0.58

    def test_pool_produces_repetition(self):
        gen = make_gen(p_zero=0.0, p_small=0.0, p_pool=1.0, pool_size=4,
                       exact_repeat=1.0, phase_length=10_000,
                       p_block_coherent=0.0)
        words = [w for _ in range(50) for w in gen.next_block(16)]
        assert len(set(words)) <= 4

    def test_phase_mutation_changes_pool(self):
        gen = make_gen(p_zero=0.0, p_small=0.0, p_pool=1.0, pool_size=4,
                       exact_repeat=1.0, phase_length=5, phase_churn=1.0,
                       p_block_coherent=0.0)
        early = {w for _ in range(4) for w in gen.next_block(16)}
        for _ in range(30):
            gen.next_block(16)
        late = {w for _ in range(4) for w in gen.next_block(16)}
        assert early != late

    def test_zipf_concentrates_draws(self):
        flat = make_gen(p_zero=0, p_small=0, p_pool=1.0, pool_size=16,
                        exact_repeat=1.0, pool_zipf=0.0,
                        phase_length=10_000, p_block_coherent=0.0)
        skewed = make_gen(p_zero=0, p_small=0, p_pool=1.0, pool_size=16,
                          exact_repeat=1.0, pool_zipf=2.0,
                          phase_length=10_000, p_block_coherent=0.0)

        def top_share(gen):
            from collections import Counter
            words = [w for _ in range(200) for w in gen.next_block(16)]
            counts = Counter(words)
            return counts.most_common(1)[0][1] / len(words)

        assert top_share(skewed) > top_share(flat)

    def test_coherent_blocks_have_low_variance(self):
        gen = make_gen(p_block_coherent=1.0, scale=1e5,
                       coherent_spread=0.001)
        block = gen.next_block(16)
        values = block.as_ints()
        spread = max(values) - min(values)
        assert spread <= abs(max(values, key=abs)) * 0.01 + 50

    @given(st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_words_are_valid_patterns(self, seed):
        gen = make_gen(seed=seed)
        for word in gen.next_block(16):
            assert 0 <= word <= 0xFFFFFFFF
