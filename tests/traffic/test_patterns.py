"""Tests for destination patterns."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import (
    bit_complement,
    bit_reverse,
    get_pattern,
    hotspot,
    neighbor,
    transpose,
    uniform_random,
)
from repro.util.rng import DeterministicRng

TOPO = MeshTopology(NocConfig())  # 4x4 cmesh, 32 nodes
RNG = lambda: DeterministicRng(3)


class TestUniformRandom:
    def test_never_self(self):
        rng = RNG()
        for _ in range(200):
            assert uniform_random(5, TOPO, rng) != 5

    def test_covers_all_destinations(self):
        rng = RNG()
        seen = {uniform_random(0, TOPO, rng) for _ in range(2000)}
        assert seen == set(range(1, 32))


class TestTranspose:
    def test_mirror_router(self):
        # node 2 on router 1 (1,0) -> router (0,1) = router 4, same slot
        dst = transpose(2, TOPO, RNG())
        assert TOPO.router_of(dst) == TOPO.router_at(0, 1)
        assert TOPO.local_port_of(dst) == TOPO.local_port_of(2)

    def test_diagonal_is_silent(self):
        # node 0 on router 0 (0,0): its own mirror
        assert transpose(0, TOPO, RNG()) is None

    def test_involution(self):
        """Applying transpose twice returns the original node."""
        rng = RNG()
        for src in range(32):
            dst = transpose(src, TOPO, rng)
            if dst is None:
                continue
            assert transpose(dst, TOPO, rng) == src


class TestBitPatterns:
    def test_complement(self):
        assert bit_complement(0, TOPO, RNG()) == 31
        assert bit_complement(5, TOPO, RNG()) == 26

    def test_reverse(self):
        # 5 bits: 00001 -> 10000
        assert bit_reverse(1, TOPO, RNG()) == 16

    def test_power_of_two_required(self):
        topo = MeshTopology(NocConfig(mesh_width=3, mesh_height=1,
                                      concentration=1))
        with pytest.raises(ValueError):
            bit_complement(0, topo, RNG())


class TestOthers:
    def test_neighbor_wraps(self):
        assert neighbor(31, TOPO, RNG()) == 0

    def test_hotspot_targets_node_zero(self):
        rng = RNG()
        hits = sum(1 for _ in range(3000) if hotspot(7, TOPO, rng) == 0)
        assert 0.08 < hits / 3000 < 0.20  # ~10% plus uniform share

    def test_lookup(self):
        assert get_pattern("transpose") is transpose
        with pytest.raises(ValueError):
            get_pattern("nope")
