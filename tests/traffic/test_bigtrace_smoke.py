"""Big-trace streaming smoke (CI leg; set ``REPRO_BIGTRACE=1`` to run).

Records a ~100k-record 16x16 trace through the real CLI, then checks the
two claims DESIGN.md §17 makes at scale: streamed binary replay is
stats-identical to the JSONL path, and its peak traced memory stays far
below the trace size (O(chunk), not O(trace)).
"""

import os
import tracemalloc

import pytest

from repro.harness.experiment import make_scheme
from repro.noc import Network, NocConfig
from repro.traffic import StreamingTraceTraffic, TraceFile, TraceTraffic, load_trace
from repro.traffic.__main__ import main

pytestmark = pytest.mark.skipif(
    not os.environ.get("REPRO_BIGTRACE"),
    reason="big-trace smoke: set REPRO_BIGTRACE=1 (CI perf leg)")

CONFIG = NocConfig(mesh_width=16, mesh_height=16, concentration=1)
MIN_RECORDS = 100_000
REPLAY_CYCLES = 1_000
PEAK_CEILING_MB = 32.0


@pytest.fixture(scope="module")
def big_trace(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("bigtrace")
    binary = tmp / "big.rpt"
    # rate 0.43 flits/node/cycle ≈ 37 records/cycle on 256 nodes, so
    # 3600 cycles lands ≈ 130k records.
    assert main(["record", str(binary), "--cycles", "3600",
                 "--pattern", "uniform_random", "--rate", "0.43",
                 "--mesh", "16x16", "--concentration", "1",
                 "--seed", "23"]) == 0
    jsonl = tmp / "big.jsonl"
    assert main(["convert", str(binary), str(jsonl)]) == 0
    with TraceFile(binary) as trace:
        assert len(trace) >= MIN_RECORDS
    return str(binary), str(jsonl)


def _replay(source):
    network = Network(CONFIG, make_scheme("DI-VAXX", CONFIG.n_nodes))
    network.set_traffic(source)
    network.run(REPLAY_CYCLES)
    return network.stats.simulation_outputs()


def test_streamed_replay_matches_jsonl(big_trace):
    binary, jsonl = big_trace
    assert (_replay(StreamingTraceTraffic(binary, loop=True))
            == _replay(TraceTraffic(load_trace(jsonl), loop=True)))


def test_streamed_peak_memory_is_o_chunk(big_trace):
    binary, _jsonl = big_trace
    trace_bytes = os.path.getsize(binary)
    network = Network(CONFIG, make_scheme("DI-VAXX", CONFIG.n_nodes))
    tracemalloc.start()
    source = StreamingTraceTraffic(binary, loop=True)
    network.set_traffic(source)
    network.run(REPLAY_CYCLES)
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert peak < PEAK_CEILING_MB * 1024 * 1024
    # The replay (simulator included) must cost less than materializing
    # the trace would: the file alone is multiple MiB of records+heap.
    assert trace_bytes > 3 * 1024 * 1024
