"""Network-level bit-identity of streamed binary replay (DESIGN.md §17).

``StreamingTraceTraffic`` must be indistinguishable from ``TraceTraffic``
to the simulator: identical ``simulation_outputs()`` AND identical
delivered word streams, on every core backend, with the event horizon on
or off — and the horizon must still skip on a streamed low-load trace
(chunked lookahead preserves quiescence detection, not just results).
"""

import pytest

from repro.harness.experiment import (
    benchmark_trace,
    make_scheme,
    run_trace,
    trace_source,
)
from repro.noc import Network, NocConfig
from repro.traffic import (
    StreamingTraceTraffic,
    SyntheticTraffic,
    TraceTraffic,
    record_trace,
    save_trace,
    write_trace,
)

CONFIG = NocConfig(mesh_width=4, mesh_height=4)


def _has_numpy() -> bool:
    try:
        import numpy  # noqa: F401
        return True
    except ImportError:
        return False


CORES = ["object", "soa"] + (["numpy"] if _has_numpy() else [])


@pytest.fixture(scope="module")
def trace_paths(tmp_path_factory):
    """One recorded benchmark trace in all three representations."""
    tmp = tmp_path_factory.mktemp("traces")
    records = benchmark_trace(CONFIG, "blackscholes", cycles=400, seed=9)
    jsonl = tmp / "trace.jsonl"
    binary = tmp / "trace.rpt"
    save_trace(records, jsonl)
    write_trace(records, binary, n_nodes=CONFIG.n_nodes, chunk_records=64)
    return records, str(jsonl), str(binary)


class TestRunTraceIdentity:
    @pytest.mark.parametrize("core", CORES)
    @pytest.mark.parametrize("event_horizon", [True, False])
    def test_all_representations_identical(self, trace_paths, core,
                                           event_horizon):
        records, jsonl, binary = trace_paths
        outputs = [
            run_trace(CONFIG, "DI-VAXX", trace, warmup=100, measure=250,
                      core=core, event_horizon=event_horizon
                      ).simulation_outputs()
            for trace in (records, jsonl, binary)
        ]
        assert outputs[0] == outputs[1] == outputs[2]

    def test_approx_override_identical(self, trace_paths):
        records, _jsonl, binary = trace_paths
        from_list = run_trace(CONFIG, "FP-VAXX", records, warmup=100,
                              measure=250, approx_override=0.6)
        from_binary = run_trace(CONFIG, "FP-VAXX", binary, warmup=100,
                                measure=250, approx_override=0.6)
        assert from_list.simulation_outputs() == \
            from_binary.simulation_outputs()

    def test_record_window_identical(self, trace_paths):
        records, _jsonl, binary = trace_paths
        ordered = sorted(records, key=lambda r: r.cycle)
        from_list = run_trace(CONFIG, "Baseline", ordered[40:160],
                              warmup=50, measure=150)
        windowed = run_trace(CONFIG, "Baseline", binary, warmup=50,
                             measure=150, trace_start=40, trace_stop=160)
        assert from_list.simulation_outputs() == \
            windowed.simulation_outputs()


class TestDeliveredWordStreams:
    def _delivered(self, source):
        deliveries = []

        def on_deliver(packet, block, now):
            deliveries.append((
                packet.src, packet.dst, packet.kind,
                tuple(block.words) if block is not None else None, now))

        network = Network(CONFIG, make_scheme("DI-VAXX", CONFIG.n_nodes),
                          on_deliver=on_deliver)
        network.set_traffic(source)
        network.run(600)
        return deliveries, network.stats.simulation_outputs()

    def test_streamed_words_bit_identical(self, trace_paths):
        records, _jsonl, binary = trace_paths
        ref_deliveries, ref_outputs = self._delivered(
            TraceTraffic(list(records), loop=True))
        stream_deliveries, stream_outputs = self._delivered(
            StreamingTraceTraffic(binary, loop=True))
        assert ref_outputs == stream_outputs
        assert ref_deliveries == stream_deliveries
        assert ref_deliveries  # the workload actually delivered data


class TestStreamedEventHorizon:
    def test_skips_on_streamed_lowload_trace(self, tmp_path):
        config = NocConfig(mesh_width=4, mesh_height=4)
        source = SyntheticTraffic(config, injection_rate=0.002, seed=3,
                                  data_ratio=1.0)
        records = record_trace(source, 4000)
        path = tmp_path / "lowload.rpt"
        write_trace(records, path, n_nodes=config.n_nodes)
        skipping = run_trace(config, "Baseline", str(path), warmup=500,
                             measure=3000, event_horizon=True)
        stepping = run_trace(config, "Baseline", str(path), warmup=500,
                             measure=3000, event_horizon=False)
        assert skipping.simulation_outputs() == \
            stepping.simulation_outputs()
        assert skipping.skipped_cycles > 0
        assert stepping.skipped_cycles == 0
