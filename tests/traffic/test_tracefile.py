"""Tests for the memory-mapped binary trace format (DESIGN.md §17).

Round-trip properties are hypothesis-driven: arbitrary valid record
streams must survive ``write_trace`` -> ``TraceFile`` unchanged and
re-encode byte-identically; corrupt containers must be rejected with an
error naming the offending location.  The streaming replayer is checked
protocol-call-by-protocol-call against :class:`TraceTraffic` on the
identical records (the network-level identity suite lives in
``test_streaming_identity.py``).
"""

import os
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import DataType
from repro.noc.packet import PacketKind
from repro.traffic.trace import (
    TraceFormatError,
    TraceRecord,
    TraceTraffic,
    iter_trace,
    load_trace,
    save_trace,
    validate_record,
)
from repro.traffic.tracefile import (
    MAGIC,
    StreamingTraceTraffic,
    TraceFile,
    TraceFileWriter,
    binary_to_jsonl,
    import_gem5_trace,
    is_binary_trace,
    jsonl_to_binary,
    write_trace,
)

N_NODES = 16


@st.composite
def record_streams(draw, max_records=40):
    """Cycle-sorted streams of valid records on an ``N_NODES`` mesh."""
    n = draw(st.integers(min_value=0, max_value=max_records))
    records = []
    cycle = 0
    for _ in range(n):
        cycle += draw(st.integers(min_value=0, max_value=3))
        src = draw(st.integers(min_value=0, max_value=N_NODES - 1))
        dst = draw(st.integers(min_value=0, max_value=N_NODES - 2))
        if dst >= src:
            dst += 1
        kind = draw(st.sampled_from(list(PacketKind)))
        if kind is PacketKind.DATA:
            words = tuple(draw(st.lists(
                st.integers(min_value=0, max_value=(1 << 32) - 1),
                min_size=1, max_size=16)))
            records.append(TraceRecord(
                cycle=cycle, src=src, dst=dst, kind=kind, words=words,
                dtype=draw(st.sampled_from([DataType.INT, DataType.FLOAT])),
                approximable=draw(st.booleans())))
        else:
            records.append(TraceRecord(cycle=cycle, src=src, dst=dst,
                                       kind=kind))
    return records


def _write(records, path, chunk_records=8):
    return write_trace(records, path, n_nodes=N_NODES,
                       chunk_records=chunk_records)


class TestBinaryRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(records=record_streams())
    def test_roundtrip_and_reencode_byte_identical(self, records,
                                                   tmp_path_factory):
        tmp = tmp_path_factory.mktemp("rt")
        path = tmp / "t.rpt"
        assert _write(records, path) == len(records)
        with TraceFile(path) as trace:
            assert len(trace) == len(records)
            assert list(trace.iter_records()) == records
            trace.validate()
            # Re-encoding the decoded records must reproduce the file
            # byte for byte: the format has exactly one encoding.
            again = tmp / "t2.rpt"
            _write(list(trace.iter_records()), again)
            assert again.read_bytes() == path.read_bytes()

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.rpt"
        assert _write([], path) == 0
        with TraceFile(path) as trace:
            assert len(trace) == 0
            assert trace.last_cycle == -1
            assert list(trace.iter_records()) == []
            trace.validate()

    def test_info_summarizes_header(self, tmp_path):
        records = [TraceRecord(cycle=c, src=0, dst=1,
                               kind=PacketKind.CONTROL)
                   for c in range(20)]
        path = tmp_path / "t.rpt"
        _write(records, path, chunk_records=8)
        with TraceFile(path) as trace:
            info = trace.info()
        assert info["records"] == 20
        assert info["n_nodes"] == N_NODES
        assert info["chunk_records"] == 8
        assert info["chunks"] == 3
        assert info["first_cycle"] == 0
        assert info["last_cycle"] == 19

    @settings(max_examples=25, deadline=None)
    @given(records=record_streams(), probe=st.integers(min_value=0,
                                                       max_value=140))
    def test_seek_cycle_matches_linear_scan(self, records, probe,
                                            tmp_path_factory):
        path = tmp_path_factory.mktemp("seek") / "t.rpt"
        _write(records, path, chunk_records=4)
        expected = next((i for i, r in enumerate(records)
                         if r.cycle >= probe), len(records))
        with TraceFile(path) as trace:
            assert trace.seek_cycle(probe) == expected

    def test_is_binary_trace_distinguishes_formats(self, tmp_path):
        binary = tmp_path / "t.rpt"
        jsonl = tmp_path / "t.jsonl"
        records = [TraceRecord(cycle=0, src=0, dst=1,
                               kind=PacketKind.CONTROL)]
        _write(records, binary)
        save_trace(records, jsonl)
        assert is_binary_trace(binary)
        assert not is_binary_trace(jsonl)


class TestCorruptionRejected:
    def _records(self):
        return [TraceRecord(cycle=c, src=c % 3, dst=(c % 3) + 1,
                            kind=PacketKind.DATA, words=(c, c + 1),
                            dtype=DataType.INT)
                for c in range(30)]

    def _written(self, tmp_path):
        path = tmp_path / "t.rpt"
        _write(self._records(), path)
        return path

    def test_shorter_than_header(self, tmp_path):
        path = tmp_path / "t.rpt"
        path.write_bytes(b"\x00" * 10)
        with pytest.raises(TraceFormatError, match="smaller than"):
            TraceFile(path)

    def test_bad_magic_names_converter(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[:4] = b"XXXX"
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError,
                           match="bad magic.*repro.traffic convert"):
            TraceFile(path)

    def test_unsupported_version(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        raw[8] = 99  # version field follows the 8-byte magic
        path.write_bytes(bytes(raw))
        with pytest.raises(TraceFormatError, match="version 99"):
            TraceFile(path)

    def test_truncated_file(self, tmp_path):
        path = self._written(tmp_path)
        raw = path.read_bytes()
        path.write_bytes(raw[:len(raw) - 40])
        with pytest.raises(TraceFormatError,
                           match="truncated or corrupt"):
            TraceFile(path)

    def test_corrupt_kind_code_names_record(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        # Record 2's kind byte: header + 2 records + cycle(8)+src(4)+dst(4).
        offset = 72 + 2 * 32 + 16
        raw[offset] = 250
        path.write_bytes(bytes(raw))
        with TraceFile(path) as trace:
            with pytest.raises(TraceFormatError,
                               match=r"record 2.*unknown kind"):
                trace.record(2)

    def test_heap_overrun_names_record(self, tmp_path):
        path = self._written(tmp_path)
        raw = bytearray(path.read_bytes())
        # Record 0's nwords field (offset 20 inside the record).
        raw[72 + 20] = 255
        path.write_bytes(bytes(raw))
        with TraceFile(path) as trace:
            with pytest.raises(TraceFormatError,
                               match=r"record 0.*overruns"):
                trace.record(0)

    def test_writer_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "t.rpt"
        with pytest.raises(RuntimeError):
            with TraceFileWriter(path, n_nodes=N_NODES) as writer:
                writer.append(TraceRecord(cycle=0, src=0, dst=1,
                                          kind=PacketKind.CONTROL))
                raise RuntimeError("boom")
        assert not os.path.exists(path)
        assert not os.path.exists(str(path) + ".heap.tmp")

    def test_writer_rejects_out_of_order_cycles(self, tmp_path):
        path = tmp_path / "t.rpt"
        with pytest.raises(TraceFormatError,
                           match=r"record 1.*goes backwards"):
            with TraceFileWriter(path, n_nodes=N_NODES) as writer:
                writer.append(TraceRecord(cycle=5, src=0, dst=1,
                                          kind=PacketKind.CONTROL))
                writer.append(TraceRecord(cycle=4, src=0, dst=1,
                                          kind=PacketKind.CONTROL))
        assert not os.path.exists(path)

    def test_writer_rejects_node_outside_mesh(self, tmp_path):
        with pytest.raises(TraceFormatError, match="outside the mesh"):
            with TraceFileWriter(tmp_path / "t.rpt", n_nodes=4) as writer:
                writer.append(TraceRecord(cycle=0, src=0, dst=9,
                                          kind=PacketKind.CONTROL))


class TestRecordValidation:
    def _control(self, **kw):
        base = dict(cycle=0, src=0, dst=1, kind=PacketKind.CONTROL)
        base.update(kw)
        return TraceRecord(**base)

    @pytest.mark.parametrize("record,pattern", [
        (TraceRecord(cycle=-1, src=0, dst=1, kind=PacketKind.CONTROL),
         "negative cycle"),
        (TraceRecord(cycle=0, src=2, dst=2, kind=PacketKind.CONTROL),
         "src and dst are both"),
        (TraceRecord(cycle=0, src=0, dst=99, kind=PacketKind.CONTROL),
         r"dst node 99 outside the mesh"),
        (TraceRecord(cycle=0, src=-3, dst=1, kind=PacketKind.CONTROL),
         r"src node -3 outside the mesh"),
        (TraceRecord(cycle=0, src=0, dst=1, kind=PacketKind.DATA,
                     words=()), "carries no words"),
        (TraceRecord(cycle=0, src=0, dst=1, kind=PacketKind.DATA,
                     words=(1 << 32,)), r"word 0 is .*2\*\*32"),
        (TraceRecord(cycle=0, src=0, dst=1, kind=PacketKind.CONTROL,
                     words=(1,)), "must not carry words"),
    ])
    def test_invalid_records_rejected(self, record, pattern):
        with pytest.raises(TraceFormatError, match=pattern):
            validate_record(record, prev_cycle=-1, n_nodes=N_NODES,
                            where="here")

    def test_backwards_cycle_names_previous(self):
        with pytest.raises(TraceFormatError,
                           match="cycle 3 goes backwards.*cycle 7"):
            validate_record(self._control(cycle=3), prev_cycle=7,
                            n_nodes=N_NODES, where="here")

    def test_unknown_n_nodes_skips_range_check(self):
        validate_record(self._control(dst=10_000), prev_cycle=-1,
                        n_nodes=None, where="here")


class TestJsonlErrors:
    def test_error_names_file_and_line(self, tmp_path):
        path = tmp_path / "t.jsonl"
        good = TraceRecord(cycle=0, src=0, dst=1,
                           kind=PacketKind.CONTROL).to_json()
        path.write_text(good + "\n" + '{"c":1,"s":2}\n')
        with pytest.raises(TraceFormatError,
                           match=r"t\.jsonl:2: missing required field"):
            load_trace(path)

    def test_not_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("not json\n")
        with pytest.raises(TraceFormatError,
                           match=r"t\.jsonl:1: not valid JSON"):
            load_trace(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"c":0,"s":0,"d":1,"k":"warp"}\n')
        with pytest.raises(TraceFormatError, match="unknown packet kind"):
            load_trace(path)

    def test_word_out_of_range(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"c":0,"s":0,"d":1,"k":"data","w":[-5]}\n')
        with pytest.raises(TraceFormatError, match="word 0 is -5"):
            load_trace(path)

    def test_cycle_monotonicity_across_stream(self, tmp_path):
        path = tmp_path / "t.jsonl"
        records = [TraceRecord(cycle=5, src=0, dst=1,
                               kind=PacketKind.CONTROL),
                   TraceRecord(cycle=2, src=0, dst=1,
                               kind=PacketKind.CONTROL)]
        with open(path, "w") as fh:
            for record in records:
                fh.write(record.to_json() + "\n")
        with pytest.raises(TraceFormatError,
                           match=r"t\.jsonl:2.*goes backwards"):
            load_trace(path)

    def test_mesh_range_enforced_when_given(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"c":0,"s":0,"d":7,"k":"control"}\n')
        assert load_trace(path)  # fine without a mesh bound
        with pytest.raises(TraceFormatError, match="outside the mesh"):
            load_trace(path, n_nodes=4)


class TestStreamingIO:
    def test_iter_trace_streams_same_records(self, tmp_path):
        records = [TraceRecord(cycle=c, src=0, dst=1,
                               kind=PacketKind.CONTROL) for c in range(9)]
        path = tmp_path / "t.jsonl"
        save_trace(records, path)
        assert list(iter_trace(path)) == records == load_trace(path)

    def test_save_trace_accepts_generator(self, tmp_path):
        def generated():
            for c in range(5):
                yield TraceRecord(cycle=c, src=0, dst=1,
                                  kind=PacketKind.CONTROL)
        path = tmp_path / "t.jsonl"
        save_trace(generated(), path)
        assert len(load_trace(path)) == 5

    def test_write_trace_accepts_generator(self, tmp_path):
        def generated():
            for c in range(5):
                yield TraceRecord(cycle=c, src=0, dst=1,
                                  kind=PacketKind.CONTROL)
        path = tmp_path / "t.rpt"
        assert _write(generated(), path) == 5


class TestConverters:
    def _records(self):
        return [TraceRecord(cycle=c, src=c % 4, dst=(c % 4) + 1,
                            kind=PacketKind.DATA if c % 3 == 0
                            else PacketKind.CONTROL,
                            words=(c, 7) if c % 3 == 0 else None,
                            dtype=DataType.FLOAT if c % 6 == 0
                            else DataType.INT,
                            approximable=c % 2 == 0 and c % 3 == 0)
                for c in range(25)]

    def test_jsonl_binary_jsonl_byte_identical(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.rpt"
        back = tmp_path / "back.jsonl"
        save_trace(self._records(), jsonl)
        assert jsonl_to_binary(jsonl, binary, n_nodes=N_NODES) == 25
        assert binary_to_jsonl(binary, back) == 25
        assert back.read_bytes() == jsonl.read_bytes()

    def test_jsonl_to_binary_infers_mesh(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        binary = tmp_path / "t.rpt"
        save_trace(self._records(), jsonl)
        jsonl_to_binary(jsonl, binary)
        with TraceFile(binary) as trace:
            assert trace.n_nodes == 5  # max node id + 1

    def test_empty_jsonl_needs_explicit_nodes(self, tmp_path):
        jsonl = tmp_path / "t.jsonl"
        jsonl.write_text("")
        with pytest.raises(TraceFormatError, match="empty trace"):
            jsonl_to_binary(jsonl, tmp_path / "t.rpt")

    def test_gem5_import(self, tmp_path):
        src = tmp_path / "gem5.txt"
        src.write_text(
            "# cycle src dst type words\n"
            "0 0 1 control\n"
            "2 1 3 data 0xdeadbeef,16,7 approx\n"
            "2 3 0 data 1,2\n"
            "\n"
            "9 2 1 nack  # trailing comment\n")
        binary = tmp_path / "t.rpt"
        count, n_nodes = import_gem5_trace(src, binary)
        assert (count, n_nodes) == (4, 4)
        with TraceFile(binary) as trace:
            records = list(trace.iter_records())
        assert records[1].words == (0xDEADBEEF, 16, 7)
        assert records[1].approximable
        assert records[3].kind is PacketKind.NACK

    @pytest.mark.parametrize("line,pattern", [
        ("0 0 1", "expected '<cycle>"),
        ("x 0 1 control", "must be integers"),
        ("0 0 1 warp", "unknown packet type"),
        ("0 0 1 data", "needs a comma-separated word list"),
        ("0 0 1 data 1,zap", "malformed word list"),
        ("0 0 1 control 1,2", "must not carry words"),
    ])
    def test_gem5_errors_name_line(self, tmp_path, line, pattern):
        src = tmp_path / "gem5.txt"
        src.write_text(line + "\n")
        with pytest.raises(TraceFormatError,
                           match=r"gem5\.txt:1.*" + pattern.split()[0]):
            import_gem5_trace(src, tmp_path / "t.rpt", n_nodes=4)


def _drain(source, cycles):
    """Full observable protocol transcript over a cycle range."""
    transcript = []
    for cycle in range(cycles):
        arrival = source.next_arrival(cycle, limit=cycle + 50)
        requests = source.generate(cycle)
        transcript.append((
            arrival, source.exhausted(cycle),
            [(r.src, r.dst, r.kind,
              tuple(r.block.words) if r.block else None,
              r.block.approximable if r.block else None)
             for r in requests]))
    return transcript


class TestStreamingParity:
    """StreamingTraceTraffic vs TraceTraffic, call for call."""

    @settings(max_examples=25, deadline=None)
    @given(records=record_streams(), loop=st.booleans(),
           override=st.sampled_from([None, 0.25, 0.75]))
    def test_protocol_transcripts_identical(self, records, loop, override,
                                            tmp_path_factory):
        path = tmp_path_factory.mktemp("par") / "t.rpt"
        _write(records, path, chunk_records=4)
        cycles = (records[-1].cycle + 5) * 2 if records else 10
        reference = TraceTraffic(list(records), loop=loop,
                                 approx_override=override)
        streaming = StreamingTraceTraffic(path, loop=loop,
                                          approx_override=override)
        assert _drain(streaming, cycles) == _drain(reference, cycles)

    def test_window_matches_sliced_list(self, tmp_path):
        records = [TraceRecord(cycle=c // 2, src=c % 3, dst=(c % 3) + 1,
                               kind=PacketKind.CONTROL)
                   for c in range(30)]
        path = tmp_path / "t.rpt"
        _write(records, path, chunk_records=4)
        reference = TraceTraffic(records[5:20], loop=True)
        streaming = StreamingTraceTraffic(path, loop=True, start=5,
                                          stop=20)
        assert _drain(streaming, 60) == _drain(reference, 60)

    def test_empty_window_rejected(self, tmp_path):
        path = tmp_path / "t.rpt"
        _write([TraceRecord(cycle=0, src=0, dst=1,
                            kind=PacketKind.CONTROL)], path)
        with pytest.raises(TraceFormatError, match="empty or inverted"):
            StreamingTraceTraffic(path, start=5, stop=2)

    def test_pickle_resumes_mid_replay(self, tmp_path):
        records = [TraceRecord(cycle=c, src=c % 3, dst=(c % 3) + 1,
                               kind=PacketKind.DATA, words=(c,),
                               dtype=DataType.INT)
                   for c in range(20)]
        path = tmp_path / "t.rpt"
        _write(records, path, chunk_records=4)
        original = StreamingTraceTraffic(path, loop=True,
                                         approx_override=0.5)
        _drain(original, 7)
        resumed = pickle.loads(pickle.dumps(original))
        assert _drain(resumed, 40) == _drain(original, 40)

    def test_next_arrival_is_pure(self, tmp_path):
        records = [TraceRecord(cycle=c * 5, src=0, dst=1,
                               kind=PacketKind.CONTROL) for c in range(8)]
        path = tmp_path / "t.rpt"
        _write(records, path, chunk_records=2)
        source = StreamingTraceTraffic(path)
        before = pickle.dumps(source)
        for now in range(0, 40, 3):
            source.next_arrival(now)
            source.next_arrival(now, limit=now + 2)
        assert pickle.dumps(source) == before
