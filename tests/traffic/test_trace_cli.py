"""``python -m repro.traffic`` CLI: record / convert / info / head.

Exercised through ``main(argv)`` so the tests cover argument wiring and
exit codes without spawning subprocesses.
"""

import json

import pytest

from repro.noc import NocConfig
from repro.noc.packet import PacketKind
from repro.traffic import TraceFile, load_trace, save_trace
from repro.traffic.tracefile import is_binary_trace
from repro.traffic.__main__ import main
from repro.traffic.trace import TraceRecord


@pytest.fixture()
def recorded(tmp_path):
    path = tmp_path / "trace.rpt"
    code = main(["record", str(path), "--cycles", "120",
                 "--pattern", "uniform_random", "--rate", "0.2",
                 "--mesh", "2x2", "--seed", "5"])
    assert code == 0
    return path


class TestRecord:
    def test_binary_record_replays(self, recorded):
        with TraceFile(recorded) as trace:
            assert len(trace) > 0
            assert trace.info()["n_nodes"] == NocConfig(
                mesh_width=2, mesh_height=2).n_nodes

    def test_jsonl_record_matches_binary(self, tmp_path, recorded):
        jsonl = tmp_path / "trace.jsonl"
        code = main(["record", str(jsonl), "--cycles", "120",
                     "--pattern", "uniform_random", "--rate", "0.2",
                     "--mesh", "2x2", "--seed", "5", "--jsonl"])
        assert code == 0
        with TraceFile(recorded) as trace:
            assert load_trace(str(jsonl)) == list(trace.iter_records())

    def test_benchmark_source(self, tmp_path):
        path = tmp_path / "bench.rpt"
        assert main(["record", str(path), "--cycles", "80",
                     "--benchmark", "ssca2", "--mesh", "2x2"]) == 0
        with TraceFile(path) as trace:
            assert len(trace) > 0

    def test_bad_mesh_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["record", str(tmp_path / "t.rpt"), "--cycles", "10",
                  "--pattern", "uniform_random", "--mesh", "notamesh"])


class TestConvert:
    def test_roundtrip_via_cli(self, tmp_path, recorded):
        jsonl = tmp_path / "out.jsonl"
        back = tmp_path / "back.rpt"
        assert main(["convert", str(recorded), str(jsonl)]) == 0
        assert not is_binary_trace(str(jsonl))
        assert main(["convert", str(jsonl), str(back)]) == 0
        assert back.read_bytes() == recorded.read_bytes()

    def test_gem5_import(self, tmp_path):
        src = tmp_path / "gem5.txt"
        src.write_text("# comment\n5 0 3 data 1,2\n"
                       "9 1 2 control\n")
        dst = tmp_path / "gem5.rpt"
        assert main(["convert", str(src), str(dst), "--gem5",
                     "--nodes", "4"]) == 0
        with TraceFile(dst) as trace:
            assert len(trace) == 2

    def test_corrupt_input_exits_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"cycle": 0}\n')
        assert main(["convert", str(bad), str(tmp_path / "o.rpt"),
                     "--nodes", "4"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_input_exits_one(self, tmp_path, capsys):
        assert main(["convert", str(tmp_path / "absent.rpt"),
                     str(tmp_path / "o.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestInfoAndHead:
    def test_info_json_binary(self, recorded, capsys):
        assert main(["info", str(recorded), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        with TraceFile(recorded) as trace:
            assert payload["records"] == len(trace)
        assert payload["format_version"] == 1

    def test_info_jsonl(self, tmp_path, capsys):
        jsonl = tmp_path / "t.jsonl"
        save_trace([TraceRecord(cycle=3, src=0, dst=1,
                                kind=PacketKind.CONTROL)], jsonl)
        assert main(["info", str(jsonl)]) == 0
        assert "jsonl" in capsys.readouterr().out

    def test_head_prints_first_records(self, recorded, capsys):
        assert main(["head", str(recorded), "-n", "3"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3
        with TraceFile(recorded) as trace:
            expected = [r.to_json() for r in trace.iter_records(stop=3)]
        assert lines == expected
