"""Tests for traffic generators and trace record/replay."""

import pytest

from repro.noc.config import NocConfig
from repro.noc.packet import PacketKind
from repro.traffic.generator import BenchmarkTraffic, SyntheticTraffic
from repro.traffic.profiles import get_benchmark
from repro.traffic.trace import (
    TraceRecord,
    TraceTraffic,
    load_trace,
    record_trace,
    save_trace,
)

CFG = NocConfig()


class TestSyntheticTraffic:
    def test_rate_conversion(self):
        # 0.25 data ratio, 9-flit data packets: mean 3 flits/packet
        source = SyntheticTraffic(CFG, injection_rate=0.3, data_ratio=0.25)
        assert source.packet_rate == pytest.approx(0.1)

    def test_offered_load_close_to_target(self):
        source = SyntheticTraffic(CFG, injection_rate=0.2, data_ratio=0.25,
                                  seed=5)
        flits = 0
        cycles = 800
        for cycle in range(cycles):
            for request in source.generate(cycle):
                flits += 9 if request.kind is PacketKind.DATA else 1
        rate = flits / (cycles * CFG.n_nodes)
        assert 0.17 <= rate <= 0.23

    def test_duration_cuts_off(self):
        source = SyntheticTraffic(CFG, injection_rate=0.5, duration=10)
        assert source.generate(10) == []
        assert source.generate(999) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            SyntheticTraffic(CFG, injection_rate=1.5)
        with pytest.raises(ValueError):
            SyntheticTraffic(CFG, injection_rate=0.5, data_ratio=2.0)

    def test_requests_well_formed(self):
        source = SyntheticTraffic(CFG, injection_rate=0.3, seed=2)
        for cycle in range(50):
            for request in source.generate(cycle):
                assert request.src != request.dst
                assert 0 <= request.src < CFG.n_nodes
                assert 0 <= request.dst < CFG.n_nodes
                if request.kind is PacketKind.DATA:
                    assert len(request.block) == 16

    def test_transpose_pattern_respected(self):
        source = SyntheticTraffic(CFG, pattern="transpose",
                                  injection_rate=0.5, seed=3)
        for cycle in range(30):
            for request in source.generate(cycle):
                back = SyntheticTraffic(CFG, pattern="transpose",
                                        injection_rate=0.5)
                # transpose of the destination is the source
                from repro.traffic.patterns import transpose
                assert transpose(request.dst, source.topology,
                                 source._rng) == request.src


class TestBenchmarkTraffic:
    def test_data_ratio_roughly_respected(self):
        profile = get_benchmark("ssca2")
        source = BenchmarkTraffic(CFG, profile, seed=4)
        kinds = [r.kind for c in range(2000) for r in source.generate(c)]
        data_frac = sum(k is PacketKind.DATA for k in kinds) / len(kinds)
        assert abs(data_frac - profile.data_ratio) < 0.1

    def test_approx_ratio_roughly_respected(self):
        profile = get_benchmark("ssca2")
        source = BenchmarkTraffic(CFG, profile, approx_packet_ratio=0.25,
                                  seed=4)
        blocks = [r.block for c in range(2000) for r in source.generate(c)
                  if r.block is not None]
        frac = sum(b.approximable for b in blocks) / len(blocks)
        assert abs(frac - 0.25) < 0.1

    def test_burstiness_changes_rate_over_time(self):
        profile = get_benchmark("streamcluster")
        source = BenchmarkTraffic(CFG, profile, seed=4)
        per_window = []
        for window in range(8):
            count = sum(len(source.generate(c))
                        for c in range(window * 500, (window + 1) * 500))
            per_window.append(count)
        assert max(per_window) > 1.5 * max(min(per_window), 1)


class TestTraceRoundtrip:
    def _trace(self):
        source = SyntheticTraffic(CFG, injection_rate=0.2, seed=6,
                                  approx_packet_ratio=0.75)
        return record_trace(source, cycles=100)

    def test_record_produces_records(self):
        trace = self._trace()
        assert trace
        assert all(r.cycle < 100 for r in trace)

    def test_json_roundtrip(self, tmp_path):
        trace = self._trace()
        path = tmp_path / "trace.jsonl"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert loaded == trace

    def test_replay_matches_recording(self):
        trace = self._trace()
        replay = TraceTraffic(trace)
        replayed = []
        for cycle in range(100):
            replayed.extend(replay.generate(cycle))
        assert len(replayed) == len(trace)
        for record, request in zip(trace, replayed):
            assert (record.src, record.dst, record.kind) == (
                request.src, request.dst, request.kind)

    def test_loop_restarts(self):
        trace = self._trace()
        replay = TraceTraffic(trace, loop=True)
        count = 0
        for cycle in range(300):
            count += len(replay.generate(cycle))
        assert count > len(trace) * 2

    def test_exhausted(self):
        trace = self._trace()
        replay = TraceTraffic(trace)
        for cycle in range(100):
            replay.generate(cycle)
        assert replay.exhausted(100)

    @pytest.mark.parametrize("ratio", [0.25, 0.5, 0.75])
    def test_approx_override(self, ratio):
        trace = self._trace()
        replay = TraceTraffic(trace, approx_override=ratio)
        blocks = [r.block for c in range(100) for r in replay.generate(c)
                  if r.block is not None]
        frac = sum(b.approximable for b in blocks) / len(blocks)
        assert abs(frac - ratio) < 0.08
