"""Tests for the cache-block data model."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.block import (
    BlockErrorReport,
    CacheBlock,
    DataType,
    relative_word_error,
)
from repro.util.bitops import float_to_bits, to_unsigned


class TestCacheBlock:
    def test_from_ints_roundtrip(self):
        values = [0, 1, -1, 2**31 - 1, -(2**31)]
        block = CacheBlock.from_ints(values)
        assert block.as_ints() == values
        assert block.dtype is DataType.INT

    def test_from_floats_roundtrip(self):
        values = [0.0, 1.5, -2.25]
        block = CacheBlock.from_floats(values, approximable=True)
        assert block.as_floats() == values
        assert block.dtype is DataType.FLOAT
        assert block.approximable

    def test_sizes(self):
        block = CacheBlock.from_ints(range(16))
        assert block.size_bytes == 64
        assert block.size_bits == 512
        assert len(block) == 16

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            CacheBlock(())

    def test_words_are_masked_to_32_bits(self):
        block = CacheBlock((0x1FFFFFFFF,))
        assert block.words == (0xFFFFFFFF,)

    def test_replace_words_preserves_metadata(self):
        block = CacheBlock.from_ints([1, 2], approximable=True)
        replaced = block.replace_words((7, 8))
        assert replaced.words == (7, 8)
        assert replaced.approximable
        assert replaced.dtype is DataType.INT

    def test_iteration(self):
        block = CacheBlock.from_ints([3, 4, 5])
        assert list(block) == [3, 4, 5]

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=16))
    def test_int_roundtrip_property(self, values):
        assert CacheBlock.from_ints(values).as_ints() == values


class TestRelativeWordError:
    def test_identical_int(self):
        assert relative_word_error(to_unsigned(42), to_unsigned(42),
                                   DataType.INT) == 0.0

    def test_int_error(self):
        err = relative_word_error(to_unsigned(100), to_unsigned(95),
                                  DataType.INT)
        assert err == pytest.approx(0.05)

    def test_int_zero_reference_uses_unit_denominator(self):
        err = relative_word_error(to_unsigned(0), to_unsigned(3),
                                  DataType.INT)
        assert err == pytest.approx(3.0)

    def test_negative_int(self):
        err = relative_word_error(to_unsigned(-100), to_unsigned(-90),
                                  DataType.INT)
        assert err == pytest.approx(0.10)

    def test_float_error(self):
        err = relative_word_error(float_to_bits(2.0), float_to_bits(2.1),
                                  DataType.FLOAT)
        assert err == pytest.approx(0.05, rel=1e-3)

    def test_nan_unchanged_is_zero_error(self):
        nan = float_to_bits(float("nan"))
        assert relative_word_error(nan, nan, DataType.FLOAT) == 0.0

    def test_nan_corrupted_is_full_error(self):
        nan = float_to_bits(float("nan"))
        one = float_to_bits(1.0)
        assert relative_word_error(nan, one, DataType.FLOAT) == 1.0

    def test_inf_unchanged(self):
        inf = float_to_bits(float("inf"))
        assert relative_word_error(inf, inf, DataType.FLOAT) == 0.0

    def test_inf_corrupted(self):
        inf = float_to_bits(float("inf"))
        one = float_to_bits(1.0)
        assert relative_word_error(inf, one, DataType.FLOAT) == 1.0

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_self_error_always_zero(self, value):
        pattern = to_unsigned(value)
        assert relative_word_error(pattern, pattern, DataType.INT) == 0.0


class TestBlockErrorReport:
    def test_empty_report_is_perfect(self):
        report = BlockErrorReport()
        assert report.mean_error == 0.0
        assert report.quality == 1.0

    def test_quality_computation(self):
        report = BlockErrorReport(relative_errors=[0.0, 0.1, 0.2])
        assert report.mean_error == pytest.approx(0.1)
        assert report.quality == pytest.approx(0.9)
        assert report.total_words == 3
