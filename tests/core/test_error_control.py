"""Tests for error-control policies and quality accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.block import DataType
from repro.core.error_control import ErrorBudget, WindowErrorBudget
from repro.core.quality import QualityTracker
from repro.util.bitops import to_unsigned


class TestErrorBudget:
    def test_default_policy_admits_everything(self):
        budget = ErrorBudget()
        assert budget.admits(to_unsigned(100), to_unsigned(50), DataType.INT)

    def test_record_returns_relative_error(self):
        budget = ErrorBudget()
        err = budget.record(to_unsigned(100), to_unsigned(90), DataType.INT)
        assert err == pytest.approx(0.10)


class TestWindowErrorBudget:
    def test_admits_within_budget(self):
        budget = WindowErrorBudget(threshold_pct=10, window=4)
        assert budget.admits(to_unsigned(100), to_unsigned(95), DataType.INT)

    def test_rejects_over_budget(self):
        budget = WindowErrorBudget(threshold_pct=10, window=1)
        assert not budget.admits(to_unsigned(100), to_unsigned(80),
                                 DataType.INT)

    def test_window_amortizes_spikes(self):
        """A 20% spike is admitted when surrounded by exact words."""
        budget = WindowErrorBudget(threshold_pct=10, window=4)
        for _ in range(3):
            budget.record(to_unsigned(100), to_unsigned(100), DataType.INT)
        assert budget.admits(to_unsigned(100), to_unsigned(80), DataType.INT)

    def test_rejection_does_not_consume_budget(self):
        budget = WindowErrorBudget(threshold_pct=10, window=1)
        budget.admits(to_unsigned(100), to_unsigned(50), DataType.INT)
        # a small substitution still fits: the rejection left no trace
        assert budget.admits(to_unsigned(100), to_unsigned(95), DataType.INT)

    def test_sliding_window_forgets(self):
        budget = WindowErrorBudget(threshold_pct=10, window=2)
        budget.record(to_unsigned(100), to_unsigned(85), DataType.INT)
        budget.record(to_unsigned(100), to_unsigned(100), DataType.INT)
        budget.record(to_unsigned(100), to_unsigned(100), DataType.INT)
        assert budget.current_mean() == 0.0

    def test_reset(self):
        budget = WindowErrorBudget(threshold_pct=10, window=4)
        budget.record(to_unsigned(100), to_unsigned(80), DataType.INT)
        budget.reset()
        assert budget.current_mean() == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowErrorBudget(window=0)
        with pytest.raises(ValueError):
            WindowErrorBudget(threshold_pct=0)

    @given(st.lists(st.integers(90, 110), min_size=1, max_size=30))
    @settings(max_examples=30, deadline=None)
    def test_admitted_mean_never_exceeds_threshold(self, approxes):
        """Invariant: the window mean stays within the threshold after any
        sequence of admit attempts against reference value 100."""
        budget = WindowErrorBudget(threshold_pct=5, window=8)
        for approx in approxes:
            budget.admits(to_unsigned(100), to_unsigned(approx), DataType.INT)
            assert budget.current_mean() <= 0.05 + 1e-12


class TestQualityTracker:
    def test_empty_tracker_is_perfect(self):
        tracker = QualityTracker()
        assert tracker.data_quality == 1.0
        assert tracker.encoded_fraction == 0.0

    def test_fractions(self):
        tracker = QualityTracker()
        tracker.record_word(encoded=True, approximated=False)
        tracker.record_word(encoded=True, approximated=True,
                            relative_error=0.1)
        tracker.record_word(encoded=False, approximated=False)
        assert tracker.encoded_fraction == pytest.approx(2 / 3)
        assert tracker.exact_fraction == pytest.approx(1 / 3)
        assert tracker.approx_fraction == pytest.approx(1 / 3)
        assert tracker.data_quality == pytest.approx(1 - 0.1 / 3)

    def test_merge(self):
        a, b = QualityTracker(), QualityTracker()
        a.record_word(encoded=True, approximated=False)
        b.record_word(encoded=True, approximated=True, relative_error=0.2)
        b.record_block(approximable=True)
        a.merge(b)
        assert a.total_words == 2
        assert a.approx_encoded_words == 1
        assert a.max_word_error == 0.2
        assert a.approximable_blocks == 1

    def test_as_dict_keys(self):
        tracker = QualityTracker()
        summary = tracker.as_dict()
        assert {"data_quality", "encoded_fraction", "approx_fraction",
                "exact_fraction"} <= set(summary)
