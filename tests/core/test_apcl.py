"""Dedicated tests for ternary patterns and the APCL."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.apcl import Apcl, TernaryPattern
from repro.core.avcl import Avcl
from repro.core.block import DataType
from repro.util.bitops import float_to_bits, to_unsigned

WORDS = st.integers(0, 0xFFFFFFFF)
MASKS = st.integers(0, 23).map(lambda k: (1 << k) - 1)


class TestTernaryPattern:
    def test_masks_are_canonicalized(self):
        t = TernaryPattern(value=0x1FFFFFFFF, mask=0x100000003)
        assert t.value == 0xFFFFFFFF
        assert t.mask == 3

    def test_exact_pattern_matches_only_itself(self):
        t = TernaryPattern(value=0xAB, mask=0)
        assert t.matches(0xAB)
        assert not t.matches(0xAA)

    def test_full_mask_matches_everything(self):
        t = TernaryPattern(value=0, mask=0xFFFFFFFF)
        assert t.matches(0xDEADBEEF)
        assert t.dont_care_bits() == 32

    @given(WORDS, MASKS)
    def test_value_always_matches_own_pattern(self, value, mask):
        assert TernaryPattern(value=value, mask=mask).matches(value)

    @given(WORDS, MASKS, WORDS)
    def test_match_iff_care_bits_equal(self, value, mask, candidate):
        t = TernaryPattern(value=value, mask=mask)
        expected = (candidate & ~mask & 0xFFFFFFFF) == \
            (value & ~mask & 0xFFFFFFFF)
        assert t.matches(candidate) == expected

    @given(WORDS, MASKS)
    def test_covers_is_reflexive(self, value, mask):
        t = TernaryPattern(value=value, mask=mask)
        assert t.covers(t)

    @given(WORDS, st.integers(0, 22))
    def test_wider_pattern_covers_narrower(self, value, k):
        narrow = TernaryPattern(value=value, mask=(1 << k) - 1)
        wide = TernaryPattern(value=value, mask=(1 << (k + 1)) - 1)
        assert wide.covers(narrow)

    @given(WORDS, MASKS, WORDS, MASKS)
    def test_covers_implies_match_subset(self, v1, m1, v2, m2):
        """If A covers B, any word matching B matches A (checked on B's
        extremes)."""
        a = TernaryPattern(value=v1, mask=m1)
        b = TernaryPattern(value=v2, mask=m2)
        if not a.covers(b):
            return
        low = b.value & ~b.mask & 0xFFFFFFFF
        high = low | b.mask
        assert a.matches(low) and a.matches(high)

    def test_str_renders_32_symbols(self):
        t = TernaryPattern(value=0b1001, mask=0b11)
        rendered = str(t)
        assert len(rendered) == 32
        assert set(rendered) <= {"0", "1", "x"}


class TestApcl:
    def test_int_pattern_value_is_the_word(self):
        apcl = Apcl(Avcl(10))
        word = to_unsigned(-70000)
        assert apcl.compute(word, DataType.INT).value == word

    def test_float_pattern_value_is_the_word(self):
        """The ternary lives in word space (the TCAM search key)."""
        apcl = Apcl(Avcl(10))
        word = float_to_bits(3.14159)
        t = apcl.compute(word, DataType.FLOAT)
        assert t.value == word
        assert 0 < t.mask < (1 << 23)  # mantissa-only don't cares

    def test_float_mask_never_touches_exponent(self):
        apcl = Apcl(Avcl(100))
        t = apcl.compute(float_to_bits(1.75), DataType.FLOAT)
        assert t.mask < (1 << 23)

    @given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False))
    def test_any_match_shares_sign_and_exponent(self, value):
        apcl = Apcl(Avcl(20))
        word = float_to_bits(value)
        t = apcl.compute(word, DataType.FLOAT)
        # the top 9 bits (sign+exponent) are always care bits
        assert (t.mask >> 23) == 0

    def test_threshold_widens_mask(self):
        tight = Apcl(Avcl(5)).compute(70000, DataType.INT)
        loose = Apcl(Avcl(20)).compute(70000, DataType.INT)
        assert loose.mask >= tight.mask
