"""Unit and property tests for the Approximate Value Compute Logic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.avcl import Avcl, shift_bits_for_threshold
from repro.core.block import DataType
from repro.util.bitops import (
    bits_to_float,
    float_fields,
    float_to_bits,
    to_signed,
    to_unsigned,
)


class TestShiftPrecompute:
    def test_paper_example_25pct(self):
        # "for an error threshold of 25% ... when the data pattern value is
        # 128, the error_range can be easily determined to be 32"
        shift = shift_bits_for_threshold(25, mode="paper")
        assert 128 >> shift == 32

    def test_paper_mode_10pct(self):
        # 100/10 = 10 -> floor(log2 10) = 3
        assert shift_bits_for_threshold(10, mode="paper") == 3

    def test_strict_mode_rounds_up(self):
        # strict rounds the divisor up: ceil(log2 10) = 4
        assert shift_bits_for_threshold(10, mode="strict") == 4

    def test_equal_at_powers_of_two(self):
        assert (shift_bits_for_threshold(25, mode="paper")
                == shift_bits_for_threshold(25, mode="strict") == 2)

    def test_100pct_threshold(self):
        assert shift_bits_for_threshold(100, mode="paper") == 0

    @pytest.mark.parametrize("bad", [0, -5, 101])
    def test_invalid_threshold(self, bad):
        with pytest.raises(ValueError):
            shift_bits_for_threshold(bad)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            shift_bits_for_threshold(10, mode="fuzzy")


class TestIntegerApproximation:
    def test_paper_example_9_at_20pct(self):
        # Pattern 1001 (9) @ 20% -> approximate pattern "10xx" (2 don't-care
        # bits) per the worked example in §3.2.
        avcl = Avcl(20, mode="paper")
        info = avcl.evaluate_int(9)
        assert info.dont_care_bits == 2
        assert info.matches(8)
        assert info.matches(9)
        assert info.matches(10)
        assert info.matches(11)
        assert not info.matches(12)
        assert not info.matches(7)

    def test_strict_mode_is_conservative(self):
        avcl = Avcl(20, mode="strict")
        info = avcl.evaluate_int(9)
        # strict: divisor 8, range 9>>3 = 1, mask of 1 bit
        assert info.dont_care_bits == 1
        assert info.matches(8)
        assert info.matches(9)
        assert not info.matches(10)

    def test_zero_value_has_no_slack(self):
        avcl = Avcl(20)
        info = avcl.evaluate_int(0)
        assert info.dont_care_bits == 0
        assert info.error_range == 0

    def test_negative_values_use_magnitude(self):
        avcl = Avcl(20, mode="paper")
        pos = avcl.evaluate_int(9)
        neg = avcl.evaluate_int(to_unsigned(-9))
        assert neg.dont_care_bits == pos.dont_care_bits

    def test_negative_match_is_nearby(self):
        avcl = Avcl(20, mode="paper")
        info = avcl.evaluate_int(to_unsigned(-9))
        # -9 = ...10111; with 2 don't-care bits the block is [-12, -9]
        assert info.matches(to_unsigned(-12))
        assert info.matches(to_unsigned(-9))
        assert not info.matches(to_unsigned(-8))

    def test_set_threshold_updates_shift(self):
        avcl = Avcl(5)
        before = avcl.shift
        avcl.set_threshold(20)
        assert avcl.shift < before
        assert avcl.error_threshold_pct == 20

    @given(st.integers(-(2**31), 2**31 - 1),
           st.sampled_from([5.0, 10.0, 20.0, 25.0, 50.0]))
    def test_strict_mode_bound(self, value, threshold):
        """strict mode: any masked match deviates by at most e% of |value|."""
        avcl = Avcl(threshold, mode="strict")
        info = avcl.evaluate_int(to_unsigned(value))
        worst = info.mask  # largest low-bit deviation a match can have
        assert worst <= abs(value) * threshold / 100 + 1e-9

    @given(st.integers(-(2**31), 2**31 - 1),
           st.sampled_from([5.0, 10.0, 20.0, 25.0]))
    def test_paper_mode_bound_within_4x(self, value, threshold):
        """paper mode may overshoot (the 9 @ 20% example does): the shift
        floor loses up to 2x and the mask rounding another 2x, so the
        deviation stays within 4x the nominal threshold plus one quantum."""
        avcl = Avcl(threshold, mode="paper")
        info = avcl.evaluate_int(to_unsigned(value))
        assert info.mask <= 4 * abs(value) * threshold / 100 + 1

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_value_always_matches_itself(self, value):
        avcl = Avcl(10)
        info = avcl.evaluate_int(to_unsigned(value))
        assert info.matches(to_unsigned(value))

    @given(st.integers(-(2**31), 2**31 - 1),
           st.integers(0, 0xFFFFFFFF))
    def test_match_implies_same_care_bits(self, value, candidate):
        avcl = Avcl(10)
        info = avcl.evaluate_int(to_unsigned(value))
        matched = info.matches(candidate)
        same_care = (candidate & ~info.mask & 0xFFFFFFFF) == info.care_pattern
        assert matched == same_care


class TestFloatApproximation:
    def test_significand_extraction(self):
        # 1.5 = significand 1.1000... -> 24-bit 0xC00000
        pattern = float_to_bits(1.5)
        significand = Avcl.extract_significand(pattern)
        assert significand == 0xC00000

    def test_zero_bypasses(self):
        avcl = Avcl(10)
        info = avcl.evaluate_float(float_to_bits(0.0))
        assert info.bypass
        assert info.dont_care_bits == 0

    @pytest.mark.parametrize("special", [
        float("inf"), float("-inf"), float("nan"), 1e-40, -1e-42,
    ])
    def test_specials_bypass(self, special):
        avcl = Avcl(20)
        info = avcl.evaluate_float(float_to_bits(special))
        assert info.bypass

    def test_normal_float_gets_mask(self):
        avcl = Avcl(10)
        info = avcl.evaluate_float(float_to_bits(1.5))
        assert not info.bypass
        assert info.dont_care_bits > 0

    def test_mask_never_reaches_exponent(self):
        avcl = Avcl(100)  # maximal threshold
        info = avcl.evaluate_float(float_to_bits(1.75))
        assert info.dont_care_bits <= 23

    def test_replace_significand_preserves_sign_exponent(self):
        pattern = float_to_bits(-6.5)
        significand = Avcl.extract_significand(pattern)
        rebuilt = Avcl.replace_significand(pattern, significand)
        assert rebuilt == pattern

    def test_replace_significand_rejects_denormalized(self):
        with pytest.raises(ValueError):
            Avcl.replace_significand(float_to_bits(1.0), 0x100)

    @given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False),
           st.sampled_from([5.0, 10.0, 20.0]))
    def test_masked_float_error_is_bounded(self, value, threshold):
        """Any float matching the mask deviates by a bounded relative error.

        The significand carries the implicit leading 1 (>= 2^23) so a low-bit
        mask of k bits changes the value by < 2^k / 2^23 relative — and the
        mask construction keeps 2^k within ~2x the error range in paper mode.
        """
        avcl = Avcl(threshold, mode="paper")
        pattern = float_to_bits(value)
        info = avcl.evaluate_float(pattern)
        if info.bypass:
            return
        # Build the worst-case matching candidate: flip all don't-care bits.
        worst = pattern ^ info.mask
        worst_value = bits_to_float(worst)
        rel = abs(worst_value - value) / abs(value)
        assert rel <= 4 * threshold / 100 + 1e-6

    @given(st.floats(min_value=1e-30, max_value=1e30, allow_nan=False))
    def test_dispatch_matches_direct_calls(self, value):
        avcl = Avcl(10)
        pattern = float_to_bits(value)
        assert avcl.evaluate(pattern, DataType.FLOAT) == \
            avcl.evaluate_float(pattern)

    @given(st.integers(-(2**31), 2**31 - 1))
    def test_dispatch_int(self, value):
        avcl = Avcl(10)
        pattern = to_unsigned(value)
        assert avcl.evaluate(pattern, DataType.INT) == \
            avcl.evaluate_int(pattern)
