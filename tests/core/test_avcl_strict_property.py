"""Property test for the §3.2 strict-mode guarantee (tier-1).

``strict`` mode promises that *any* value accepted under the don't-care
mask deviates from the original by at most the configured threshold.  The
worst accepted deviation is the full mask (all don't-care bits flipped), so
the guarantee is, exactly:

    (2^dont_care_bits - 1) * 100  <=  magnitude * threshold_pct

checked here in exact rational arithmetic — no float tolerance games — for
both integer words (magnitude of the signed value) and float words (the
padded 24-bit significand, which carries the full relative error because
the exponent is never approximated).
"""

from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.avcl import Avcl
from repro.util.bitops import to_signed

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)

#: Thresholds spanning sane sweeps (0.01%..100%), plus awkward floats.
THRESHOLDS = st.one_of(
    st.sampled_from([0.01, 0.1, 1.0, 5.0, 10.0, 12.5, 20.0, 25.0,
                     33.3, 50.0, 99.9, 100.0]),
    st.floats(min_value=0.01, max_value=100.0,
              allow_nan=False, allow_infinity=False),
)


def _within_threshold(mask: int, magnitude: int, threshold_pct: float) -> bool:
    """Exact form of: mask <= magnitude * threshold_pct / 100."""
    return Fraction(mask) * 100 <= Fraction(magnitude) * \
        Fraction(threshold_pct)


@settings(max_examples=300, deadline=None)
@given(word=WORDS, threshold=THRESHOLDS)
def test_strict_int_mask_within_threshold(word: int,
                                          threshold: float) -> None:
    info = Avcl(threshold, mode="strict").evaluate_int(word)
    assert not info.bypass
    magnitude = abs(to_signed(word))
    assert _within_threshold(info.mask, magnitude, threshold)


@settings(max_examples=300, deadline=None)
@given(word=WORDS, threshold=THRESHOLDS)
def test_strict_float_mask_within_threshold(word: int,
                                            threshold: float) -> None:
    info = Avcl(threshold, mode="strict").evaluate_float(word)
    if info.bypass:  # zero/denormal/inf/NaN: AVCL refuses to touch
        assert info.dont_care_bits == 0
        return
    # The exponent is exact, so the value's relative error equals the
    # significand's relative error; the significand is info.pattern.
    assert _within_threshold(info.mask, info.pattern, threshold)


@settings(max_examples=200, deadline=None)
@given(word=WORDS, threshold=THRESHOLDS)
def test_strict_every_masked_candidate_is_close(word: int,
                                                threshold: float) -> None:
    """Spot-check the end-to-end form: the extreme accepted candidates
    (low and high end of the masked block) stay within the threshold."""
    info = Avcl(threshold, mode="strict").evaluate_int(word)
    magnitude = abs(to_signed(word))
    for candidate in (info.care_pattern, info.care_pattern | info.mask):
        assert info.matches(candidate)
        deviation = abs(candidate - info.pattern)
        assert _within_threshold(deviation, magnitude, threshold)
