"""Unit and property tests for the bit-manipulation helpers."""


import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import bitops

WORDS = st.integers(min_value=0, max_value=0xFFFFFFFF)
SIGNED = st.integers(min_value=-(2**31), max_value=2**31 - 1)


class TestSignedConversion:
    def test_zero(self):
        assert bitops.to_signed(0) == 0
        assert bitops.to_unsigned(0) == 0

    def test_minus_one(self):
        assert bitops.to_signed(0xFFFFFFFF) == -1
        assert bitops.to_unsigned(-1) == 0xFFFFFFFF

    def test_int_min(self):
        assert bitops.to_signed(0x80000000) == -(2**31)
        assert bitops.to_unsigned(-(2**31)) == 0x80000000

    def test_int_max(self):
        assert bitops.to_signed(0x7FFFFFFF) == 2**31 - 1

    @given(SIGNED)
    def test_roundtrip_signed(self, value):
        assert bitops.to_signed(bitops.to_unsigned(value)) == value

    @given(WORDS)
    def test_roundtrip_unsigned(self, pattern):
        assert bitops.to_unsigned(bitops.to_signed(pattern)) == pattern


class TestSignExtension:
    @pytest.mark.parametrize("pattern,bits,expected", [
        (0, 4, True),
        (7, 4, True),
        (8, 4, False),
        (0xFFFFFFF8, 4, True),   # -8
        (0xFFFFFFF7, 4, False),  # -9
        (0x7F, 8, True),
        (0x80, 8, False),
        (0xFFFFFF80, 8, True),   # -128
        (0x7FFF, 16, True),
        (0x8000, 16, False),
        (0xDEADBEEF, 32, True),  # everything sign-extends from 32 bits
    ])
    def test_examples(self, pattern, bits, expected):
        assert bitops.sign_extends_from(pattern, bits) is expected

    def test_rejects_bad_bits(self):
        with pytest.raises(ValueError):
            bitops.sign_extends_from(0, 0)
        with pytest.raises(ValueError):
            bitops.sign_extends_from(0, 33)

    @given(SIGNED, st.integers(min_value=1, max_value=32))
    def test_matches_arithmetic_definition(self, value, bits):
        expected = -(1 << (bits - 1)) <= value < (1 << (bits - 1))
        assert bitops.sign_extends_from(
            bitops.to_unsigned(value), bits) is expected


class TestFloatBits:
    @pytest.mark.parametrize("value,pattern", [
        (0.0, 0x00000000),
        (1.0, 0x3F800000),
        (-2.0, 0xC0000000),
        (0.5, 0x3F000000),
        (float("inf"), 0x7F800000),
        (float("-inf"), 0xFF800000),
    ])
    def test_known_encodings(self, value, pattern):
        assert bitops.float_to_bits(value) == pattern
        assert bitops.bits_to_float(pattern) == value

    def test_nan_roundtrip(self):
        pattern = bitops.float_to_bits(float("nan"))
        decoded = bitops.bits_to_float(pattern)
        assert decoded != decoded

    @given(st.floats(width=32, allow_nan=False))
    def test_roundtrip(self, value):
        assert bitops.bits_to_float(bitops.float_to_bits(value)) == value

    @given(WORDS)
    def test_fields_roundtrip(self, pattern):
        sign, exponent, mantissa = bitops.float_fields(pattern)
        assert bitops.fields_to_float(sign, exponent, mantissa) == pattern

    def test_fields_of_one(self):
        sign, exponent, mantissa = bitops.float_fields(0x3F800000)
        assert (sign, exponent, mantissa) == (0, 127, 0)

    def test_fields_validation(self):
        with pytest.raises(ValueError):
            bitops.fields_to_float(2, 0, 0)
        with pytest.raises(ValueError):
            bitops.fields_to_float(0, 256, 0)
        with pytest.raises(ValueError):
            bitops.fields_to_float(0, 0, 1 << 23)


class TestMisc:
    def test_clamp(self):
        assert bitops.clamp(5, 0, 10) == 5
        assert bitops.clamp(-1, 0, 10) == 0
        assert bitops.clamp(11, 0, 10) == 10

    def test_clamp_empty_interval(self):
        with pytest.raises(ValueError):
            bitops.clamp(0, 5, 4)

    def test_popcount(self):
        assert bitops.popcount(0) == 0
        assert bitops.popcount(0xFFFFFFFF) == 32
        assert bitops.popcount(0b1011) == 3

    @given(WORDS)
    def test_popcount_matches_bin(self, pattern):
        assert bitops.popcount(pattern) == bin(pattern).count("1")

    def test_popcount_masks_to_word(self):
        assert bitops.popcount(1 << 32) == 0
        assert bitops.popcount((1 << 33) | 0b101) == 2
        assert bitops.popcount(1 << 40 | 0b101) == 2
