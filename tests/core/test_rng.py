"""Tests for the deterministic RNG wrapper."""

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import DeterministicRng


class TestDeterminism:
    def test_same_seed_same_stream(self):
        a, b = DeterministicRng(42), DeterministicRng(42)
        assert [a.random() for _ in range(20)] == \
            [b.random() for _ in range(20)]

    def test_different_seeds_differ(self):
        a, b = DeterministicRng(1), DeterministicRng(2)
        assert [a.randint(0, 10**9) for _ in range(5)] != \
            [b.randint(0, 10**9) for _ in range(5)]

    def test_fork_is_deterministic(self):
        a = DeterministicRng(7).fork(3)
        b = DeterministicRng(7).fork(3)
        assert a.random() == b.random()

    def test_forks_are_independent(self):
        parent = DeterministicRng(7)
        child = parent.fork(1)
        before = parent.random()
        child.random()
        # consuming the child does not perturb the parent's stream
        again = DeterministicRng(7)
        again.fork(1)
        assert again.random() == before

    def test_seed_property(self):
        assert DeterministicRng(9).seed == 9


class TestDistributions:
    def test_bernoulli_extremes(self):
        rng = DeterministicRng(1)
        assert not any(rng.bernoulli(0.0) for _ in range(100))
        assert all(rng.bernoulli(1.0) for _ in range(100))

    def test_bernoulli_rate(self):
        rng = DeterministicRng(2)
        hits = sum(rng.bernoulli(0.3) for _ in range(5000))
        assert 0.25 < hits / 5000 < 0.35

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_randint_in_range(self, low, span):
        rng = DeterministicRng(3)
        value = rng.randint(low, low + span)
        assert low <= value <= low + span

    def test_randbits_width(self):
        rng = DeterministicRng(4)
        for _ in range(50):
            assert 0 <= rng.randbits(32) < 2**32

    def test_choice_and_choices(self):
        rng = DeterministicRng(5)
        items = ["a", "b", "c"]
        assert rng.choice(items) in items
        picked = rng.choices(items, [1.0, 0.0, 0.0], 10)
        assert picked == ["a"] * 10

    def test_shuffle_permutes(self):
        rng = DeterministicRng(6)
        items = list(range(20))
        shuffled = items[:]
        rng.shuffle(shuffled)
        assert sorted(shuffled) == items

    def test_gauss_and_expovariate_finite(self):
        rng = DeterministicRng(7)
        assert abs(rng.gauss(0, 1)) < 10
        assert rng.expovariate(1.0) >= 0
