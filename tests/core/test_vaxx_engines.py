"""Tests for the FP-VAXX and DI-VAXX engines (the paper's §4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.schemes import FpCompScheme
from repro.compression.dictionary import DiCompScheme
from repro.core.apcl import Apcl, TernaryPattern
from repro.core.avcl import Avcl
from repro.core.block import CacheBlock, DataType, relative_word_error
from repro.core.di_vaxx import DiVaxxScheme
from repro.core.fp_vaxx import FpVaxxScheme
from repro.core.error_control import WindowErrorBudget
from repro.util.bitops import float_to_bits


class TestTernaryPattern:
    def test_string_form(self):
        t = TernaryPattern(value=0b1001, mask=0b0011)
        assert str(t).endswith("10xx")

    def test_match_semantics(self):
        t = TernaryPattern(value=0b1001, mask=0b0011)
        assert t.matches(0b1000)
        assert t.matches(0b1011)
        assert not t.matches(0b1100)

    def test_covers(self):
        wide = TernaryPattern(value=0b1000, mask=0b0111)
        narrow = TernaryPattern(value=0b1010, mask=0b0001)
        assert wide.covers(narrow)
        assert not narrow.covers(wide)

    def test_apcl_uses_avcl_mask(self):
        apcl = Apcl(Avcl(20, mode="paper"))
        t = apcl.compute(9, DataType.INT)
        assert t.mask == 0b11  # the 10xx example

    def test_apcl_float_special_gets_empty_mask(self):
        apcl = Apcl(Avcl(20))
        t = apcl.compute(float_to_bits(float("inf")), DataType.FLOAT)
        assert t.mask == 0


class TestFpVaxx:
    def test_beats_fp_comp_on_near_patterns(self):
        """Approximation turns near-miss words into compressible ones."""
        values = [3, 70000, 130, -130, 0x10003, 12345] * 2
        block_a = CacheBlock.from_ints(values, approximable=True)
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=10)
        comp = FpCompScheme(n_nodes=2)
        enc_vaxx = vaxx.node(0).encode(block_a, 1)
        enc_comp = comp.node(0).encode(block_a, 1)
        assert enc_vaxx.size_bits < enc_comp.size_bits

    def test_non_approximable_block_is_exact(self):
        block = CacheBlock.from_ints([3, 70000, 130], approximable=False)
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=20)
        out, _ = vaxx.roundtrip(block, 0, 1)
        assert out.words == block.words

    def test_error_is_bounded_by_mask(self):
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=10)
        block = CacheBlock.from_ints([70000], approximable=True)
        out, enc = vaxx.roundtrip(block, 0, 1)
        err = relative_word_error(block.words[0], out.words[0], DataType.INT)
        assert err <= 0.15  # paper-mode slack over the nominal 10%

    def test_float_specials_survive(self):
        values = [float("inf"), float("nan"), 0.0, 1.5]
        block = CacheBlock.from_floats(values, approximable=True)
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=20)
        out, _ = vaxx.roundtrip(block, 0, 1)
        assert out.words[0] == block.words[0]  # inf untouched
        assert out.words[1] == block.words[1]  # nan untouched
        assert out.words[2] == block.words[2]  # zero untouched

    def test_quality_tracking(self):
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=10)
        block = CacheBlock.from_ints([70000, 0, 5], approximable=True)
        vaxx.roundtrip(block, 0, 1)
        assert 0.9 <= vaxx.quality.data_quality <= 1.0
        assert vaxx.quality.total_words == 3

    def test_window_budget_can_veto(self):
        """A tiny window budget rejects every lossy substitution."""
        strict = FpVaxxScheme(
            n_nodes=2, error_threshold_pct=20,
            budget_factory=lambda: WindowErrorBudget(threshold_pct=0.0001,
                                                     window=4))
        block = CacheBlock.from_ints([70000, 12347], approximable=True)
        out, _ = strict.roundtrip(block, 0, 1)
        assert out.words == block.words

    @given(st.lists(st.integers(-(2**31), 2**31 - 1), min_size=1,
                    max_size=16))
    @settings(max_examples=40, deadline=None)
    def test_int_error_bound_property(self, values):
        """Every word FP-VAXX delivers stays within the paper-mode bound."""
        vaxx = FpVaxxScheme(n_nodes=2, error_threshold_pct=10)
        block = CacheBlock.from_ints(values, approximable=True)
        out, _ = vaxx.roundtrip(block, 0, 1)
        for precise, approx in zip(block.as_ints(), out.as_ints()):
            assert abs(approx - precise) <= 4 * abs(precise) * 0.10 + 1


class TestDiVaxx:
    def _warm(self, scheme, values, rounds=3, src=0, dst=1):
        for _ in range(rounds):
            block = CacheBlock.from_ints(values, approximable=True)
            out, enc = scheme.roundtrip(block, src, dst)
        return out, enc

    def test_learns_then_compresses(self):
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=10,
                              detect_threshold=2)
        _, enc = self._warm(scheme, [1000] * 8)
        assert all(w.compressed for w in enc.words)

    def test_approximate_hit_after_learning(self):
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=10,
                              detect_threshold=2)
        self._warm(scheme, [1000] * 8)
        near = CacheBlock.from_ints([1001] * 8, approximable=True)
        out, enc = scheme.roundtrip(near, 0, 1)
        assert all(w.compressed and w.approximated for w in enc.words)
        assert out.as_ints() == [1000] * 8  # recovered reference pattern

    def test_non_approximable_requires_exact(self):
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=10,
                              detect_threshold=2)
        self._warm(scheme, [1000] * 8)
        near = CacheBlock.from_ints([1001] * 8, approximable=False)
        out, enc = scheme.roundtrip(near, 0, 1)
        assert out.as_ints() == [1001] * 8
        assert not any(w.approximated for w in enc.words)

    def test_exact_hit_on_original_pattern(self):
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=10,
                              detect_threshold=2)
        self._warm(scheme, [1000] * 8)
        same = CacheBlock.from_ints([1000] * 8, approximable=False)
        out, enc = scheme.roundtrip(same, 0, 1)
        assert all(w.compressed for w in enc.words)
        assert out.as_ints() == [1000] * 8

    def test_dtype_segregation(self):
        """An int ternary entry must not capture float words."""
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=20,
                              detect_threshold=2)
        self._warm(scheme, [1000] * 8)
        fblock = CacheBlock.from_floats([1.401e-42] * 8, approximable=True)
        out, enc = scheme.roundtrip(fblock, 0, 1)
        assert out.words == fblock.words

    def test_per_destination_isolation(self):
        scheme = DiVaxxScheme(n_nodes=3, error_threshold_pct=10,
                              detect_threshold=2)
        self._warm(scheme, [1000] * 8, dst=1)
        block = CacheBlock.from_ints([1000] * 8, approximable=True)
        enc_to_2 = scheme.node(0).encode(block, dst=2)
        assert not any(w.compressed for w in enc_to_2.words)

    def test_notifications_counted(self):
        scheme = DiVaxxScheme(n_nodes=2, detect_threshold=2)
        self._warm(scheme, [1, 2, 3, 4])
        assert scheme.stats.notifications > 0

    @given(st.lists(st.lists(st.integers(-50, 50), min_size=4, max_size=4),
                    min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_non_approximable_exactness_property(self, blocks):
        """Whatever was learned, non-approximable traffic is bit-exact."""
        scheme = DiVaxxScheme(n_nodes=2, error_threshold_pct=20,
                              detect_threshold=1)
        for values in blocks:
            approx = CacheBlock.from_ints(values, approximable=True)
            scheme.roundtrip(approx, 0, 1)
            precise = CacheBlock.from_ints(values, approximable=False)
            out, _ = scheme.roundtrip(precise, 0, 1)
            assert out.words == precise.words

    def test_beats_di_comp_on_clustered_values(self):
        """Clustered values compress better with approximate matching."""
        vaxx = DiVaxxScheme(n_nodes=2, error_threshold_pct=20,
                            detect_threshold=2)
        comp = DiCompScheme(n_nodes=2, detect_threshold=2)
        cluster = [1000, 1001, 1002, 1003, 999, 998, 1000, 1001]
        for scheme in (vaxx, comp):
            for shift in range(6):
                values = [v + (shift % 3) for v in cluster]
                block = CacheBlock.from_ints(values, approximable=True)
                scheme.roundtrip(block, 0, 1)
        assert (vaxx.stats.compression_ratio
                > comp.stats.compression_ratio)
