"""Unit tests for the fault models themselves (repro.faults.inject).

Covers the deterministic sampling primitives (``geometric``, the lazily
advanced :class:`_WindowSchedule` and its prefix property), the per-class
injection hooks on fake flits, seed-reproducibility of whole runs, and the
VERIFY204 static validation of :class:`FaultConfig`.
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultConfig
from repro.faults.inject import (
    FaultInjector,
    PacketFaultState,
    _WindowSchedule,
    geometric,
)
from repro.harness.experiment import make_scheme
from repro.noc import Network
from repro.noc.config import TINY_CONFIG
from repro.noc.packet import PacketKind
from repro.noc.topology import MeshTopology
from repro.traffic import SyntheticTraffic
from repro.util.rng import DeterministicRng
from repro.verify.static import ConfigVerificationError, verify_config


class TestGeometric:
    def test_certain_event_fires_immediately(self):
        assert geometric(DeterministicRng(1), 1.0) == 0

    def test_deterministic_per_seed(self):
        a = [geometric(DeterministicRng(7).fork(i), 0.01) for i in range(50)]
        b = [geometric(DeterministicRng(7).fork(i), 0.01) for i in range(50)]
        assert a == b

    def test_mean_tracks_rate(self):
        rng = DeterministicRng(3)
        n = 4000
        mean = sum(geometric(rng, 0.02) for _ in range(n)) / n
        assert 35 < mean < 65  # expectation ~49 for p=0.02

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           rate=st.floats(min_value=1e-4, max_value=0.5))
    def test_nonnegative(self, seed, rate):
        assert geometric(DeterministicRng(seed), rate) >= 0


class TestWindowSchedule:
    def make(self, seed=5, rate=0.01, duration=20, stuck=False):
        return _WindowSchedule(DeterministicRng(seed), rate, duration,
                               stuck=stuck)

    def test_prefix_property(self):
        """State after a query at cycle t depends on t alone, not on the
        query pattern — dense and sparse querying agree everywhere they
        are compared (the event-horizon determinism argument)."""
        dense = self.make()
        sparse = self.make()
        horizon = 5000
        dense_active = [dense.active(t) for t in range(horizon)]
        rng = DeterministicRng(99)
        t = 0
        while t < horizon:
            assert sparse.active(t) == dense_active[t]
            t += 1 + rng.randint(0, 60)

    def test_windows_cover_duration(self):
        sched = self.make(duration=20)
        active = [t for t in range(3000) if sched.active(t)]
        assert active, "rate 0.01 over 3000 cycles should open a window"
        runs = []
        start = prev = active[0]
        for t in active[1:]:
            if t != prev + 1:
                runs.append((start, prev))
                start = t
            prev = t
        runs.append((start, prev))
        assert all(hi - lo + 1 == 20 for lo, hi in runs)

    def test_next_boundary_pins_onset_and_offset(self):
        sched = self.make(duration=20)
        probe = self.make(duration=20)
        onset = next(t for t in range(3000) if probe.active(t))
        assert sched.next_boundary(onset - 1) == onset
        assert sched.next_boundary(onset) == onset + 20

    def test_prev_end_records_revival(self):
        sched = self.make(duration=20)
        probe = self.make(duration=20)
        onset = next(t for t in range(3000) if probe.active(t))
        assert sched.prev_end <= onset
        sched.active(onset + 20)  # first alive cycle after the window
        assert sched.prev_end == onset + 20

    def test_stuck_shape_redrawn_per_window(self):
        sched = self.make(seed=11, rate=0.05, duration=10, stuck=True)
        shapes = set()
        for t in range(0, 4000, 10):
            if sched.active(t):
                shapes.add((sched.bit, sched.value))
        assert len(shapes) > 1


class _FakeWord:
    def __init__(self, decoded):
        self.decoded = decoded


class _FakeEncoded:
    def __init__(self, words):
        self.words = [_FakeWord(w) for w in words]


class _FakePacket:
    def __init__(self, kind=PacketKind.DATA, words=(1, 2, 3, 4)):
        self.kind = kind
        self.encoded = _FakeEncoded(words)
        self.fault = None


class _FakeFlit:
    def __init__(self, packet, is_head=False, is_tail=False):
        self.packet = packet
        self.is_head = is_head
        self.is_tail = is_tail


def make_injector(**fault_kwargs):
    config = FaultConfig(**fault_kwargs)
    return FaultInjector(config, TINY_CONFIG, MeshTopology(TINY_CONFIG))


class TestInjectionHooks:
    def test_bitflip_records_single_bit_xor(self):
        injector = make_injector(bitflip_rate=1.0)
        flit = _FakeFlit(_FakePacket())
        dropped = injector.on_link_traversal(0, 0, 0, flit, now=10)
        assert not dropped
        assert injector.stats.bitflips == 1
        state = flit.packet.fault
        assert state is not None and state.corrupted
        [(index, mask)] = state.xors
        assert mask and mask & (mask - 1) == 0  # exactly one bit

    def test_head_flits_never_targeted(self):
        injector = make_injector(bitflip_rate=1.0, drop_rate=1.0)
        flit = _FakeFlit(_FakePacket(), is_head=True)
        assert not injector.on_link_traversal(0, 0, 0, flit, now=10)
        assert flit.packet.fault is None
        assert injector.stats.total == 0

    def test_control_packets_never_targeted(self):
        injector = make_injector(bitflip_rate=1.0, drop_rate=1.0)
        flit = _FakeFlit(_FakePacket(kind=PacketKind.CONTROL))
        assert not injector.on_link_traversal(0, 0, 0, flit, now=10)
        assert flit.packet.fault is None

    def test_tail_flits_never_dropped(self):
        """The tail carries the modeled CRC check: it must always arrive."""
        injector = make_injector(drop_rate=1.0)
        flit = _FakeFlit(_FakePacket(), is_tail=True)
        assert not injector.on_link_traversal(0, 0, 0, flit, now=10)
        assert injector.stats.flits_dropped == 0

    def test_drop_ledgers_lost_credit(self):
        injector = make_injector(drop_rate=1.0)
        flit = _FakeFlit(_FakePacket())
        assert injector.on_link_traversal(2, 1, 0, flit, now=10)
        assert injector.stats.flits_dropped == 1
        assert injector.lost_link_credits == {(2, 1, 0): 1}
        assert flit.packet.fault.dropped_flits == 1

    def test_credit_loss_ledgers_by_target_pool(self):
        injector = make_injector(credit_loss_rate=1.0)
        assert injector.swallow_credit(0, 4, 1, (True, 3))
        assert injector.lost_ni_credits == {(3, 1): 1}
        assert injector.swallow_credit(1, 0, 0, (False, 2, 2))
        assert injector.lost_link_credits == {(2, 2, 0): 1}
        assert injector.stats.credits_lost == 2


class TestPacketFaultState:
    def test_apply_xors_delivered_words(self, int_block):
        state = PacketFaultState()
        state.record_xor(2, 0b101)
        out = state.apply(int_block)
        assert out.words[2] == int_block.words[2] ^ 0b101
        assert out.words[0] == int_block.words[0]

    def test_zero_mask_is_noop(self):
        state = PacketFaultState()
        state.record_xor(0, 0)
        assert not state.corrupted

    def test_dropped_flit_marks_corrupt(self):
        state = PacketFaultState()
        state.dropped_flits = 1
        assert state.corrupted


def run_observables(faults, seed=3, cycles=3000):
    """(fault summary, simulation outputs) of one all-data-traffic run."""
    config = replace(TINY_CONFIG, faults=faults)
    network = Network(config, make_scheme("FP-VAXX", config.n_nodes))
    network.set_traffic(SyntheticTraffic(config, injection_rate=0.05,
                                         seed=seed, data_ratio=1.0))
    network.run(cycles)
    network.drain(50_000)
    return network._faults.summary(), network.stats.simulation_outputs()


class TestSeedReproducibility:
    @pytest.mark.parametrize("fault_kwargs", [
        {"bitflip_rate": 0.05}, {"drop_rate": 0.05},
        {"stuck_rate": 0.01}, {"credit_loss_rate": 0.05},
        {"failstop_rate": 0.005},
    ], ids=["bitflip", "drop", "stuck", "credit_loss", "failstop"])
    def test_same_seed_same_counters(self, fault_kwargs):
        a = run_observables(FaultConfig(seed=9, recovery=True,
                                        **fault_kwargs))
        b = run_observables(FaultConfig(seed=9, recovery=True,
                                        **fault_kwargs))
        assert a == b
        if "failstop_rate" not in fault_kwargs:
            assert a[0]["faults_injected"] > 0

    def test_different_seed_different_stream(self):
        a = run_observables(FaultConfig(seed=1, bitflip_rate=0.05,
                                        recovery=True))
        b = run_observables(FaultConfig(seed=2, bitflip_rate=0.05,
                                        recovery=True))
        assert a[0]["bitflips"] > 0 and b[0]["bitflips"] > 0
        assert a != b


class TestFaultConfigValidation:
    def test_valid_config_passes(self):
        config = replace(TINY_CONFIG,
                         faults=FaultConfig(bitflip_rate=0.01))
        assert not verify_config(config).errors

    @pytest.mark.parametrize("bad", [
        {"bitflip_rate": 1.5}, {"drop_rate": -0.1},
        {"stuck_duration": 0}, {"failstop_duration": -3},
        {"retry_budget": -1}, {"watchdog_period": 0},
    ])
    def test_bad_values_flagged_as_verify204(self, bad):
        config = replace(TINY_CONFIG, faults=FaultConfig(**bad))
        report = verify_config(config)
        assert any(v.code == "VERIFY204" for v in report.errors)

    def test_wrong_type_flagged(self):
        config = replace(TINY_CONFIG, faults="not a FaultConfig")
        report = verify_config(config)
        assert any(v.code == "VERIFY204" for v in report.errors)

    def test_network_refuses_invalid_fault_config(self):
        config = replace(TINY_CONFIG,
                         faults=FaultConfig(bitflip_rate=2.0))
        with pytest.raises(ConfigVerificationError):
            Network(config, make_scheme("Baseline", config.n_nodes))
