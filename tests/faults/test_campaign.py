"""Campaign driver + CLI + NoCSan detection coverage (DESIGN.md §13).

The headline robustness claim rides on :func:`detection_coverage`: with
recovery disabled and NoCSan armed, every injected fault class must trip a
sanitizer invariant — the sanitizer is the campaign's ground-truth
detector.
"""

import json
from dataclasses import replace

import pytest

from repro.faults.__main__ import main as faults_main
from repro.faults.campaign import (
    FAULT_CLASSES,
    detection_coverage,
    fault_config_for,
    format_campaign,
    run_campaign,
)
from repro.harness.experiment import benchmark_trace
from repro.noc.config import TINY_CONFIG


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace(TINY_CONFIG, "ssca2", 900, seed=11)


#: Sanitizer invariant each fault class must trip in detector mode.
EXPECTED_INVARIANT = {
    "bitflip": "error-bound",
    "drop": "flit-conservation",
    "stuck": "error-bound",
    "credit_loss": "credit-conservation",
    "failstop": "starvation",
}


class TestDetectionCoverage:
    def test_every_fault_class_detected(self, trace):
        coverage = detection_coverage(TINY_CONFIG, trace, warmup=300,
                                      measure=600)
        assert set(coverage) == set(FAULT_CLASSES)
        missed = [cls for cls, inv in coverage.items() if inv is None]
        assert not missed, f"NoCSan missed fault classes: {missed}"

    def test_detected_invariants_match_fault_semantics(self, trace):
        coverage = detection_coverage(TINY_CONFIG, trace, warmup=300,
                                      measure=600)
        for fault_class, invariant in coverage.items():
            assert invariant == EXPECTED_INVARIANT[fault_class], \
                f"{fault_class} tripped {invariant!r}"


class TestFaultConfigFor:
    def test_arms_exactly_one_class(self):
        config = fault_config_for("drop", 0.01, recovery=True)
        assert config.drop_rate == 0.01
        assert config.bitflip_rate == 0.0
        assert config.recovery

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            fault_config_for("gamma_ray", 0.01, recovery=False)

    def test_overrides_forwarded(self):
        config = fault_config_for("bitflip", 0.01, recovery=True,
                                  retry_budget=9)
        assert config.retry_budget == 9


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return run_campaign(config=TINY_CONFIG,
                            mechanisms=("Baseline",),
                            classes=("bitflip", "drop"),
                            rates=(0.0, 0.01),
                            trace_cycles=900, warmup=300, measure=600,
                            detect=False)

    def test_point_matrix_complete(self, campaign):
        # 1 mechanism x 2 classes x 2 rates x 2 recovery modes
        assert len(campaign.points) == 8
        keys = {(p.fault_class, p.rate, p.recovery)
                for p in campaign.points}
        assert len(keys) == 8

    def test_rate_zero_points_clean(self, campaign):
        for p in campaign.points:
            if p.rate == 0.0:
                assert p.counters["faults_injected"] == 0
                assert p.max_rel_error == 0.0

    def test_recovery_restores_threshold(self, campaign):
        for p in campaign.points:
            if p.rate > 0 and p.recovery:
                assert p.within_threshold
                assert p.retx_flit_overhead > 0.0

    def test_json_artifact_shape(self, campaign):
        payload = campaign.to_json_dict()
        json.dumps(payload)  # JSON-safe end to end
        assert len(payload["points"]) == len(campaign.points)
        row = payload["points"][0]
        for key in ("mechanism", "fault_class", "rate", "recovery",
                    "max_rel_error", "words_over_threshold",
                    "retx_flit_overhead", "within_threshold", "counters"):
            assert key in row

    def test_format_is_human_readable(self, campaign):
        text = format_campaign(campaign)
        assert "mechanism" in text
        assert "bitflip" in text

    def test_campaign_reproducible(self, campaign):
        again = run_campaign(config=TINY_CONFIG,
                             mechanisms=("Baseline",),
                             classes=("bitflip", "drop"),
                             rates=(0.0, 0.01),
                             trace_cycles=900, warmup=300, measure=600,
                             detect=False)
        assert again.to_json_dict() == campaign.to_json_dict()


class TestCli:
    def test_smoke_campaign_writes_artifact(self, tmp_path, capsys):
        artifact = tmp_path / "campaign.json"
        status = faults_main(["--smoke", "--quiet",
                              "--mechanisms", "Baseline",
                              "--classes", "bitflip",
                              "--rates", "0.01",
                              "--json", str(artifact)])
        assert status == 0
        payload = json.loads(artifact.read_text())
        assert payload["detection_coverage"] == 1.0
        out = capsys.readouterr().out
        assert "coverage: 100%" in out

    def test_no_detect_skips_coverage_pass(self, tmp_path):
        artifact = tmp_path / "campaign.json"
        status = faults_main(["--smoke", "--quiet", "--no-detect",
                              "--mechanisms", "Baseline",
                              "--classes", "bitflip",
                              "--rates", "0.0",
                              "--json", str(artifact)])
        assert status == 0
        payload = json.loads(artifact.read_text())
        assert payload["detection"] == {}
