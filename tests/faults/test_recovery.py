"""End-to-end recovery: CRC+NACK retransmission, credit watchdog,
graceful degradation (DESIGN.md §13).

The acceptance-level claims: with CRC + retransmission enabled, a nonzero
bit-flip campaign delivers every word within the scheme's error threshold
while reporting its retransmission overhead; the watchdog restores every
leaked credit so lossy links still drain; degradation trades compression
for exactness when residual corruption breaches the threshold.
"""

from dataclasses import replace

import pytest

from repro.faults import FaultConfig
from repro.faults.campaign import fault_config_for, run_point
from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network
from repro.noc.config import TINY_CONFIG
from repro.traffic import SyntheticTraffic


@pytest.fixture(scope="module")
def trace():
    return benchmark_trace(TINY_CONFIG, "ssca2", 1200, seed=11)


def point(trace, mechanism, fault_class, rate, recovery, **overrides):
    faults = fault_config_for(fault_class, rate, recovery, **overrides)
    config = replace(TINY_CONFIG, faults=faults)
    return run_point(config, mechanism, trace, warmup=400, measure=800,
                     fault_class=fault_class, rate=rate, recovery=recovery)


class TestCrcRetransmission:
    def test_bitflips_with_recovery_deliver_exact(self, trace):
        """Baseline is exact end to end: every corrupted packet must be
        caught by the CRC and replaced by a clean retransmission."""
        result = point(trace, "Baseline", "bitflip", 0.01, recovery=True)
        assert result.counters["bitflips"] > 0
        assert result.counters["retransmissions"] > 0
        assert result.max_rel_error == 0.0
        assert result.words_over_threshold == 0
        assert result.within_threshold
        assert result.drained

    def test_retransmission_overhead_reported(self, trace):
        result = point(trace, "Baseline", "bitflip", 0.01, recovery=True)
        assert 0.0 < result.retx_flit_overhead < 1.0

    def test_approx_scheme_restored_to_fault_free_quality(self, trace):
        """FP-VAXX intentionally approximates, so its error profile is
        nonzero even without faults; recovery must restore exactly that
        profile under fire — no residual injected damage."""
        clean = point(trace, "FP-VAXX", "bitflip", 0.0, recovery=True)
        faulty = point(trace, "FP-VAXX", "bitflip", 0.008, recovery=True)
        assert faulty.counters["bitflips"] > 0
        assert faulty.max_rel_error == clean.max_rel_error
        assert faulty.words_over_threshold == clean.words_over_threshold
        assert faulty.delivered_words == clean.delivered_words

    def test_recovery_off_leaves_corruption_visible(self, trace,
                                                    monkeypatch):
        """Detector mode: the same fault stream with recovery off must
        surface delivered-word damage (what NoCSan then flags — so this
        run must not be instrumented by a CI-level REPRO_SANITIZE=1)."""
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        off = point(trace, "Baseline", "bitflip", 0.01, recovery=False)
        assert off.counters["bitflips"] > 0
        assert off.counters.get("retransmissions", 0) == 0
        assert off.max_rel_error > 0.0

    def test_budget_exhaustion_counted(self, trace):
        result = point(trace, "Baseline", "bitflip", 0.05, recovery=True,
                       retry_budget=0)
        assert result.counters["retx_exhausted"] > 0
        # With a zero budget, corrupted packets are consumed but never
        # resent: fewer blocks arrive, but the run still terminates.
        assert result.drained


class TestCreditWatchdog:
    @pytest.mark.parametrize("fault_class", ["drop", "credit_loss"])
    def test_watchdog_restores_leaked_credits(self, trace, fault_class):
        """Leaked credits come back and the lossy network still drains.
        (Losses from the final watchdog window may still be ledgered when
        the drain finishes — full clearing is asserted below.)"""
        result = point(trace, "Baseline", fault_class, 0.01, recovery=True)
        assert result.counters["credits_restored"] > 0
        assert result.drained

    def test_outstanding_clears_after_idle_watchdog_tick(self):
        faults = FaultConfig(credit_loss_rate=0.05, recovery=True, seed=5)
        config = replace(TINY_CONFIG, faults=faults)
        network = Network(config, make_scheme("Baseline", config.n_nodes))
        network.set_traffic(SyntheticTraffic(config, injection_rate=0.05,
                                             seed=3, data_ratio=1.0))
        network.run(2000)
        assert network.drain(50_000)
        assert network._faults.summary()["credits_lost"] > 0
        # Traffic off: the next watchdog tick (a pinned wakeup under the
        # event horizon) must replay whatever is still ledgered.
        network.traffic_source = None
        network.run(2 * faults.watchdog_period)
        assert network._faults.summary()["lost_credits_outstanding"] == 0

    def test_without_watchdog_credits_stay_lost(self, trace):
        result = point(trace, "Baseline", "credit_loss", 0.01,
                       recovery=True, credit_watchdog=False)
        assert result.counters["credits_restored"] == 0
        assert result.counters["lost_credits_outstanding"] > 0


class TestGracefulDegradation:
    def test_degrade_trips_without_crc(self, trace):
        """CRC off, degradation on: corrupted blocks reach the consumer,
        the oracle trips, and later blocks are forced exact."""
        result = point(trace, "FP-VAXX", "bitflip", 0.05, recovery=True,
                       crc_retx=False)
        assert result.counters["degrade_trips"] > 0
        assert result.counters["degraded_blocks"] > 0

    def test_degrade_never_trips_at_rate_zero(self, trace):
        """Intended approximation alone must never trip the oracle."""
        result = point(trace, "FP-VAXX", "bitflip", 0.0, recovery=True,
                       crc_retx=False)
        assert result.counters["degrade_trips"] == 0
        assert result.counters["degraded_blocks"] == 0


class TestRecoveryDeterminism:
    def test_full_recovery_run_is_reproducible(self):
        def run():
            faults = FaultConfig(bitflip_rate=0.01, drop_rate=0.005,
                                 credit_loss_rate=0.005, recovery=True,
                                 seed=5)
            config = replace(TINY_CONFIG, faults=faults)
            network = Network(config,
                              make_scheme("FP-VAXX", config.n_nodes))
            network.set_traffic(SyntheticTraffic(config,
                                                 injection_rate=0.05,
                                                 seed=3))
            network.run(2000)
            drained = network.drain(50_000)
            return (network.stats.simulation_outputs(), drained,
                    network._faults.summary())

        assert run() == run()
