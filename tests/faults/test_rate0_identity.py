"""Rate-0 bit-identity and fault-run horizon equivalence (DESIGN.md §13).

Two contracts:

* an all-zero :class:`FaultConfig` builds the injection plumbing but must
  leave every observable bit-identical to ``faults=None`` — with the event
  horizon on *and* off;
* with faults armed, an event-horizon run must stay bit-identical to a
  forced always-step run of the identical workload (the §12 equivalence
  contract extends to §13: traversal-coupled faults ride on activity,
  scheduled faults pin skip wakeups).
"""

from dataclasses import replace

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import FaultConfig
from repro.harness.experiment import make_scheme
from repro.noc import Network
from repro.noc.config import TINY_CONFIG
from repro.traffic import SyntheticTraffic


@pytest.fixture(autouse=True, scope="module")
def _unsanitized():
    """Detector-mode cases (recovery off, faults armed) intentionally
    violate NoCSan invariants, so a CI-level ``REPRO_SANITIZE=1`` must
    not instrument these runs: equivalence is compared on the plain
    simulator.  Sanitized fault runs are covered by the campaign smoke
    (CI chaos job) and the detection-coverage tests."""
    mp = pytest.MonkeyPatch()
    mp.delenv("REPRO_SANITIZE", raising=False)
    yield
    mp.undo()


def run_one(config, mechanism="FP-VAXX", rate=0.02, seed=3, cycles=2000,
            drain_budget=50_000):
    """One full run: (network, delivery stream, drained?)."""
    deliveries = []
    network = Network(
        config, make_scheme(mechanism, config.n_nodes),
        on_deliver=lambda packet, block, now: deliveries.append(
            (packet.src, packet.dst, packet.kind.value, now,
             tuple(block.words) if block else None)))
    network.set_traffic(SyntheticTraffic(config, injection_rate=rate,
                                         seed=seed))
    network.run(cycles)
    drained = network.drain(drain_budget)
    return network, deliveries, drained


def observables(network, deliveries, drained):
    return (network.stats.simulation_outputs(), deliveries, drained,
            network.cycle)


class TestRateZeroIdentity:
    """All-zero FaultConfig == faults=None, bit for bit."""

    @pytest.mark.parametrize("event_horizon", [True, False])
    def test_zero_rates_identical_to_no_faults(self, event_horizon):
        base = replace(TINY_CONFIG, event_horizon=event_horizon)
        bare = run_one(replace(base, faults=None))
        armed = run_one(replace(base, faults=FaultConfig()))
        assert observables(*bare) == observables(*armed)
        # The plumbing was genuinely built, not skipped.
        assert armed[0]._faults is not None
        assert armed[0]._faults.summary()["faults_injected"] == 0

    @pytest.mark.parametrize("event_horizon", [True, False])
    def test_zero_rates_with_recovery_enabled(self, event_horizon):
        """Recovery machinery armed but never triggered changes nothing."""
        base = replace(TINY_CONFIG, event_horizon=event_horizon)
        bare = run_one(replace(base, faults=None))
        armed = run_one(replace(base, faults=FaultConfig(recovery=True)))
        assert observables(*bare) == observables(*armed)
        assert armed[0]._faults.recovery_enabled

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1),
           mechanism=st.sampled_from(["Baseline", "FP-VAXX", "DI-COMP"]))
    def test_property_rate0_identity(self, seed, mechanism):
        bare = run_one(TINY_CONFIG, mechanism=mechanism, seed=seed,
                       cycles=800)
        armed = run_one(replace(TINY_CONFIG, faults=FaultConfig(seed=seed)),
                        mechanism=mechanism, seed=seed, cycles=800)
        assert observables(*bare) == observables(*armed)


def assert_horizon_equivalent(faults, rate=0.01, seed=3, cycles=2500):
    """Skip-mode and always-step fault runs agree on every observable,
    including the injection/recovery counters."""
    skip = run_one(replace(TINY_CONFIG, faults=faults, event_horizon=True),
                   rate=rate, seed=seed, cycles=cycles)
    step = run_one(replace(TINY_CONFIG, faults=faults, event_horizon=False),
                   rate=rate, seed=seed, cycles=cycles)
    assert step[0].stats.skipped_cycles == 0
    assert observables(*skip) == observables(*step)
    assert skip[0]._faults.summary() == step[0]._faults.summary()
    return skip[0]


class TestFaultHorizonEquivalence:
    """Armed faults stay bit-identical under the event horizon."""

    @pytest.mark.parametrize("fault_kwargs", [
        {"bitflip_rate": 0.01},
        {"drop_rate": 0.01},
        {"stuck_rate": 0.002},
        {"credit_loss_rate": 0.01},
        {"failstop_rate": 0.002},
        {"failstop_rate": 0.01, "failstop_duration": 50},
    ], ids=["bitflip", "drop", "stuck", "credit_loss", "failstop",
            "failstop_short_windows"])
    @pytest.mark.parametrize("recovery", [True, False])
    def test_single_class(self, fault_kwargs, recovery):
        assert_horizon_equivalent(FaultConfig(recovery=recovery,
                                              **fault_kwargs))

    def test_all_classes_at_once(self):
        net = assert_horizon_equivalent(FaultConfig(
            bitflip_rate=0.005, drop_rate=0.005, stuck_rate=0.001,
            credit_loss_rate=0.005, failstop_rate=0.001, recovery=True))
        assert net.stats.skipped_cycles > 0  # the fast path really ran

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    def test_property_failstop_equivalence(self, seed):
        """Fail-stop is the hard case: frozen flits must survive skips
        (revival voids the quiescence proof; DESIGN.md §13)."""
        assert_horizon_equivalent(
            FaultConfig(failstop_rate=0.005, failstop_duration=100,
                        recovery=True),
            seed=seed, cycles=1500)
