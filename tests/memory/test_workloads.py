"""Tests for the CMP workload generator and coherence-accurate traces."""


from repro.core import FpVaxxScheme
from repro.memory.workloads import (
    CmpWorkload,
    SharingMix,
    benchmark_coherence_trace,
)
from repro.noc import Network, NocConfig, PacketKind
from repro.traffic import TraceTraffic, get_benchmark

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)


class TestWorkload:
    def test_produces_trace(self):
        trace = benchmark_coherence_trace("ssca2", n_cores=4, n_nodes=8,
                                          accesses_per_core=50)
        assert trace
        kinds = {r.kind for r in trace}
        assert PacketKind.CONTROL in kinds
        assert PacketKind.DATA in kinds

    def test_deterministic(self):
        a = benchmark_coherence_trace("x264", n_cores=4, n_nodes=8,
                                      accesses_per_core=30, seed=5)
        b = benchmark_coherence_trace("x264", n_cores=4, n_nodes=8,
                                      accesses_per_core=30, seed=5)
        assert [(r.cycle, r.src, r.dst, r.kind) for r in a] == \
            [(r.cycle, r.src, r.dst, r.kind) for r in b]

    def test_sharing_produces_invalidations(self):
        workload = CmpWorkload(get_benchmark("canneal"), n_cores=4,
                               n_nodes=8, seed=2,
                               mix=SharingMix(shared_read=0.1,
                                              producer_consumer=0.5,
                                              migratory=0.3))
        workload.run(100)
        stats = workload.collector.system.stats
        assert stats.invalidations > 0
        assert stats.writebacks > 0

    def test_private_only_mix_has_no_invalidations(self):
        workload = CmpWorkload(get_benchmark("canneal"), n_cores=4,
                               n_nodes=8, seed=3,
                               mix=SharingMix(0.0, 0.0, 0.0))
        workload.run(60)
        assert workload.collector.system.stats.invalidations == 0

    def test_migratory_blocks_ping_pong(self):
        workload = CmpWorkload(get_benchmark("fluidanimate"), n_cores=4,
                               n_nodes=8, seed=4,
                               mix=SharingMix(0.0, 0.0, 1.0))
        workload.run(50)
        stats = workload.collector.system.stats
        assert stats.writebacks > 0  # M copies migrate between cores

    def test_trace_replays_on_network(self):
        trace = benchmark_coherence_trace("ssca2", n_cores=4,
                                          n_nodes=SMALL.n_nodes,
                                          accesses_per_core=40)
        network = Network(SMALL, FpVaxxScheme(SMALL.n_nodes, 10))
        network.set_traffic(TraceTraffic(trace))
        network.run(trace[-1].cycle + 1)
        assert network.drain(100_000)
        assert (sum(network.stats.packets_injected.values())
                == network.stats.total_packets_delivered == len(trace))

    def test_approximation_through_coherence(self):
        """With a VAXX scheme attached, shared float data is approximated
        in flight but the coherence protocol still functions."""
        scheme = FpVaxxScheme(8, error_threshold_pct=10)
        workload = CmpWorkload(get_benchmark("streamcluster"), n_cores=4,
                               n_nodes=8, seed=6, scheme=scheme)
        workload.run(80)
        assert scheme.quality.total_words > 0
        assert scheme.quality.data_quality > 0.97
