"""Tests for the coherent multicore memory system."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import BaselineScheme
from repro.core import DataType, FpVaxxScheme
from repro.memory import CmpMemorySystem, TraceCollector
from repro.noc.packet import PacketKind

WORDS = tuple(range(16))


def make_system(scheme=None, n_cores=4):
    return CmpMemorySystem(n_cores=n_cores, scheme=scheme,
                           n_nodes=max(n_cores, scheme.n_nodes
                                       if scheme else n_cores))


class TestBasicCoherence:
    def test_read_after_write_same_core(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        assert sys.read_block(0, 100) == WORDS

    def test_read_after_write_other_core(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        assert sys.read_block(1, 100) == WORDS

    def test_write_invalidates_sharers(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        sys.read_block(1, 100)
        sys.read_block(2, 100)
        new = tuple(w + 1 for w in WORDS)
        sys.write_block(1, 100, new)
        assert sys.stats.invalidations >= 1
        assert sys.read_block(2, 100) == new

    def test_ping_pong_writebacks(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        sys.write_block(1, 100, tuple(w + 1 for w in WORDS))
        assert sys.stats.writebacks >= 1

    def test_upgrade_on_shared_copy(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        sys.read_block(1, 100)
        sys.write_block(1, 100, WORDS)
        assert sys.stats.upgrades >= 1

    def test_flush_writes_dirty_data_back(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        sys.flush()
        assert sys.memory_words(100) == WORDS

    def test_hit_does_not_message(self):
        sys = make_system()
        sys.write_block(0, 100, WORDS)
        before = sys.stats.control_messages + sys.stats.data_messages
        sys.read_block(0, 100)
        after = sys.stats.control_messages + sys.stats.data_messages
        assert after == before

    def test_word_count_validated(self):
        sys = make_system()
        with pytest.raises(ValueError):
            sys.write_block(0, 100, (1, 2, 3))

    def test_core_node_mapping_spreads(self):
        sys = CmpMemorySystem(n_cores=16, n_nodes=32)
        nodes = {sys.node_of_core(c) for c in range(16)}
        assert len(nodes) == 16

    def test_too_many_cores_rejected(self):
        with pytest.raises(ValueError):
            CmpMemorySystem(n_cores=8, n_nodes=4)


class TestApproximationThroughTransfers:
    def test_non_approximable_region_is_exact(self):
        scheme = FpVaxxScheme(n_nodes=16, error_threshold_pct=20)
        sys = CmpMemorySystem(n_cores=4, scheme=scheme, n_nodes=16)
        sys.register_region("precise", 0, 1000, DataType.INT,
                            approximable=False)
        payload = tuple((70003 + i) & 0xFFFFFFFF for i in range(16))
        sys.write_block(0, 100, payload)
        sys.flush()
        assert sys.read_block(1, 100) == payload

    def test_approximable_region_bounded_error(self):
        scheme = FpVaxxScheme(n_nodes=16, error_threshold_pct=10)
        sys = CmpMemorySystem(n_cores=4, scheme=scheme, n_nodes=16)
        sys.register_region("approx", 0, 1000, DataType.INT,
                            approximable=True)
        payload = tuple(70000 + i for i in range(16))
        sys.write_block(0, 100, payload)
        sys.flush()
        observed = sys.read_block(1, 100)
        for precise, approx in zip(payload, observed):
            assert abs(approx - precise) <= 4 * precise * 0.10 + 1

    def test_baseline_scheme_never_perturbs(self):
        scheme = BaselineScheme(16)
        sys = CmpMemorySystem(n_cores=4, scheme=scheme, n_nodes=16)
        sys.register_region("approx", 0, 1000, DataType.INT,
                            approximable=True)
        payload = tuple(12345 + 7 * i for i in range(16))
        sys.write_block(0, 200, payload)
        sys.flush()
        assert sys.read_block(2, 200) == payload

    @given(st.lists(st.tuples(st.integers(0, 3), st.integers(0, 20),
                              st.booleans()),
                    min_size=1, max_size=60))
    @settings(max_examples=20, deadline=None)
    def test_coherence_without_approximation_is_sequential(self, ops):
        """With an exact scheme, the system behaves like a plain memory."""
        sys = make_system()
        shadow = {}
        counter = [0]
        for core, addr, is_write in ops:
            if is_write:
                counter[0] += 1
                value = tuple((counter[0] + i) & 0xFFFFFFFF
                              for i in range(16))
                sys.write_block(core, addr, value)
                shadow[addr] = value
            else:
                expected = shadow.get(addr, (0,) * 16)
                assert sys.read_block(core, addr) == expected


class TestTraceCollector:
    def test_misses_produce_records(self):
        collector = TraceCollector(n_cores=4, n_nodes=32)
        collector.write(0, 100, WORDS)
        collector.read(1, 100)
        kinds = {r.kind for r in collector.records}
        assert PacketKind.CONTROL in kinds
        assert PacketKind.DATA in kinds

    def test_clock_advances_more_on_miss(self):
        collector = TraceCollector(n_cores=4, n_nodes=32, compute_gap=2,
                                   miss_penalty=50)
        collector.write(0, 100, WORDS)
        t_after_miss = collector._clock
        collector.read(0, 100)  # hit
        assert collector._clock - t_after_miss == 2

    def test_records_are_time_ordered(self):
        collector = TraceCollector(n_cores=4, n_nodes=32)
        for i in range(20):
            collector.write(i % 4, i, WORDS)
            collector.read((i + 1) % 4, i)
        cycles = [r.cycle for r in collector.records]
        assert cycles == sorted(cycles)
