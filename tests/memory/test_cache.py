"""Tests for the set-associative cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory.cache import SetAssociativeCache


def tiny_cache(ways=2, sets=4):
    return SetAssociativeCache(size_bytes=ways * sets * 64, ways=ways,
                               line_bytes=64)


class TestGeometry:
    def test_paper_l1_geometry(self):
        cache = SetAssociativeCache(64 * 1024, ways=2, line_bytes=64)
        assert cache.n_sets == 512

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, ways=3, line_bytes=64)


class TestBasicOps:
    def test_miss_then_hit(self):
        cache = tiny_cache()
        assert cache.access(5) is False
        cache.fill(5)
        assert cache.access(5) is True
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = tiny_cache(ways=2, sets=1)
        cache.fill(0)
        cache.fill(1)
        cache.access(0)          # 0 becomes MRU
        victim = cache.fill(2)   # evicts 1
        assert victim is not None
        assert victim[0] == 1

    def test_dirty_eviction_counts_writeback(self):
        cache = tiny_cache(ways=1, sets=1)
        cache.fill(0, dirty=True)
        cache.fill(1)
        assert cache.stats.writebacks == 1

    def test_invalidate(self):
        cache = tiny_cache()
        cache.fill(7)
        assert cache.invalidate(7) is not None
        assert cache.access(7) is False
        assert cache.invalidate(7) is None

    def test_victim_address_reconstruction(self):
        cache = tiny_cache(ways=1, sets=4)
        cache.fill(6)            # set 2
        victim = cache.fill(10)  # also set 2 (10 % 4 == 2)
        assert victim[0] == 6

    def test_resident_blocks(self):
        cache = tiny_cache()
        for addr in (1, 2, 3):
            cache.fill(addr)
        assert sorted(cache.resident_blocks()) == [1, 2, 3]

    def test_miss_rate(self):
        cache = tiny_cache()
        cache.access(1)
        cache.fill(1)
        cache.access(1)
        assert cache.stats.miss_rate == pytest.approx(0.5)

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_capacity_invariant(self, addresses):
        """The cache never holds more lines than ways x sets."""
        cache = tiny_cache(ways=2, sets=4)
        for addr in addresses:
            if not cache.access(addr):
                cache.fill(addr)
        assert len(cache.resident_blocks()) <= 8
        # and no set exceeds its way count
        from collections import Counter
        per_set = Counter(addr % 4 for addr in cache.resident_blocks())
        assert all(count <= 2 for count in per_set.values())

    @given(st.lists(st.integers(0, 31), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_rehit_after_fill(self, addresses):
        """A filled block hits until evicted or invalidated."""
        cache = tiny_cache(ways=4, sets=8)  # 32 lines: no evictions here
        for addr in addresses:
            if not cache.access(addr):
                cache.fill(addr)
        for addr in set(addresses):
            assert cache.lookup(addr, touch=False) is not None
