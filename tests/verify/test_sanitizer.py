"""NoCSan runtime sanitizer tests.

The tier-1 suite runs clean under ``REPRO_SANITIZE=1`` (the simulator has
no latent violations), so each invariant is locked by a deliberately broken
``Router`` subclass injected through ``Network(router_factory=...)`` — the
sanitizer must catch every seeded bug, and a clean network must sail
through with bit-identical results.
"""

import random

import pytest

from repro.compression import BaselineScheme
from repro.core import CacheBlock, FpVaxxScheme
from repro.core.block import DataType
from repro.core.error_control import WindowErrorBudget
from repro.compression.base import EncodedBlock, WordEncoding
from repro.harness.experiment import benchmark_trace, run_trace
from repro.noc import Network, NocConfig, PacketKind, TrafficRequest
from repro.noc.config import TINY_CONFIG
from repro.noc.packet import Packet
from repro.noc.router import Router
from repro.verify.sanitizer import (
    NocSanitizer,
    SanitizerError,
    sanitize_enabled,
)

SANITIZED_TINY = NocConfig(mesh_width=2, mesh_height=2, concentration=1,
                           sanitize=True)


def make_block(seed=3, approximable=True):
    rng = random.Random(seed)
    words = [rng.choice([0, 1, 9, 100, 5000, 70000]) for _ in range(16)]
    return CacheBlock.from_ints(words, approximable=approximable)


class SteadyTraffic:
    """Deterministic mixed control/data traffic for a fixed cycle window."""

    def __init__(self, n_nodes, cycles, period=3, seed=17):
        self.n = n_nodes
        self.cycles = cycles
        self.period = period
        self.rng = random.Random(seed)

    def generate(self, cycle):
        if cycle >= self.cycles or cycle % self.period:
            return []
        src = self.rng.randrange(self.n)
        dst = (src + 1 + self.rng.randrange(self.n - 1)) % self.n
        if dst == src:
            dst = (src + 1) % self.n
        if self.rng.random() < 0.5:
            return [TrafficRequest(src, dst, PacketKind.DATA,
                                   make_block(self.rng.randrange(99)))]
        return [TrafficRequest(src, dst, PacketKind.CONTROL)]


def sanitized_network(scheme_cls=BaselineScheme, router_factory=None,
                      config=SANITIZED_TINY, **scheme_kw):
    scheme = scheme_cls(config.n_nodes, **scheme_kw)
    return Network(config, scheme, router_factory=router_factory)


# ---------------------------------------------------------------------------
# Enablement plumbing
# ---------------------------------------------------------------------------

class TestEnablement:
    def test_config_flag_enables(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert sanitize_enabled(SANITIZED_TINY)
        assert not sanitize_enabled(TINY_CONFIG)

    def test_env_variable_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert sanitize_enabled(TINY_CONFIG)
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled(TINY_CONFIG)

    def test_disabled_network_has_no_sanitizer(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        net = Network(TINY_CONFIG, BaselineScheme(TINY_CONFIG.n_nodes))
        assert net._sanitizer is None

    def test_enabled_network_has_sanitizer(self):
        assert sanitized_network()._sanitizer is not None


# ---------------------------------------------------------------------------
# Clean runs: no false positives, bit-identical results
# ---------------------------------------------------------------------------

class TestCleanRuns:
    def test_clean_traffic_passes_every_audit(self):
        net = sanitized_network(FpVaxxScheme)
        net.set_traffic(SteadyTraffic(net.config.n_nodes, cycles=200))
        net.run(200)
        assert net.drain()
        sanitizer = net._sanitizer
        assert sanitizer.delivered > 0
        assert sanitizer.injected == sanitizer.delivered
        assert not sanitizer._births  # all flits accounted for

    def test_sanitized_results_are_bit_identical(self):
        config = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
        trace = benchmark_trace(config, "ssca2", 300, seed=11)
        plain = run_trace(config, "FP-VAXX", trace, warmup=100, measure=200,
                          sanitize=False)
        checked = run_trace(config, "FP-VAXX", trace, warmup=100,
                            measure=200, sanitize=True)
        assert plain.simulation_outputs() == checked.simulation_outputs()


# ---------------------------------------------------------------------------
# Seeded router bugs: every invariant class must fire
# ---------------------------------------------------------------------------

class DropCreditRouter(Router):
    """Never returns credits upstream (classic leak)."""

    def _traverse(self, in_port, in_vc, out_port, send, credit):
        super()._traverse(in_port, in_vc, out_port, send, lambda p, v: None)


class DoubleCreditRouter(Router):
    """Returns every credit twice (fabricates buffer space)."""

    def _traverse(self, in_port, in_vc, out_port, send, credit):
        def twice(p, v):
            credit(p, v)
            credit(p, v)
        super()._traverse(in_port, in_vc, out_port, send, twice)


class LeakOwnerRouter(Router):
    """Forgets to release output-VC ownership on tail traversal."""

    def _traverse(self, in_port, in_vc, out_port, send, credit):
        ivc = self.inputs[in_port][in_vc]
        flit = ivc.buffer[0]
        out_vc = ivc.out_vc
        super()._traverse(in_port, in_vc, out_port, send, credit)
        if flit.is_tail:
            self.out_owner[out_port][out_vc] = (in_port, in_vc)  # re-leak


class PhantomFlitRouter(Router):
    """Corrupts the buffered-flit accounting on arrival."""

    def accept(self, port, vc, flit, now):
        super().accept(port, vc, flit, now)
        self._buffered += 1  # phantom flit


class StalledRouter(Router):
    """Never grants switch allocation: flits age forever."""

    def _switch_allocate_and_traverse(self, now, send, credit):
        return


def run_with_broken_router(router_factory, cycles=64, scheme_cls=None,
                           max_flit_age=None):
    scheme_cls = scheme_cls or BaselineScheme
    net = sanitized_network(scheme_cls, router_factory=router_factory)
    if max_flit_age is not None:
        net._sanitizer.max_flit_age = max_flit_age
    net.set_traffic(SteadyTraffic(net.config.n_nodes, cycles=cycles))
    net.run(cycles)
    net.drain(max_cycles=2_000)


class TestSeededViolations:
    def test_dropped_credit_is_caught(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(DropCreditRouter)
        assert excinfo.value.invariant == "credit-conservation"

    def test_double_credit_is_caught(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(DoubleCreditRouter)
        assert excinfo.value.invariant == "credit-conservation"

    def test_leaked_vc_ownership_is_caught(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(LeakOwnerRouter)
        assert excinfo.value.invariant == "router-state"

    def test_phantom_flit_is_caught_immediately(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(PhantomFlitRouter)
        assert excinfo.value.invariant == "flit-conservation"

    def test_starvation_watchdog_fires(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(StalledRouter, max_flit_age=20)
        assert excinfo.value.invariant == "starvation"
        assert "still in flight" in str(excinfo.value)

    def test_violation_carries_context_and_trace(self):
        with pytest.raises(SanitizerError) as excinfo:
            run_with_broken_router(DropCreditRouter)
        error = excinfo.value
        assert error.cycle is not None
        assert error.trace  # replayable event tail
        assert "[credit-conservation]" in str(error)


# ---------------------------------------------------------------------------
# End-to-end error-bound oracle
# ---------------------------------------------------------------------------

class CorruptingScheme(BaselineScheme):
    """Flips a bit in every decoded block (models a buggy decoder)."""

    def _make_node(self, node_id):
        codec = super()._make_node(node_id)
        original_decode = codec.decode

        def decode(encoded, src):
            result = original_decode(encoded, src)
            words = list(result.block.words)
            words[0] ^= 1
            result.block = result.block.replace_words(words)
            return result

        codec.decode = decode
        return codec


def oracle_packet(word_encodings, dtype=DataType.INT):
    encoded = EncodedBlock(words=list(word_encodings), dtype=dtype,
                           approximable=True,
                           size_bits=32 * len(word_encodings))
    return Packet(src=0, dst=1, kind=PacketKind.DATA,
                  size_flits=2, encoded=encoded)


def word(original, decoded, approximated):
    return WordEncoding(original=original, decoded=decoded, bits=32,
                        compressed=True, approximated=approximated)


class TestErrorBoundOracle:
    def test_corrupted_decode_is_caught_end_to_end(self):
        net = sanitized_network(CorruptingScheme)
        net.submit(TrafficRequest(0, 1, PacketKind.DATA, make_block()))
        with pytest.raises(SanitizerError) as excinfo:
            net.drain()
        assert excinfo.value.invariant == "error-bound"
        assert "promised" in str(excinfo.value)

    def test_admissible_approximation_passes(self):
        sanitizer = sanitized_network(FpVaxxScheme)._sanitizer
        # 100 @ 10%: shift 3, range 12, 4 don't-care bits -> 108 is legal.
        packet = oracle_packet([word(100, 108, approximated=True)])
        sanitizer._check_delivered_block(packet, CacheBlock((108,)))

    def test_mask_violation_is_caught(self):
        sanitizer = sanitized_network(FpVaxxScheme)._sanitizer
        # Bit 8 is far outside the 4-bit mask of 100 @ 10%.
        packet = oracle_packet([word(100, 100 ^ 0x100, approximated=True)])
        with pytest.raises(SanitizerError, match="don't-care mask"):
            sanitizer._check_delivered_block(packet,
                                             CacheBlock((100 ^ 0x100,)))

    def test_silent_value_change_is_caught(self):
        sanitizer = sanitized_network(FpVaxxScheme)._sanitizer
        packet = oracle_packet([word(5, 7, approximated=False)])
        with pytest.raises(SanitizerError,
                           match="without being marked approximated"):
            sanitizer._check_delivered_block(packet, CacheBlock((7,)))

    def test_delivered_word_must_match_promise(self):
        sanitizer = sanitized_network(FpVaxxScheme)._sanitizer
        packet = oracle_packet([word(100, 108, approximated=True)])
        with pytest.raises(SanitizerError, match="promised"):
            sanitizer._check_delivered_block(packet, CacheBlock((109,)))

    def test_word_count_mismatch_is_caught(self):
        sanitizer = sanitized_network(FpVaxxScheme)._sanitizer
        packet = oracle_packet([word(5, 5, approximated=False)])
        with pytest.raises(SanitizerError, match="words"):
            sanitizer._check_delivered_block(packet, CacheBlock((5, 5)))

    def test_thresholdless_scheme_may_not_approximate(self):
        sanitizer = sanitized_network(BaselineScheme)._sanitizer
        packet = oracle_packet([word(100, 108, approximated=True)])
        with pytest.raises(SanitizerError, match="no error threshold"):
            sanitizer._check_delivered_block(packet, CacheBlock((108,)))

    def test_window_budget_allowance_is_enforced(self):
        net = sanitized_network(
            FpVaxxScheme,
            budget_factory=lambda: WindowErrorBudget(threshold_pct=10.0,
                                                     window=1))
        sanitizer = net._sanitizer
        # 100 -> 115 is mask-admissible in paper mode (15 <= range bits)
        # but its 15% relative error exceeds the window=1 allowance of 10%.
        packet = oracle_packet([word(100, 111, approximated=True)])
        with pytest.raises(SanitizerError, match="window budget"):
            sanitizer._check_delivered_block(packet, CacheBlock((111,)))
