"""``python -m repro.verify`` CLI tests: exit codes, formats, self-test."""

import json

import pytest

from repro.noc.routing import (
    RoutingProperties,
    register_routing_fn,
    unregister_routing_fn,
)
from repro.verify.cdg import cyclic_demo_route
from repro.verify.cli import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    KNOWN_CONFIGS,
    main,
)
from repro.verify.static import clear_verification_cache


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_verification_cache()
    yield
    clear_verification_cache()


class TestExitCodes:
    def test_default_invocation_is_clean(self, capsys):
        assert main([]) == EXIT_CLEAN
        out = capsys.readouterr().out
        for name in KNOWN_CONFIGS:
            assert name in out
        assert "0 failed" in out

    def test_named_configs_only(self, capsys):
        assert main(["tiny"]) == EXIT_CLEAN
        out = capsys.readouterr().out
        assert "tiny" in out
        assert "paper" not in out

    def test_unknown_config_is_usage_error(self, capsys):
        assert main(["nonexistent"]) == EXIT_USAGE
        assert "unknown config" in capsys.readouterr().err

    def test_unknown_routing_is_usage_error(self, capsys):
        assert main(["tiny", "--routing", "bogus"]) == EXIT_USAGE

    def test_cyclic_routing_fails_with_findings(self, capsys):
        register_routing_fn("cyclic-demo", cyclic_demo_route,
                            RoutingProperties(minimal=False))
        try:
            code = main(["tiny", "--routing", "cyclic-demo"])
        finally:
            unregister_routing_fn("cyclic-demo")
        assert code == EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "VERIFY102" in out
        assert "FAIL" in out


class TestCustomMesh:
    def test_mesh_flag(self, capsys):
        assert main(["--mesh", "3x5", "--num-vcs", "2"]) == EXIT_CLEAN
        assert "3x5" in capsys.readouterr().out

    def test_mesh_and_named_configs_conflict(self, capsys):
        assert main(["tiny", "--mesh", "2x2"]) == EXIT_USAGE

    def test_malformed_mesh(self, capsys):
        with pytest.raises(SystemExit):
            main(["--mesh", "4by4"])


class TestJsonFormat:
    def test_json_payload_parses(self, capsys):
        assert main(["tiny", "--format", "json"]) == EXIT_CLEAN
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] == 0
        assert payload["checked"] == 2  # xy + yx
        report = payload["reports"][0]
        assert report["config_name"] == "tiny"
        assert report["ok"] is True
        assert report["violations"] == []


class TestSelfTest:
    def test_self_test_passes(self, capsys):
        assert main(["--self-test"]) == EXIT_CLEAN
        assert "self-test OK" in capsys.readouterr().out
