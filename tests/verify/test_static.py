"""Static verifier tests: rule catalogue, Network gate, field registry."""

import dataclasses

import pytest

from repro.compression import BaselineScheme
from repro.noc import Network
from repro.noc.config import NocConfig, PAPER_CONFIG, TINY_CONFIG
from repro.noc.routing import (
    RoutingProperties,
    register_routing_fn,
    unregister_routing_fn,
    xy_route,
)
from repro.noc.topology import NORTH
from repro.verify.cdg import cyclic_demo_route
from repro.verify.static import (
    VALIDATED_CONFIG_FIELDS,
    ConfigVerificationError,
    clear_verification_cache,
    ensure_network_verified,
    verify_config,
)


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_verification_cache()
    yield
    clear_verification_cache()


@pytest.fixture
def cyclic_routing():
    register_routing_fn("cyclic-demo", cyclic_demo_route,
                        RoutingProperties(minimal=False))
    yield "cyclic-demo"
    unregister_routing_fn("cyclic-demo")


def codes(report):
    return {v.code for v in report.violations}


class TestCleanConfigs:
    @pytest.mark.parametrize("config", [PAPER_CONFIG, TINY_CONFIG])
    @pytest.mark.parametrize("routing", ["xy", "yx"])
    def test_benchmark_configs_verify_clean(self, config, routing):
        report = verify_config(config, routing)
        assert report.ok
        assert report.violations == []
        assert report.pairs_checked == \
            config.n_nodes * (config.n_nodes - 1)
        assert report.cdg_channels > 0

    def test_unknown_routing_is_a_usage_error(self):
        with pytest.raises(ValueError, match="unknown routing"):
            verify_config(TINY_CONFIG, "no-such-routing")

    def test_json_dict_shape(self):
        report = verify_config(TINY_CONFIG, "xy")
        payload = report.to_json_dict()
        assert payload["ok"] is True
        assert payload["routing"] == "xy"
        assert payload["config"]["mesh_width"] == 2
        assert payload["violations"] == []


class TestDeadlockDetection:
    def test_cyclic_routing_is_rejected(self, cyclic_routing):
        report = verify_config(TINY_CONFIG, cyclic_routing)
        assert not report.ok
        assert "VERIFY102" in codes(report)
        message = next(v for v in report.violations
                       if v.code == "VERIFY102").message
        assert "->" in message  # witness cycle is spelled out

    def test_unroutable_function_is_rejected(self):
        register_routing_fn("north-forever", lambda t, r, d: NORTH,
                            RoutingProperties(minimal=False))
        try:
            report = verify_config(TINY_CONFIG, "north-forever")
        finally:
            unregister_routing_fn("north-forever")
        assert not report.ok
        assert "VERIFY101" in codes(report)

    def test_non_minimal_route_warns_when_declared_minimal(self):
        def detour(topology, router, dst_node):
            # Take the YX leg first from router 0 only: still delivers,
            # but 0 -> (1,0)-attached nodes go S,E,N instead of E.
            x, y = topology.coords(router)
            if (x, y) == (0, 0) and \
                    topology.coords(topology.router_of(dst_node)) == (1, 0):
                return 2  # SOUTH: a detour
            return xy_route(topology, router, dst_node)

        register_routing_fn("detour", detour)  # declared minimal (default)
        try:
            report = verify_config(TINY_CONFIG, "detour")
        finally:
            unregister_routing_fn("detour")
        assert "VERIFY103" in codes(report)
        warning = next(v for v in report.violations
                       if v.code == "VERIFY103")
        assert warning.severity == "warning"

    def test_escape_vc_requirements(self):
        register_routing_fn(
            "adaptive-demo", xy_route,
            RoutingProperties(requires_escape_vc=True, escape_fn=None))
        try:
            single_vc = NocConfig(mesh_width=2, mesh_height=2,
                                  concentration=1, num_vcs=1)
            report = verify_config(single_vc, "adaptive-demo")
            assert not report.ok
            messages = [v.message for v in report.violations
                        if v.code == "VERIFY104"]
            assert len(messages) == 2  # too few VCs + no escape_fn
            # With enough VCs and a declared escape restriction, the CDG
            # is built from the escape function and the config passes.
            register_routing_fn(
                "adaptive-ok", cyclic_demo_route,
                RoutingProperties(minimal=False, requires_escape_vc=True,
                                  escape_fn=xy_route))
            try:
                report = verify_config(TINY_CONFIG, "adaptive-ok")
            finally:
                unregister_routing_fn("adaptive-ok")
            assert "VERIFY104" not in codes(report)
            assert "VERIFY102" not in codes(report)
        finally:
            unregister_routing_fn("adaptive-demo")


class TestConfigRules:
    def test_degenerate_traffic_warns(self):
        lonely = NocConfig(mesh_width=1, mesh_height=1, concentration=1)
        report = verify_config(lonely, "xy")
        assert report.ok  # warning only
        assert "VERIFY203" in codes(report)

    def test_all_noc_config_fields_are_registered(self):
        # Runtime twin of the REPRO602 lint rule: adding a NocConfig field
        # without a validation rule must fail here too.
        field_names = {f.name for f in dataclasses.fields(NocConfig)}
        assert field_names <= VALIDATED_CONFIG_FIELDS
        # ... and the registry carries no stale entries either.
        assert VALIDATED_CONFIG_FIELDS <= field_names


class TestNetworkGate:
    def test_network_init_rejects_cyclic_routing(self, cyclic_routing):
        scheme = BaselineScheme(TINY_CONFIG.n_nodes)
        with pytest.raises(ConfigVerificationError) as excinfo:
            Network(TINY_CONFIG, scheme, routing=cyclic_routing)
        assert excinfo.value.report.routing == cyclic_routing
        assert "VERIFY102" in codes(excinfo.value.report)

    def test_network_init_accepts_benchmark_configs(self):
        Network(TINY_CONFIG, BaselineScheme(TINY_CONFIG.n_nodes))

    def test_gate_result_is_cached_per_config(self):
        calls = []
        import repro.verify.static as static

        original = static.verify_config

        def counting(config, routing="xy"):
            calls.append((config, routing))
            return original(config, routing)

        static.verify_config = counting
        try:
            ensure_network_verified(TINY_CONFIG, "xy")
            ensure_network_verified(TINY_CONFIG, "xy")
            ensure_network_verified(TINY_CONFIG, "yx")
        finally:
            static.verify_config = original
        assert len(calls) == 2  # one per distinct (config, routing)

    def test_failing_pair_stays_failing_from_cache(self, cyclic_routing):
        with pytest.raises(ConfigVerificationError):
            ensure_network_verified(TINY_CONFIG, cyclic_routing)
        with pytest.raises(ConfigVerificationError):
            ensure_network_verified(TINY_CONFIG, cyclic_routing)
