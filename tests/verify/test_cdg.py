"""Channel-dependency-graph construction and cycle-detection tests."""

from repro.noc.config import NocConfig, PAPER_CONFIG, TINY_CONFIG
from repro.noc.routing import xy_route, yx_route
from repro.noc.topology import EAST, MeshTopology, NORTH, SOUTH, WEST
from repro.verify.cdg import (
    Channel,
    build_cdg,
    cyclic_demo_route,
    find_cycle,
    trace_route,
)


class TestTraceRoute:
    def test_xy_diagonal_path(self):
        topology = MeshTopology(TINY_CONFIG)
        # Node 0 at router (0,0), node 3 at router (1,1): east then south.
        trace = trace_route(topology, xy_route, 0, 3)
        assert trace.ok
        assert trace.routers == (0, 1, 3)
        assert trace.channels == (Channel(0, EAST), Channel(1, SOUTH))
        assert trace.hops == 2

    def test_yx_orders_dimensions_the_other_way(self):
        topology = MeshTopology(TINY_CONFIG)
        trace = trace_route(topology, yx_route, 0, 3)
        assert trace.ok
        assert trace.channels == (Channel(0, SOUTH), Channel(2, EAST))

    def test_same_router_pair_takes_zero_hops(self):
        config = NocConfig(mesh_width=2, mesh_height=2, concentration=2)
        topology = MeshTopology(config)
        trace = trace_route(topology, xy_route, 0, 1)  # both on router 0
        assert trace.ok
        assert trace.hops == 0

    def test_off_edge_routing_is_reported(self):
        topology = MeshTopology(TINY_CONFIG)

        def north_forever(topo, router, dst):
            return NORTH

        trace = trace_route(topology, north_forever, 2, 1)
        assert not trace.ok
        assert "off the mesh edge" in trace.error

    def test_invalid_port_is_reported(self):
        topology = MeshTopology(TINY_CONFIG)
        trace = trace_route(topology, lambda t, r, d: 99, 0, 1)
        assert not trace.ok
        assert "invalid port" in trace.error

    def test_bool_port_is_rejected(self):
        topology = MeshTopology(TINY_CONFIG)
        trace = trace_route(topology, lambda t, r, d: True, 0, 1)
        assert not trace.ok

    def test_wrong_router_ejection_is_reported(self):
        topology = MeshTopology(TINY_CONFIG)
        # Eject immediately, wherever we are.
        local = topology.local_port_of(0)
        trace = trace_route(topology, lambda t, r, d: local, 1, 0)
        assert not trace.ok
        assert "attaches to" in trace.error

    def test_livelock_is_reported(self):
        # On a 3x3 mesh a destination outside the demo's 2x2 spin block is
        # never reached: the walk revisits the block forever.
        config = NocConfig(mesh_width=3, mesh_height=3, concentration=1)
        topology = MeshTopology(config)
        trace = trace_route(topology, cyclic_demo_route, 0, 8)
        assert not trace.ok
        assert "livelock" in trace.error


class TestBuildCdg:
    def test_tiny_mesh_graph_shape(self):
        graph, failures = build_cdg(TINY_CONFIG, xy_route)
        assert not failures
        # 2x2 mesh: 4 bidirectional links = 8 unidirectional channels.
        assert len(graph) == 8
        # XY on 2x2: only the four E->S / W->S / E->N / W->N turns exist.
        assert sum(len(v) for v in graph.values()) == 4

    def test_paper_mesh_is_covered(self):
        graph, failures = build_cdg(PAPER_CONFIG, xy_route)
        assert not failures
        # 4x4 mesh: 24 bidirectional links.
        assert len(graph) == 48

    def test_failed_traces_are_collected(self):
        config = NocConfig(mesh_width=3, mesh_height=3, concentration=1)
        graph, failures = build_cdg(config, cyclic_demo_route)
        assert failures
        # The spin still contributes its channel dependencies.
        assert any(graph[channel] for channel in graph)

    def test_cyclic_demo_terminates_on_tiny_mesh_yet_cycles(self):
        # On the 2x2 mesh every individual route reaches its destination —
        # the deadlock shows only in the *collective* turn set, which is
        # exactly what the CDG captures.
        graph, failures = build_cdg(TINY_CONFIG, cyclic_demo_route)
        assert not failures
        assert find_cycle(graph) is not None


class TestFindCycle:
    def test_acyclic_for_xy_and_yx(self):
        for route_fn in (xy_route, yx_route):
            graph, _ = build_cdg(PAPER_CONFIG, route_fn)
            assert find_cycle(graph) is None

    def test_detects_seeded_cycle(self):
        graph, _ = build_cdg(TINY_CONFIG, cyclic_demo_route)
        cycle = find_cycle(graph)
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert len(cycle) >= 3

    def test_handcrafted_graph(self):
        a, b, c = Channel(0, EAST), Channel(1, SOUTH), Channel(3, WEST)
        assert find_cycle({a: [b], b: [c], c: []}) is None
        cycle = find_cycle({a: [b], b: [c], c: [a]})
        assert cycle == [a, b, c, a]

    def test_deterministic_witness(self):
        graph, _ = build_cdg(TINY_CONFIG, cyclic_demo_route)
        assert find_cycle(graph) == find_cycle(graph)
