"""Differential tests for the memoized route enumeration.

``enumerate_routes`` resolves every walk with per-destination next-hop
memoization (O(destinations x routers)); its contract is *observational
equivalence* with walking every ordered node pair through
``trace_route`` (O(pairs x hops)).  These tests pin that equivalence —
delivery status, hop counts, failure messages, failure ordering and the
CDG edge set — against a reference implementation that does the
exhaustive walk, across healthy and deliberately broken routing
functions.
"""

import pytest

from repro.noc.config import NocConfig
from repro.noc.routing import ROUTING_FUNCTIONS, get_routing_fn
from repro.noc.topology import MeshTopology, NORTH, NUM_DIRECTIONS
from repro.verify.cdg import (
    Channel,
    build_cdg,
    cyclic_demo_route,
    enumerate_routes,
    trace_route,
)

CONFIGS = [
    NocConfig(mesh_width=2, mesh_height=2),
    NocConfig(mesh_width=3, mesh_height=3),
    NocConfig(mesh_width=4, mesh_height=2, concentration=2),
]


def north_forever(topology, router, dst):
    return NORTH  # off the top edge for most pairs


def invalid_everywhere(topology, router, dst):
    return "nope"


def eject_everywhere(topology, router, dst):
    return NUM_DIRECTIONS  # wrong-router ejection for remote pairs


BROKEN = [north_forever, invalid_everywhere, eject_everywhere,
          cyclic_demo_route]


def reference_walks(config, route_fn):
    """The exhaustive per-pair walk the enumeration must reproduce."""
    topology = MeshTopology(config)
    graph_edges = set()
    traces = {}
    for src in range(topology.n_nodes):
        for dst in range(topology.n_nodes):
            if src == dst:
                continue
            trace = trace_route(topology, route_fn, src, dst)
            traces[(src, dst)] = trace
            graph_edges.update(zip(trace.channels, trace.channels[1:]))
    return traces, graph_edges


def all_route_fns():
    fns = [(name, get_routing_fn(name)) for name in sorted(ROUTING_FUNCTIONS)]
    fns += [(fn.__name__, fn) for fn in BROKEN]
    return fns


@pytest.mark.parametrize("config", CONFIGS,
                         ids=lambda c: f"{c.mesh_width}x{c.mesh_height}"
                                       f"c{c.concentration}")
@pytest.mark.parametrize("name,route_fn", all_route_fns(),
                         ids=lambda v: v if isinstance(v, str) else "")
class TestEnumerationMatchesTraceRoute:
    def test_status_hops_and_errors_match(self, config, name, route_fn):
        topology = MeshTopology(config)
        enumeration = enumerate_routes(config, route_fn)
        traces, _edges = reference_walks(config, route_fn)
        for (src, dst), trace in traces.items():
            src_router = topology.router_of(src)
            error = enumeration.errors[dst][src_router]
            if trace.ok:
                assert error is None, (src, dst, error)
                assert enumeration.hops[dst][src_router] == trace.hops
            else:
                assert error == trace.error, (src, dst)

    def test_cdg_edge_set_matches(self, config, name, route_fn):
        enumeration = enumerate_routes(config, route_fn)
        _traces, reference_edges = reference_walks(config, route_fn)
        enumerated = {(a, b) for a, succ in enumeration.graph.items()
                      for b in succ}
        assert enumerated == reference_edges

    def test_build_cdg_failures_match_walk_order(self, config, name,
                                                 route_fn):
        _graph, failures = build_cdg(config, route_fn)
        traces, _edges = reference_walks(config, route_fn)
        expected = [trace for (_src, _dst), trace in sorted(traces.items())
                    if not trace.ok]
        assert failures == expected


class TestEnumerationStructure:
    def test_graph_nodes_are_all_linked_channels(self):
        config = NocConfig(mesh_width=3, mesh_height=3)
        topology = MeshTopology(config)
        enumeration = enumerate_routes(config, get_routing_fn("xy"))
        expected = {Channel(r, d) for r in range(topology.n_routers)
                    for d in range(NUM_DIRECTIONS)
                    if topology.link(r, d) is not None}
        assert set(enumeration.graph) == expected

    def test_cycle_members_name_themselves(self):
        """Every router on a next-hop cycle reports revisiting *itself*
        (its own walk returns to it first) — matching trace_route."""
        config = NocConfig(mesh_width=3, mesh_height=3)
        topology = MeshTopology(config)
        enumeration = enumerate_routes(config, cyclic_demo_route)
        for dst in range(topology.n_nodes):
            for router in range(topology.n_routers):
                error = enumeration.errors[dst][router]
                if error is not None and "revisits" in error:
                    reference = trace_route(
                        topology, cyclic_demo_route,
                        topology.node_at(router, NUM_DIRECTIONS), dst)
                    assert error == reference.error
