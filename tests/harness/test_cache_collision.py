"""Concurrent multi-process cache writers racing the same key.

The campaign service's pool workers share one ``.repro_cache`` across
processes, so ``store_cached`` must be safe under write/write and
write/read races on the *same* key: publication is a unique temp file
plus atomic ``os.replace``, and both writers produce identical content
(the spec fully determines the result), so whoever wins, every
concurrent reader sees a complete, checksum-valid entry — never a torn
or evicted one.
"""

import multiprocessing
import os

from repro.harness import parallel as parallel_mod
from repro.harness.parallel import (
    RunSpec,
    execute_spec,
    load_cached,
    store_cached,
    sweep_cache_tmp,
)
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)

ROUNDS = 40


def race_spec() -> RunSpec:
    return RunSpec(config=SMALL, mechanism="Baseline", benchmark="ssca2",
                   trace_cycles=700, warmup=250, measure=250, seed=77)


def _race_writer(barrier, failures):
    """One racing process: execute the spec, then hammer the shared key
    with store+load rounds in lockstep with its rival."""
    try:
        spec = race_spec()
        result = execute_spec(spec)
        expected = result.simulation_outputs()
        barrier.wait(timeout=60)  # maximize overlap from round one
        for _ in range(ROUNDS):
            store_cached(spec, result)
            loaded = load_cached(spec)
            # Atomic replace: a concurrent reader must always see a
            # complete entry, never a miss (eviction) or torn JSON.
            if loaded is None:
                failures.put("load returned None mid-race")
                return
            if loaded.simulation_outputs() != expected:
                failures.put("loaded outputs diverged")
                return
    except Exception as exc:  # repro: allow[bare-except]
        failures.put(f"writer crashed: {exc!r}")


class TestSameKeyCollision:
    def test_two_processes_racing_one_key(self, tmp_path, monkeypatch):
        """Two forked processes store+load the same cache key in
        lockstep; neither may ever observe a torn, evicted or divergent
        entry, and the final entry must be valid."""
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        ctx = multiprocessing.get_context("fork")
        barrier = ctx.Barrier(2)
        failures = ctx.Queue()
        writers = [ctx.Process(target=_race_writer,
                               args=(barrier, failures))
                   for _ in range(2)]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=120)
            assert writer.exitcode == 0
        assert failures.empty(), failures.get()
        # The surviving entry is complete and checksum-valid.
        final = load_cached(race_spec())
        assert final is not None
        # No temp droppings left behind by either winner or loser.
        assert list(tmp_path.glob("*.tmp")) == []

    def test_sweep_removes_only_stale_tmp_files(self, tmp_path,
                                                monkeypatch):
        """A SIGKILLed writer leaves its mkstemp dropping behind; the
        startup sweep removes old ones but spares a live writer's fresh
        temp file."""
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        stale = tmp_path / "deadbeef.tmp"
        fresh = tmp_path / "cafef00d.tmp"
        stale.write_text("{")
        fresh.write_text("{")
        old = os.stat(stale).st_mtime - 7200
        os.utime(stale, (old, old))
        removed = sweep_cache_tmp(max_age_s=3600.0)
        assert removed == 1
        assert not stale.exists()
        assert fresh.exists()
