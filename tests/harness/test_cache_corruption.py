"""Cache corruption tolerance (.repro_cache survives bit rot).

Contract: a present-but-unusable cache entry — truncated JSON, a tampered
result, a checksum that does not match, a pre-checksum legacy payload —
must never poison a sweep.  It is detected, logged, evicted from disk and
transparently recomputed; only intact entries are ever served.
"""

import json
import logging

import pytest

from repro.harness import parallel as parallel_mod
from repro.harness.parallel import (
    RunSpec,
    execute_spec,
    load_cached,
    run_specs,
    store_cached,
)
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)

LOGGER = "repro.harness.parallel"


def small_spec(**overrides) -> RunSpec:
    kw = dict(config=SMALL, mechanism="Baseline", benchmark="ssca2",
              trace_cycles=900, warmup=350, measure=350)
    kw.update(overrides)
    return RunSpec(**kw)


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


def entry_path(cache, spec):
    return cache / f"{spec.cache_key()}.json"


def store_entry(cache, spec):
    """A genuine cached result, returning (path, result)."""
    result = execute_spec(spec)
    store_cached(spec, result)
    path = entry_path(cache, spec)
    assert path.exists()
    return path, result


class TestCorruptEntryDetection:
    def test_intact_entry_survives(self, cache):
        spec = small_spec()
        path, result = store_entry(cache, spec)
        restored = load_cached(spec)
        assert restored is not None
        assert restored.simulation_outputs() == result.simulation_outputs()
        assert path.exists()  # a good entry is never evicted

    def test_garbled_json_evicted_and_logged(self, cache, caplog):
        spec = small_spec()
        path = entry_path(cache, spec)
        path.write_text("{not json")
        with caplog.at_level(logging.WARNING, logger=LOGGER):
            assert load_cached(spec) is None
        assert not path.exists()
        assert any("evicting corrupt cache entry" in rec.message
                   for rec in caplog.records)

    def test_truncated_entry_evicted(self, cache):
        spec = small_spec()
        path, _ = store_entry(cache, spec)
        blob = path.read_text()
        path.write_text(blob[:len(blob) // 2])  # torn write
        assert load_cached(spec) is None
        assert not path.exists()

    def test_tampered_result_fails_checksum(self, cache, caplog):
        spec = small_spec()
        path, _ = store_entry(cache, spec)
        payload = json.loads(path.read_text())
        payload["result"]["avg_packet_latency"] = 0.0  # one-field bit rot
        path.write_text(json.dumps(payload))
        with caplog.at_level(logging.WARNING, logger=LOGGER):
            assert load_cached(spec) is None
        assert not path.exists()
        assert any("checksum mismatch" in rec.message
                   for rec in caplog.records)

    def test_missing_checksum_key_evicted(self, cache):
        """A pre-v4 entry (no checksum field) is corruption, not a hit."""
        spec = small_spec()
        path, _ = store_entry(cache, spec)
        payload = json.loads(path.read_text())
        del payload["checksum"]
        path.write_text(json.dumps(payload))
        assert load_cached(spec) is None
        assert not path.exists()

    def test_foreign_json_evicted(self, cache):
        """Valid JSON that is not a cache entry at all."""
        spec = small_spec()
        path = entry_path(cache, spec)
        path.write_text(json.dumps([1, 2, 3]))
        assert load_cached(spec) is None
        assert not path.exists()


class TestCorruptEntryRecomputation:
    def test_sweep_recomputes_through_corruption(self, cache):
        """End to end: a garbled entry behaves exactly like a cold miss —
        the sweep recomputes, and the recomputed result matches a clean
        run bit for bit and repairs the on-disk entry."""
        spec = small_spec()
        reference = execute_spec(spec)
        entry_path(cache, spec).write_text("{not json")
        [outcome] = run_specs([spec], workers=1)
        assert outcome.ok and not outcome.cached
        assert outcome.attempts == 1
        assert (outcome.result.simulation_outputs()
                == reference.simulation_outputs())
        restored = load_cached(spec)  # the entry was rewritten, intact
        assert restored is not None
        assert (restored.simulation_outputs()
                == reference.simulation_outputs())

    def test_repaired_entry_served_as_hit(self, cache):
        spec = small_spec()
        entry_path(cache, spec).write_text('{"result": {}}')
        run_specs([spec], workers=1)
        [warm] = run_specs([spec], workers=1)
        assert warm.cached and warm.attempts == 0
