"""Tests for the CLI entry points and the results/EXPERIMENTS generator."""

import json

import pytest

from repro.harness.__main__ import TARGETS, main as cli_main, run_target
from repro.harness.results import (
    collect_all,
    headline_rows,
    main as results_main,
    render_experiments_md,
)


class TestCliTargets:
    def test_table1_target(self):
        text = run_target("table1", scale=1.0)
        assert "Table 1" in text

    def test_area_target(self):
        text = run_target("area", scale=1.0)
        assert "0.0037" in text

    def test_fig17_target(self):
        text = run_target("fig17", scale=0.1)
        assert "Figure 17" in text

    def test_fig13_target_small(self):
        text = run_target("fig13", scale=0.05)
        assert "Figure 13" in text

    def test_unknown_target(self):
        with pytest.raises(ValueError):
            run_target("fig99", scale=1.0)

    def test_main_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])

    def test_main_runs_static_targets(self, capsys):
        assert cli_main(["table1", "area"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "encoder area" in out

    def test_all_expands(self):
        assert set(TARGETS) >= {"table1", "fig9", "fig16", "area"}


class TestResultsBundle:
    @pytest.fixture(scope="class")
    def bundle(self):
        """A minimum-scale full collection (every experiment, tiny runs)."""
        return collect_all(scale=0.05)

    def test_bundle_keys(self, bundle):
        assert {"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
                "fig15", "fig16", "fig17", "area"} <= set(bundle)

    def test_headline_rows_complete(self, bundle):
        rows = headline_rows(bundle)
        metrics = " ".join(r["metric"] for r in rows)
        for token in ("Fig 9", "Fig 10", "Fig 11", "Fig 12", "Fig 15",
                      "Fig 16", "Fig 17", "5.5"):
            assert token in metrics
        for row in rows:
            assert row["paper"] and row["measured"]

    def test_render_document(self, bundle):
        document = render_experiments_md(bundle)
        for heading in ("# EXPERIMENTS", "## Headline comparisons",
                        "## Figure 9", "## Figure 12", "## Figure 16",
                        "## §5.5"):
            assert heading in document

    def test_main_writes_files(self, bundle, tmp_path, monkeypatch):
        out = tmp_path / "EXP.md"
        json_out = tmp_path / "exp.json"
        monkeypatch.setattr("repro.harness.results.collect_all",
                            lambda scale, progress=None: bundle)
        assert results_main(["--scale", "0.05", "--out", str(out),
                             "--json", str(json_out)]) == 0
        assert out.read_text().startswith("# EXPERIMENTS")
        payload = json.loads(json_out.read_text())
        assert "fig9" in payload
