"""Tests for multi-seed statistics."""

import pytest

from repro.harness.sweeps import (
    SeedStats,
    mechanism_comparison_with_error_bars,
    seed_sweep,
    significantly_better,
)
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)
FAST = dict(trace_cycles=800, warmup=300, measure=400)


class TestSeedStats:
    def test_of_constant_samples(self):
        stats = SeedStats.of([3.0, 3.0, 3.0])
        assert stats.mean == 3.0 and stats.std == 0.0 and stats.n == 3

    def test_of_spread(self):
        stats = SeedStats.of([1.0, 3.0])
        assert stats.mean == 2.0
        assert stats.std == pytest.approx(1.0)
        assert stats.rel_std == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            SeedStats.of([])

    def test_str(self):
        assert "±" in str(SeedStats.of([1.0, 2.0]))

    def test_significantly_better(self):
        fast = SeedStats.of([10.0, 10.2])
        slow = SeedStats.of([14.0, 14.4])
        assert significantly_better(fast, slow)
        assert not significantly_better(slow, fast)
        close = SeedStats.of([10.1, 10.4])
        assert not significantly_better(fast, close)


class TestSweeps:
    def test_seed_sweep_produces_stats(self):
        stats = seed_sweep("x264", "FP-VAXX", seeds=(1, 2), config=SMALL,
                           **FAST)
        assert stats.n == 2
        assert stats.mean > 0

    def test_comparison_covers_mechanisms(self):
        comparison = mechanism_comparison_with_error_bars(
            "ssca2", seeds=(1, 2), config=SMALL,
            mechanisms=("Baseline", "FP-VAXX"), **FAST)
        assert set(comparison) == {"Baseline", "FP-VAXX"}
        for stats in comparison.values():
            assert stats.n == 2

    def test_variance_is_moderate(self):
        """Seed-to-seed latency variation should stay within ~30%."""
        stats = seed_sweep("blackscholes", "Baseline", seeds=(1, 2, 3),
                           config=SMALL, **FAST)
        assert stats.rel_std < 0.3
