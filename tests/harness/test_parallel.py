"""Tests for the parallel experiment engine and its on-disk result cache.

The contract under test: serial, multi-process and cache-served executions
of the same :class:`RunSpec` produce bit-identical simulation outputs
(``RunResult.simulation_outputs``), and traces are recorded once per
(benchmark, cycles, seed) — never per mechanism.
"""

import pytest

from repro.harness import experiment as experiment_mod
from repro.harness import parallel as parallel_mod
from repro.harness.experiment import RunResult, benchmark_trace, run_trace
from repro.harness.figures import run_benchmark_suite
from repro.harness.parallel import (
    NO_CACHE_ENV,
    RunSpec,
    cache_dir,
    execute_spec,
    load_cached,
    parallel_map,
    store_cached,
    suite_specs,
)
from repro.harness.sweeps import mechanism_comparison_with_error_bars
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)


def small_spec(**overrides) -> RunSpec:
    kw = dict(config=SMALL, mechanism="FP-VAXX", benchmark="ssca2",
              trace_cycles=900, warmup=350, measure=350)
    kw.update(overrides)
    return RunSpec(**kw)


class TestRunSpec:
    def test_cache_key_is_stable(self):
        assert small_spec().cache_key() == small_spec().cache_key()

    def test_cache_key_tracks_every_field(self):
        base = small_spec()
        for overrides in ({"mechanism": "Baseline"},
                          {"benchmark": "x264"},
                          {"seed": 12},
                          {"measure": 351},
                          {"error_threshold_pct": 5.0},
                          {"approx_override": 0.5},
                          {"config": NocConfig(mesh_width=2, mesh_height=2,
                                               concentration=2, num_vcs=2)}):
            assert small_spec(**overrides).cache_key() != base.cache_key()

    def test_execute_matches_run_trace(self):
        spec = small_spec()
        trace = benchmark_trace(SMALL, spec.benchmark, spec.trace_cycles,
                                seed=spec.seed,
                                approx_packet_ratio=spec.approx_packet_ratio)
        direct = run_trace(SMALL, spec.mechanism, trace, spec.warmup,
                           spec.measure)
        assert (execute_spec(spec).simulation_outputs()
                == direct.simulation_outputs())


class TestResultCache:
    def test_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        spec = small_spec()
        assert load_cached(spec) is None
        result = execute_spec(spec)
        store_cached(spec, result)
        restored = load_cached(spec)
        assert isinstance(restored, RunResult)
        assert restored.simulation_outputs() == result.simulation_outputs()
        assert restored.power == result.power

    def test_corrupt_entry_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        spec = small_spec()
        (tmp_path / f"{spec.cache_key()}.json").write_text("{not json")
        assert load_cached(spec) is None

    def test_no_cache_env_disables_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setenv(NO_CACHE_ENV, "1")
        parallel_map([small_spec()], workers=1)
        assert not list(tmp_path.iterdir())

    def test_hit_skips_execution_and_matches_cold_run(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        spec = small_spec()
        cold = parallel_map([spec], workers=1)[0]
        assert len(list(tmp_path.glob("*.json"))) == 1

        def boom(_spec):  # a second execution would be a cache failure
            raise AssertionError("cache hit should not re-execute")

        monkeypatch.setattr(parallel_mod, "execute_spec", boom)
        warm = parallel_map([spec], workers=1)[0]
        assert warm.simulation_outputs() == cold.simulation_outputs()


class TestParallelDeterminism:
    @pytest.mark.parametrize("benchmarks",
                             [("ssca2",), ("x264", "streamcluster")])
    def test_suite_parallel_matches_serial(self, benchmarks, tmp_path,
                                           monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        kw = dict(config=SMALL, benchmarks=benchmarks,
                  mechanisms=("Baseline", "DI-COMP", "FP-VAXX"),
                  trace_cycles=900, warmup=350, measure=350)
        serial = run_benchmark_suite(**kw)            # plain in-process loop
        cold = run_benchmark_suite(workers=2, **kw)   # 2-process pool
        warm = run_benchmark_suite(workers=2, **kw)   # served from cache
        for benchmark in benchmarks:
            for mechanism, reference in serial.runs[benchmark].items():
                expected = reference.simulation_outputs()
                assert (cold.runs[benchmark][mechanism].simulation_outputs()
                        == expected)
                assert (warm.runs[benchmark][mechanism].simulation_outputs()
                        == expected)

    def test_results_keep_spec_order(self, monkeypatch, tmp_path):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        specs = suite_specs(config=SMALL, benchmarks=("ssca2",),
                            mechanisms=("Baseline", "DI-COMP", "FP-COMP"),
                            trace_cycles=900, warmup=350, measure=350)
        results = parallel_map(specs, workers=2)
        assert [r.mechanism for r in results] == [s.mechanism for s in specs]


class TestSweepTraceReuse:
    def test_one_trace_per_seed(self, monkeypatch, tmp_path):
        """The (seed x mechanism) grid must record each seed's trace once,
        not once per mechanism."""
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(experiment_mod, "_TRACE_CACHE", {})
        calls = []
        real = experiment_mod.record_trace

        def counting(source, cycles):
            calls.append(cycles)
            return real(source, cycles)

        monkeypatch.setattr(experiment_mod, "record_trace", counting)
        comparison = mechanism_comparison_with_error_bars(
            "ssca2", seeds=(1, 2), config=SMALL,
            mechanisms=("Baseline", "DI-COMP", "FP-VAXX"),
            trace_cycles=900, warmup=350, measure=350)
        assert set(comparison) == {"Baseline", "DI-COMP", "FP-VAXX"}
        assert len(calls) == 2  # one per seed, shared by all mechanisms


def test_cache_dir_default(monkeypatch):
    monkeypatch.delenv(parallel_mod.CACHE_DIR_ENV, raising=False)
    assert str(cache_dir()) == parallel_mod.DEFAULT_CACHE_DIR
