"""Crash tolerance of the parallel engine (run_specs).

A sweep must survive its weakest point: per-spec timeouts, workers that
die mid-run (OOM-kill stand-in: ``os._exit``), deterministic in-run
exceptions and interrupts all end as *recorded* :class:`SpecOutcome`
failures — never a lost sweep — while unaffected specs still complete.

Worker-side fault injection works by monkeypatching
``parallel_mod.execute_spec`` in the parent: the pool forks on Linux, so
children inherit the patched module.
"""

import os
import signal
import time
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.harness import parallel as parallel_mod
from repro.harness.parallel import (
    RunSpec,
    execute_cached,
    execute_spec,
    load_cached,
    parallel_map,
    run_specs,
    shutdown_executor,
)
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)

#: Seed marking the spec a patched execute_spec should sabotage.
DOOMED_SEED = 4242


def small_spec(**overrides) -> RunSpec:
    kw = dict(config=SMALL, mechanism="Baseline", benchmark="ssca2",
              trace_cycles=900, warmup=350, measure=350)
    kw.update(overrides)
    return RunSpec(**kw)


def doomed_spec(**overrides) -> RunSpec:
    return small_spec(seed=DOOMED_SEED, **overrides)


@pytest.fixture
def cache(tmp_path, monkeypatch):
    monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
    return tmp_path


def sabotage(monkeypatch, misbehave):
    """Patch execute_spec to ``misbehave(spec)`` on the doomed seed and
    run everything else for real."""
    real = execute_spec

    def patched(spec):
        if spec.seed == DOOMED_SEED:
            return misbehave(spec)
        return real(spec)

    monkeypatch.setattr(parallel_mod, "execute_spec", patched)


class TestOutcomeContract:
    def test_outcomes_keep_spec_order(self, cache):
        specs = [small_spec(mechanism=m)
                 for m in ("Baseline", "DI-COMP", "FP-VAXX")]
        outcomes = run_specs(specs, workers=1)
        assert [o.spec.mechanism for o in outcomes] == \
            [s.mechanism for s in specs]
        for outcome in outcomes:
            assert outcome.ok and outcome.error is None
            assert outcome.attempts == 1 and not outcome.cached

    def test_cache_hits_marked(self, cache):
        spec = small_spec()
        run_specs([spec], workers=1)
        [warm] = run_specs([spec], workers=1)
        assert warm.ok and warm.cached and warm.attempts == 0

    def test_serial_exception_recorded_not_raised(self, cache,
                                                  monkeypatch):
        def boom(spec):
            raise ValueError("synthetic in-run failure")

        sabotage(monkeypatch, boom)
        outcomes = run_specs([small_spec(), doomed_spec()], workers=1)
        good, bad = outcomes
        assert good.ok
        assert not bad.ok and bad.result is None
        assert "ValueError" in bad.error
        assert "synthetic in-run failure" in bad.error

    def test_serial_keyboard_interrupt_propagates(self, cache,
                                                  monkeypatch):
        """^C must stop the sweep, not be swallowed as a failed spec."""
        def interrupt(spec):
            raise KeyboardInterrupt

        sabotage(monkeypatch, interrupt)
        with pytest.raises(KeyboardInterrupt):
            run_specs([doomed_spec()], workers=1, use_cache=False)

    def test_parallel_map_names_failed_specs(self, cache, monkeypatch):
        def boom(spec):
            raise ValueError("synthetic in-run failure")

        sabotage(monkeypatch, boom)
        with pytest.raises(RuntimeError, match="1/2 runs failed"):
            parallel_map([small_spec(), doomed_spec()], workers=1)


class TestPoolCrashTolerance:
    def test_worker_exception_recorded_without_retry(self, cache,
                                                     monkeypatch):
        """A deterministic in-run exception would fail identically on
        every retry, so it is recorded after one attempt."""
        def boom(spec):
            raise ValueError("synthetic in-run failure")

        sabotage(monkeypatch, boom)
        good, bad = run_specs([small_spec(), doomed_spec()], workers=2,
                              retries=2, retry_backoff_s=0.0)
        assert good.ok
        assert not bad.ok and bad.attempts == 1
        assert "ValueError" in bad.error

    def test_killed_worker_recorded_as_failure(self, cache, monkeypatch):
        """os._exit skips all cleanup — exactly what the OOM killer does
        to a worker.  The doomed spec must end as a recorded failure
        (after its retry budget) while its neighbour still completes."""
        def die(spec):
            os._exit(1)

        sabotage(monkeypatch, die)
        good, bad = run_specs([small_spec(), doomed_spec()], workers=2,
                              retries=1, retry_backoff_s=0.0)
        assert good.ok and good.result is not None
        assert not bad.ok
        assert bad.attempts == 2  # initial + one retry
        assert "worker process died" in bad.error
        assert "gave up after 2 attempt(s)" in bad.error

    def test_failed_specs_never_cached(self, cache, monkeypatch):
        def die(spec):
            os._exit(1)

        sabotage(monkeypatch, die)
        good, bad = run_specs([small_spec(), doomed_spec()], workers=2,
                              retries=0, retry_backoff_s=0.0)
        assert load_cached(good.spec) is not None
        assert load_cached(bad.spec) is None

    def test_crash_once_then_retry_succeeds(self, cache, tmp_path,
                                            monkeypatch):
        """Transient deaths (the realistic OOM case) are healed by the
        quarantine re-run: same spec, fresh pool, bit-identical result —
        and the first (unattributed) crash costs no attempt."""
        flag = tmp_path / "crashed-once"
        real = execute_spec

        def die_once(spec):
            if not flag.exists():
                flag.write_text("")
                os._exit(1)
            return real(spec)

        sabotage(monkeypatch, die_once)
        reference = real(doomed_spec())
        good, healed = run_specs([small_spec(), doomed_spec()], workers=2,
                                 retries=1, retry_backoff_s=0.0,
                                 use_cache=False)
        assert good.ok
        assert healed.ok and healed.attempts == 1
        assert (healed.result.simulation_outputs()
                == reference.simulation_outputs())

    def test_timeout_recorded_as_failure(self, cache, monkeypatch):
        """A hung worker (runaway simulation) trips the per-spec wall
        clock; the spec is recorded, the pool replaced, the rest of the
        sweep completes."""
        def hang(spec):
            time.sleep(30)

        sabotage(monkeypatch, hang)
        good, bad = run_specs([small_spec(), doomed_spec()], workers=2,
                              timeout_s=1.5, retries=0,
                              retry_backoff_s=0.0)
        assert good.ok
        assert not bad.ok
        assert "allowance" in bad.error


class TestGracefulSignals:
    def test_sigterm_interrupts_pool_sweep(self, cache, monkeypatch):
        """A service manager's SIGTERM during a pool sweep must take the
        KeyboardInterrupt path: tear the pool down and propagate, not
        keep grinding until the supervisor escalates to SIGKILL."""
        def terminate_parent(spec):
            os.kill(os.getppid(), signal.SIGTERM)  # child -> parent
            time.sleep(30)  # keep the batch in flight meanwhile

        sabotage(monkeypatch, terminate_parent)
        before = signal.getsignal(signal.SIGTERM)
        with pytest.raises(KeyboardInterrupt):
            run_specs([small_spec(), doomed_spec()], workers=2,
                      use_cache=False)
        # The previous handler is restored once the sweep unwinds.
        assert signal.getsignal(signal.SIGTERM) is before

    def test_sigterm_handler_scoped_to_the_sweep(self, cache):
        """Outside run_specs the process keeps its normal SIGTERM
        disposition — the handler must not leak."""
        before = signal.getsignal(signal.SIGTERM)
        run_specs([small_spec()], workers=2)
        assert signal.getsignal(signal.SIGTERM) is before


class TestExecutorTeardown:
    def test_shutdown_executor_is_idempotent(self):
        """The campaign service can race a drain, a signal handler and a
        pool self-break into teardown: any number of calls, in any
        order relative to a normal shutdown, must be safe."""
        executor = ProcessPoolExecutor(max_workers=1)
        executor.submit(int, 1).result(timeout=30)
        shutdown_executor(executor)
        shutdown_executor(executor)  # second call: no-op, no raise
        executor.shutdown()  # stdlib shutdown after teardown: fine too
        shutdown_executor(executor)

    def test_teardown_after_broken_pool(self):
        executor = ProcessPoolExecutor(max_workers=1)
        future = executor.submit(os._exit, 1)
        with pytest.raises(Exception):
            future.result(timeout=30)
        shutdown_executor(executor)
        shutdown_executor(executor)


class TestExecuteCached:
    def test_single_spec_cache_round_trip(self, cache):
        spec = small_spec()
        cold = execute_cached(spec)
        assert cold.ok and not cold.cached and cold.attempts == 1
        warm = execute_cached(spec)
        assert warm.ok and warm.cached and warm.attempts == 0
        assert (warm.result.simulation_outputs()
                == cold.result.simulation_outputs())

    def test_fresh_bypasses_cache_both_ways(self, cache):
        """fresh=True is the validation gate's mode: it must neither
        read the cached artifact it is auditing nor overwrite it."""
        spec = small_spec()
        fresh = execute_cached(spec, fresh=True)
        assert fresh.ok and not fresh.cached
        assert load_cached(spec) is None  # no write on the fresh path
        cached = execute_cached(spec)
        assert load_cached(spec) is not None
        again = execute_cached(spec, fresh=True)
        assert not again.cached  # no read either
        assert (again.result.identity_digest()
                == cached.result.identity_digest())

    def test_exceptions_propagate(self, cache, monkeypatch):
        def boom(spec):
            raise ValueError("synthetic in-run failure")

        sabotage(monkeypatch, boom)
        with pytest.raises(ValueError):
            execute_cached(doomed_spec())
