"""File-backed :class:`RunSpec` traces: content-addressed caching and
record-window sharding (DESIGN.md §17).

The contract: a spec carrying ``trace_path`` is cache-addressed by the
file's *content digest* (moving a trace keeps its cached results,
rewriting it invalidates them), workers open the file themselves (the
spec ships a path plus offsets, never a handle), and windowed shards of
one file compose to the unsharded replay.
"""

import shutil

import pytest

from repro.harness import parallel as parallel_mod
from repro.harness.experiment import benchmark_trace, run_trace
from repro.harness.parallel import (
    RunSpec,
    execute_spec,
    load_cached,
    parallel_map,
    store_cached,
    trace_file_digest,
)
from repro.noc import NocConfig
from repro.traffic import save_trace, write_trace

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)


@pytest.fixture(scope="module")
def binary_trace(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("spec_traces")
    records = benchmark_trace(SMALL, "ssca2", 900, seed=11)
    path = tmp / "trace.rpt"
    write_trace(records, path, n_nodes=SMALL.n_nodes, chunk_records=64)
    return records, path


def file_spec(path, **overrides) -> RunSpec:
    kw = dict(config=SMALL, mechanism="FP-VAXX", benchmark="ssca2",
              trace_cycles=900, warmup=350, measure=350,
              trace_path=str(path))
    kw.update(overrides)
    return RunSpec(**kw)


class TestContentAddressedKeys:
    def test_key_follows_content_not_path(self, binary_trace, tmp_path):
        _records, path = binary_trace
        moved = tmp_path / "renamed.rpt"
        shutil.copy(path, moved)
        assert (file_spec(path).cache_key()
                == file_spec(moved).cache_key())

    def test_rewriting_the_file_changes_the_key(self, binary_trace,
                                                tmp_path):
        records, path = binary_trace
        rewritten = tmp_path / "rewritten.rpt"
        write_trace(records[:-1], rewritten, n_nodes=SMALL.n_nodes,
                    chunk_records=64)
        assert (file_spec(path).cache_key()
                != file_spec(rewritten).cache_key())

    def test_window_offsets_are_part_of_the_key(self, binary_trace):
        _records, path = binary_trace
        base = file_spec(path)
        assert base.cache_key() != file_spec(path, trace_start=5).cache_key()
        assert base.cache_key() != file_spec(path, trace_stop=50).cache_key()

    def test_digest_is_memoized_per_content(self, binary_trace, tmp_path):
        _records, path = binary_trace
        first = trace_file_digest(path)
        assert trace_file_digest(path) == first
        copy = tmp_path / "copy.rpt"
        shutil.copy(path, copy)
        assert trace_file_digest(copy) == first

    def test_canonical_carries_digest_not_path(self, binary_trace):
        _records, path = binary_trace
        canonical = file_spec(path).canonical()
        assert "trace_path" not in canonical
        assert canonical["trace_digest"] == trace_file_digest(path)


class TestFileBackedExecution:
    def test_execute_matches_run_trace(self, binary_trace):
        _records, path = binary_trace
        spec = file_spec(path)
        direct = run_trace(SMALL, spec.mechanism, str(path), spec.warmup,
                           spec.measure)
        assert (execute_spec(spec).simulation_outputs()
                == direct.simulation_outputs())

    def test_jsonl_path_also_accepted(self, binary_trace, tmp_path):
        records, path = binary_trace
        jsonl = tmp_path / "trace.jsonl"
        save_trace(records, jsonl)
        binary_run = execute_spec(file_spec(path))
        jsonl_run = execute_spec(file_spec(jsonl))
        assert (binary_run.simulation_outputs()
                == jsonl_run.simulation_outputs())

    def test_windowed_shard_replays_the_slice(self, binary_trace):
        records, path = binary_trace
        ordered = sorted(records, key=lambda r: r.cycle)
        sliced = run_trace(SMALL, "Baseline", ordered[100:300],
                           warmup=200, measure=300)
        shard = execute_spec(file_spec(path, mechanism="Baseline",
                                       warmup=200, measure=300,
                                       trace_start=100, trace_stop=300))
        assert shard.simulation_outputs() == sliced.simulation_outputs()

    def test_cache_roundtrip(self, binary_trace, tmp_path, monkeypatch):
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        _records, path = binary_trace
        spec = file_spec(path)
        assert load_cached(spec) is None
        result = execute_spec(spec)
        store_cached(spec, result)
        restored = load_cached(spec)
        assert restored.simulation_outputs() == result.simulation_outputs()

    def test_parallel_workers_open_the_file(self, binary_trace, tmp_path,
                                            monkeypatch):
        """Two worker processes each open the path themselves and agree
        with the serial run — the spec never pickles a handle."""
        monkeypatch.setenv(parallel_mod.CACHE_DIR_ENV, str(tmp_path))
        _records, path = binary_trace
        specs = [file_spec(path, mechanism=m)
                 for m in ("Baseline", "FP-VAXX")]
        serial = [execute_spec(s) for s in specs]
        pooled = parallel_map(specs, workers=2)
        for reference, pooled_result in zip(serial, pooled):
            assert (pooled_result.simulation_outputs()
                    == reference.simulation_outputs())
