"""Tests for the experiment harness (small instances of every figure)."""

import pytest

from repro.harness import (
    MECHANISM_ORDER,
    area_overhead,
    benchmark_trace,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    figure14,
    figure15,
    figure16,
    figure17,
    format_area_overhead,
    format_figure9,
    format_figure12,
    format_figure16,
    format_figure17,
    format_table1,
    make_scheme,
    run_benchmark_suite,
    run_trace,
    saturation_throughput,
    table1,
)
from repro.harness.report import format_series, format_table
from repro.noc import NocConfig

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)
FAST = dict(trace_cycles=1200, warmup=600, measure=600)


@pytest.fixture(scope="module")
def small_suite():
    """A tiny two-benchmark suite shared by the figure tests."""
    return run_benchmark_suite(config=SMALL,
                               benchmarks=("ssca2", "streamcluster"),
                               **FAST)


class TestMakeScheme:
    @pytest.mark.parametrize("name", MECHANISM_ORDER)
    def test_every_mechanism_constructs(self, name):
        scheme = make_scheme(name, 8)
        assert scheme.name == name

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scheme("ZIP", 8)

    def test_threshold_threaded_through(self):
        assert make_scheme("FP-VAXX", 8, 20).error_threshold_pct == 20
        assert make_scheme("DI-VAXX", 8, 5).error_threshold_pct == 5


class TestTraceCache:
    def test_trace_cached(self):
        a = benchmark_trace(SMALL, "x264", 500, seed=3)
        b = benchmark_trace(SMALL, "x264", 500, seed=3)
        assert a is b

    def test_different_params_different_trace(self):
        a = benchmark_trace(SMALL, "x264", 500, seed=3)
        b = benchmark_trace(SMALL, "x264", 500, seed=4)
        assert a is not b


class TestSuiteFigures:
    def test_suite_covers_all_pairs(self, small_suite):
        assert set(small_suite.runs) == {"ssca2", "streamcluster"}
        for runs in small_suite.runs.values():
            assert set(runs) == set(MECHANISM_ORDER)

    def test_figure9_shape(self, small_suite):
        rows = figure9(small_suite)
        benchmarks = {r["benchmark"] for r in rows}
        assert "AVG" in benchmarks
        for row in rows:
            assert row["total"] == pytest.approx(
                row["queue"] + row["network"] + row["decode"])
            assert 0.9 <= row["quality"] <= 1.0
        assert "Figure 9" in format_figure9(rows)

    def test_figure9_vaxx_beats_base(self, small_suite):
        rows = {(r["benchmark"], r["mechanism"]): r
                for r in figure9(small_suite)}
        # On the data-intensive benchmark, approximation helps (§5.2.1).
        assert (rows[("ssca2", "FP-VAXX")]["total"]
                < rows[("ssca2", "FP-COMP")]["total"])
        assert (rows[("ssca2", "FP-COMP")]["total"]
                < rows[("ssca2", "Baseline")]["total"])

    def test_figure10_fractions_consistent(self, small_suite):
        for row in figure10(small_suite):
            if row["benchmark"] == "GMEAN":
                continue  # geometric means of parts don't sum exactly
            assert row["encoded_fraction"] == pytest.approx(
                row["exact_fraction"] + row["approx_fraction"], abs=1e-6)
            assert row["compression_ratio"] >= 0.9

    def test_figure10_vaxx_encodes_more(self, small_suite):
        rows = {(r["benchmark"], r["mechanism"]): r
                for r in figure10(small_suite)}
        for benchmark in ("ssca2", "streamcluster"):
            assert (rows[(benchmark, "FP-VAXX")]["encoded_fraction"]
                    >= rows[(benchmark, "FP-COMP")]["encoded_fraction"])

    def test_figure11_baseline_is_unity(self, small_suite):
        rows = figure11(small_suite)
        for row in rows:
            if row["mechanism"] == "Baseline":
                assert row["normalized"] == pytest.approx(1.0)
            if row["mechanism"] == "FP-VAXX":
                assert row["normalized"] < 1.0

    def test_figure15_fp_vaxx_cheapest(self, small_suite):
        rows = {(r["benchmark"], r["mechanism"]): r["normalized_power"]
                for r in figure15(small_suite)}
        for benchmark in ("ssca2", "streamcluster"):
            assert rows[(benchmark, "FP-VAXX")] < rows[(benchmark,
                                                        "Baseline")]


class TestSweepFigures:
    def test_figure12_small(self):
        results = figure12(config=SMALL, benchmarks=("streamcluster",),
                           patterns=("uniform_random",),
                           injection_rates=(0.05, 0.30),
                           mechanisms=("Baseline", "FP-VAXX"),
                           warmup=300, measure=600)
        series = results[("streamcluster", "uniform_random")]
        assert len(series["Baseline"]) == 2
        # latency grows with load
        assert series["Baseline"][1] > series["Baseline"][0]
        text = format_figure12(results, (0.05, 0.30))
        assert "Figure 12" in text

    def test_saturation_throughput(self):
        series = {"A": [10.0, 11.0, 40.0], "B": [10.0, 11.0, 12.0]}
        rates = (0.1, 0.2, 0.3)
        sustained = saturation_throughput(series, rates)
        assert sustained["A"] == 0.2
        assert sustained["B"] == 0.3

    def test_figure13_threshold_columns(self):
        rows = figure13(config=SMALL, benchmarks=("ssca2",),
                        thresholds=(5.0, 20.0), **FAST)
        assert len(rows) == 2  # DI-based + FP-based
        for row in rows:
            assert "5%" in row and "20%" in row and "compression" in row

    def test_figure14_ratio_columns(self):
        rows = figure14(config=SMALL, benchmarks=("ssca2",),
                        approx_ratios=(0.25, 0.75), **FAST)
        for row in rows:
            assert "25%" in row and "75%" in row


class TestAppFigures:
    def test_figure16_budget_zero_is_exact(self):
        rows = figure16(config=SMALL, benchmarks=("blackscholes",),
                        budgets=(0.0, 20.0), **FAST)
        by_budget = {r["budget_pct"]: r for r in rows}
        assert by_budget[0.0]["output_error"] == 0.0
        assert by_budget[0.0]["normalized_performance"] == 1.0
        assert by_budget[20.0]["output_error"] >= 0.0
        assert "Figure 16" in format_figure16(rows)

    def test_figure17_quality(self):
        result = figure17(error_threshold_pct=10.0, n_frames=4, size=32,
                          n_nodes=8)
        assert 0.0 <= result["track_error"] < 0.25
        assert len(result["frame_psnr_db"]) == 4
        assert "Figure 17" in format_figure17(result)


class TestStaticTables:
    def test_table1_contents(self):
        rows = dict(table1())
        assert "NoC topology" in rows
        assert "4x4" in rows["NoC topology"]
        assert "Table 1" in format_table1(table1())

    def test_area_overhead_rows(self):
        rows = area_overhead()
        by_mechanism = {r["mechanism"]: r for r in rows}
        assert by_mechanism["DI-VAXX"]["total_mm2"] == pytest.approx(
            0.0037, rel=0.1)
        assert "5.5" in format_area_overhead(rows)


class TestReportFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "---" in lines[1]

    def test_format_series(self):
        text = format_series("t", "x", [1, 2], {"s": [0.1, 0.2]})
        assert "t" in text and "x" in text
