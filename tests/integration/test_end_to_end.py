"""Integration tests spanning traffic -> NoC -> codec -> applications."""

import pytest

from repro.compression import (
    BaselineScheme,
    BdVaxxScheme,
    DiCompScheme,
    FpCompScheme,
)
from repro.core import CacheBlock, DiVaxxScheme, FpVaxxScheme
from repro.harness import (
    MECHANISM_ORDER,
    benchmark_trace,
    make_scheme,
    run_trace,
)
from repro.memory import TraceCollector
from repro.noc import Network, NocConfig, PacketKind, TrafficRequest
from repro.traffic import (
    BenchmarkTraffic,
    TraceTraffic,
    get_benchmark,
    record_trace,
)

SMALL = NocConfig(mesh_width=2, mesh_height=2, concentration=2)


class TestTraceReplayDeterminism:
    def test_same_trace_same_stats(self):
        trace = benchmark_trace(SMALL, "blackscholes", 800, seed=2)
        a = run_trace(SMALL, "FP-VAXX", trace, warmup=300, measure=400)
        b = run_trace(SMALL, "FP-VAXX", trace, warmup=300, measure=400)
        assert a.avg_packet_latency == b.avg_packet_latency
        assert a.data_flits_injected == b.data_flits_injected
        assert a.compression_ratio == b.compression_ratio

    @pytest.mark.parametrize("mechanism", MECHANISM_ORDER)
    def test_every_mechanism_completes_trace(self, mechanism):
        trace = benchmark_trace(SMALL, "ssca2", 800, seed=3)
        result = run_trace(SMALL, mechanism, trace, warmup=200, measure=400)
        assert result.packets_delivered > 0
        assert result.data_quality > 0.97


class TestDataIntegrityUnderLoad:
    @pytest.mark.parametrize("scheme_cls", [
        BaselineScheme, FpCompScheme, DiCompScheme])
    def test_exact_schemes_deliver_exact_blocks(self, scheme_cls):
        delivered = []

        def on_deliver(packet, block, now):
            if block is not None:
                delivered.append((packet.block.words, block.words))

        network = Network(SMALL, scheme_cls(SMALL.n_nodes),
                          on_deliver=on_deliver)
        source = BenchmarkTraffic(SMALL, get_benchmark("x264"), seed=5,
                                  duration=500)
        network.set_traffic(source)
        network.run(500)
        assert network.drain(50_000)
        assert delivered
        for sent, received in delivered:
            assert sent == received

    @pytest.mark.parametrize("scheme_cls", [
        FpVaxxScheme, DiVaxxScheme, BdVaxxScheme])
    def test_vaxx_schemes_respect_error_bound(self, scheme_cls):
        violations = []

        def on_deliver(packet, block, now):
            if block is None:
                return
            for precise, approx in zip(packet.block.as_ints(),
                                       block.as_ints()):
                if abs(approx - precise) > 4 * abs(precise) * 0.10 + 1:
                    violations.append((precise, approx))

        scheme = scheme_cls(SMALL.n_nodes, error_threshold_pct=10)
        network = Network(SMALL, scheme, on_deliver=on_deliver)
        source = BenchmarkTraffic(SMALL, get_benchmark("ssca2"), seed=7,
                                  duration=500)
        network.set_traffic(source)
        network.run(500)
        assert network.drain(50_000)
        assert violations == []


class TestCacheSystemToNetwork:
    def test_coherence_trace_replays_on_the_noc(self):
        """The full gem5-substitute flow: app accesses -> cache misses ->
        trace -> cycle-accurate NoC replay."""
        collector = TraceCollector(n_cores=8, n_nodes=SMALL.n_nodes,
                                   compute_gap=2, miss_penalty=10)
        words = tuple(range(16))
        for i in range(120):
            collector.write(i % 8, i % 24, words)
            collector.read((i + 3) % 8, i % 24)
        trace = collector.records
        assert trace
        network = Network(SMALL, FpVaxxScheme(SMALL.n_nodes, 10))
        network.set_traffic(TraceTraffic(trace))
        span = trace[-1].cycle + 1
        network.run(span)
        assert network.drain(50_000)
        injected = sum(network.stats.packets_injected.values())
        assert injected == len(trace)
        assert network.stats.total_packets_delivered == injected


class TestNotificationTransport:
    def test_updates_travel_in_band_and_enable_compression(self):
        """Dictionary learning must flow through real network packets."""
        scheme = DiCompScheme(SMALL.n_nodes, detect_threshold=1)
        network = Network(SMALL, scheme)
        block = CacheBlock.from_ints([77] * 16)
        # send the block enough times for detection + update round trip
        for _ in range(4):
            network.submit(TrafficRequest(0, 3, PacketKind.DATA, block))
            network.run(60)
        assert network.drain(20_000)
        notif = network.stats.packets_delivered.get(
            PacketKind.NOTIFICATION.value, 0)
        assert notif >= 1
        encoded = scheme.node(0).encode(block, dst=3)
        assert any(w.compressed for w in encoded.words)


class TestFullSystemMesh:
    def test_8x8_mesh_runs(self):
        """The §5.4 full-system 8x8 configuration is simulatable."""
        config = NocConfig(mesh_width=8, mesh_height=8, concentration=1)
        network = Network(config, FpVaxxScheme(config.n_nodes, 10))
        source = BenchmarkTraffic(config, get_benchmark("swaptions"),
                                  seed=9, duration=200)
        network.set_traffic(source)
        network.run(200)
        assert network.drain(50_000)
        assert network.stats.total_packets_delivered > 0
