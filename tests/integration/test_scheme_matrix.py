"""Cross-scheme property matrix: invariants every codec must satisfy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    AdaptiveScheme,
    BaselineScheme,
    BdCompScheme,
    BdVaxxScheme,
    DiCompScheme,
    FpCompScheme,
)
from repro.core import CacheBlock, DataType, DiVaxxScheme, FpVaxxScheme
from repro.traffic.datagen import BlockGenerator, ValueModel
from repro.util.rng import DeterministicRng

EXACT_SCHEMES = [
    ("Baseline", lambda: BaselineScheme(4)),
    ("FP-COMP", lambda: FpCompScheme(4)),
    ("DI-COMP", lambda: DiCompScheme(4)),
    ("BD-COMP", lambda: BdCompScheme(4)),
    ("Adaptive(FP-COMP)", lambda: AdaptiveScheme(FpCompScheme(4))),
]

VAXX_SCHEMES = [
    ("FP-VAXX", lambda th=10: FpVaxxScheme(4, error_threshold_pct=th)),
    ("DI-VAXX", lambda th=10: DiVaxxScheme(4, error_threshold_pct=th,
                                           detect_threshold=1)),
    ("BD-VAXX", lambda th=10: BdVaxxScheme(4, error_threshold_pct=th)),
]

ALL_SCHEMES = EXACT_SCHEMES + [(n, f) for n, f in VAXX_SCHEMES]


def stream(scheme, blocks=30, seed=1, approximable=True,
           dtype=DataType.INT):
    model = ValueModel(name="mix",
                       dtype=dtype, p_zero=0.2, p_small=0.2, p_pool=0.4,
                       cluster_noise=0.03, exact_repeat=0.4, scale=1e5)
    generator = BlockGenerator(model, DeterministicRng(seed))
    outputs = []
    for _ in range(blocks):
        block = generator.next_block(16, approximable=approximable)
        out, encoded = scheme.roundtrip(block, 0, 1)
        outputs.append((block, out, encoded))
    return outputs


class TestUniversalInvariants:
    @pytest.mark.parametrize("name,factory", ALL_SCHEMES)
    def test_never_expands(self, name, factory):
        """No codec's NR may exceed the raw block size."""
        for block, _out, encoded in stream(factory()):
            assert encoded.size_bits <= block.size_bits

    @pytest.mark.parametrize("name,factory", ALL_SCHEMES)
    def test_word_count_preserved(self, name, factory):
        for block, out, encoded in stream(factory()):
            assert len(out) == len(block)
            assert len(encoded.words) == len(block)

    @pytest.mark.parametrize("name,factory", ALL_SCHEMES)
    def test_non_approximable_is_bit_exact(self, name, factory):
        for block, out, _ in stream(factory(), approximable=False):
            assert out.words == block.words

    @pytest.mark.parametrize("name,factory", ALL_SCHEMES)
    def test_metadata_preserved(self, name, factory):
        for block, out, _ in stream(factory(), dtype=DataType.FLOAT):
            assert out.dtype is block.dtype
            assert out.approximable == block.approximable

    @pytest.mark.parametrize("name,factory", EXACT_SCHEMES)
    def test_exact_schemes_never_approximate(self, name, factory):
        scheme = factory()
        stream(scheme)
        assert scheme.quality.approx_fraction == 0.0
        assert scheme.quality.data_quality == 1.0

    @pytest.mark.parametrize("name,factory", VAXX_SCHEMES)
    def test_vaxx_schemes_error_bounded(self, name, factory):
        for block, out, _ in stream(factory(10)):
            for precise, approx in zip(block.as_ints(), out.as_ints()):
                assert abs(approx - precise) <= 4 * abs(precise) * 0.10 + 1

    @pytest.mark.parametrize("name,factory", VAXX_SCHEMES)
    def test_quality_never_below_threshold_complement(self, name, factory):
        scheme = factory(10)
        stream(scheme)
        # even paper-mode slack keeps mean error far under 4x the budget
        assert scheme.quality.data_quality > 1 - 4 * 0.10

    @pytest.mark.parametrize("name,factory", VAXX_SCHEMES)
    def test_higher_threshold_never_hurts_compression(self, name, factory):
        tight = factory(5)
        loose = factory(20)
        stream(tight, seed=3)
        stream(loose, seed=3)
        assert (loose.stats.compression_ratio
                >= tight.stats.compression_ratio - 0.05)

    @pytest.mark.parametrize("name,factory", VAXX_SCHEMES)
    def test_stats_input_accounting(self, name, factory):
        scheme = factory(10)
        results = stream(scheme, blocks=10)
        assert scheme.stats.blocks_encoded == 10
        assert scheme.stats.input_bits == sum(
            block.size_bits for block, _, _ in results)
        assert scheme.stats.output_bits == sum(
            encoded.size_bits for _, _, encoded in results)


class TestFloatSafetyMatrix:
    SPECIALS = [float("inf"), float("-inf"), float("nan"), 0.0, -0.0,
                1e-40]

    @pytest.mark.parametrize("name,factory", ALL_SCHEMES)
    def test_float_specials_never_corrupted(self, name, factory):
        scheme = factory()
        block = CacheBlock.from_floats(self.SPECIALS + [1.5, 2.5] * 5,
                                       approximable=True)
        out, _ = scheme.roundtrip(block, 0, 1)
        for index in range(len(self.SPECIALS)):
            assert out.words[index] == block.words[index], \
                f"special value {self.SPECIALS[index]} corrupted"

    @given(st.lists(st.floats(width=32, allow_nan=False,
                              allow_infinity=False),
                    min_size=1, max_size=16))
    @settings(max_examples=25, deadline=None)
    def test_fp_vaxx_float_roundtrip_bounded(self, values):
        scheme = FpVaxxScheme(4, error_threshold_pct=10)
        block = CacheBlock.from_floats(values, approximable=True)
        out, _ = scheme.roundtrip(block, 0, 1)
        for precise, approx in zip(block.as_floats(), out.as_floats()):
            if precise == 0.0 or abs(precise) < 1e-38:
                assert approx == precise
            else:
                assert abs(approx - precise) / abs(precise) <= 0.45
