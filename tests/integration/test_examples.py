"""Smoke tests: the runnable examples execute cleanly.

The heavyweight sweep example is exercised indirectly through the Figure 12
harness tests; here we run the fast ones end-to-end as subprocesses, the
way a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "graph_analytics.py",
    "custom_compressor.py",
    "image_pipeline.py",
    "video_window_budget.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=300)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_quickstart_mentions_both_layers():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=300)
    assert "Codec layer" in result.stdout
    assert "Network layer" in result.stdout


def test_all_examples_exist():
    present = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "graph_analytics.py", "throughput_sweep.py",
            "image_pipeline.py", "custom_compressor.py",
            "video_window_budget.py"} <= present
