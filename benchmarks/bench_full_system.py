"""§5.4 full-system study: 64-node 8x8 mesh with coherence-accurate traffic.

The paper's overall-performance experiment configures "a 64-core CMP
connected by an 8x8 mesh network".  This benchmark drives the coherent-
cache substrate (16 cores spread over the 64-node mesh, MSI directory,
shared/producer-consumer/migratory sharing) to produce protocol-accurate
traces, then replays them under every mechanism.  Expected shape: the
ordering of Figure 9 survives the move from the 4x4 c-mesh to the full-
system 8x8 mesh.
"""

from conftest import scaled

from repro.harness import MECHANISM_ORDER, format_table, run_trace
from repro.memory.workloads import benchmark_coherence_trace
from repro.noc import NocConfig

FULL_SYSTEM = NocConfig(mesh_width=8, mesh_height=8, concentration=1)


def run_full_system():
    rows = []
    for bench_name in ("ssca2", "streamcluster"):
        trace = benchmark_coherence_trace(
            bench_name, n_cores=16, n_nodes=FULL_SYSTEM.n_nodes,
            accesses_per_core=scaled(300, minimum=80), seed=11)
        span = trace[-1].cycle + 1
        warmup = span // 3
        for mechanism in MECHANISM_ORDER:
            result = run_trace(FULL_SYSTEM, mechanism, trace,
                               warmup=warmup, measure=span - warmup)
            rows.append({
                "benchmark": bench_name, "mechanism": mechanism,
                "latency": result.avg_packet_latency,
                "data_flits": result.data_flits_injected,
                "ratio": result.compression_ratio,
                "quality": result.data_quality,
            })
    return rows


def check_shape(rows):
    by_key = {(r["benchmark"], r["mechanism"]): r for r in rows}
    for bench_name in ("ssca2", "streamcluster"):
        assert (by_key[(bench_name, "FP-VAXX")]["data_flits"]
                <= by_key[(bench_name, "FP-COMP")]["data_flits"])
        assert (by_key[(bench_name, "FP-VAXX")]["latency"]
                <= by_key[(bench_name, "Baseline")]["latency"] * 1.05)
        for mechanism in MECHANISM_ORDER:
            assert by_key[(bench_name, mechanism)]["quality"] > 0.97


def test_full_system(benchmark, show):
    rows = benchmark.pedantic(run_full_system, rounds=1, iterations=1)
    check_shape(rows)
    show(format_table(
        ["benchmark", "mechanism", "latency", "data_flits", "ratio",
         "quality"],
        [[r["benchmark"], r["mechanism"], r["latency"], r["data_flits"],
          r["ratio"], r["quality"]] for r in rows],
        title="Full system (8x8 mesh, coherence-accurate traffic)"))
