"""Figure 14: approximable-packet-ratio sensitivity (25% / 50% / 75%).

Expected shape (§5.3.2): packet latency improves as more packets are
allowed to be approximated, with the strongest effect on the data-intensive
benchmarks (ssca2, swaptions, streamcluster) and little effect where the
data-to-control ratio is low.
"""

from conftest import scaled

from repro.harness import figure14, format_figure14

RATIOS = (0.25, 0.50, 0.75)


def run_figure14():
    return figure14(approx_ratios=RATIOS, trace_cycles=scaled(5000),
                    warmup=scaled(2500), measure=scaled(2500))


def check_shape(rows):
    better = 0
    for row in rows:
        assert row["75%"] <= row["compression"] * 1.10
        if row["75%"] <= row["25%"] + 0.25:
            better += 1
    assert better >= len(rows) * 0.6
    # The data-intensive benchmark must show a clear 75%-vs-25% gain.
    ssca2 = [r for r in rows if r["benchmark"] == "ssca2"]
    assert any(r["75%"] < r["25%"] for r in ssca2)


def test_figure14(benchmark, show):
    rows = benchmark.pedantic(run_figure14, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure14(rows, RATIOS))
