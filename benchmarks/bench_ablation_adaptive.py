"""Ablation: adaptive compression on/off control (Jin et al. [17]).

Runs a workload with alternating compressible and incompressible phases
under plain FP-COMP and Adaptive(FP-COMP).  Expected shape: on the
incompressible phases the adaptive controller switches the codec off,
skipping its 3+2 cycle latency, so the adaptive variant's total latency is
no worse — and its codec does measurably toggle.
"""

from conftest import scaled

from repro.compression import AdaptiveScheme, FpCompScheme
from repro.core import CacheBlock
from repro.harness import format_table
from repro.harness.experiment import RunResult
from repro.noc import Network, PAPER_CONFIG, PacketKind, TrafficRequest
from repro.traffic.datagen import BlockGenerator, ValueModel
from repro.util.rng import DeterministicRng


class PhasedTraffic:
    """Alternating compressible / high-entropy phases."""

    def __init__(self, config, phase_cycles=600, rate=0.03, seed=1):
        self.config = config
        self.phase_cycles = phase_cycles
        self.rate = rate
        self._rng = DeterministicRng(seed)
        compressible = ValueModel(name="soft", p_zero=0.35, p_small=0.3,
                                  p_pool=0.3, cluster_noise=0.0,
                                  exact_repeat=1.0)
        hard = ValueModel(name="hard", p_zero=0.0, p_small=0.0, p_pool=0.0)
        self._generators = [
            BlockGenerator(compressible, self._rng.fork(1)),
            BlockGenerator(hard, self._rng.fork(2)),
        ]

    def generate(self, cycle):
        phase = (cycle // self.phase_cycles) % 2
        generator = self._generators[phase]
        requests = []
        n = self.config.n_nodes
        for src in range(n):
            if not self._rng.bernoulli(self.rate):
                continue
            dst = self._rng.randint(0, n - 2)
            if dst >= src:
                dst += 1
            block = generator.next_block(self.config.words_per_block,
                                         approximable=False)
            requests.append(TrafficRequest(src, dst, PacketKind.DATA,
                                           block))
        return requests


def run_one(scheme, cycles):
    network = Network(PAPER_CONFIG, scheme)
    network.set_traffic(PhasedTraffic(PAPER_CONFIG,
                                      phase_cycles=scaled(600)))
    network.run(cycles)
    measured = network.stats.cycles
    assert network.drain(200_000)
    network.stats.cycles = measured
    return RunResult.from_network(network)


def run_ablation():
    cycles = scaled(4800)
    plain = run_one(FpCompScheme(PAPER_CONFIG.n_nodes), cycles)
    # small window / fast probing so the controller tracks the phases at
    # this benchmark's per-node block rate
    adaptive_scheme = AdaptiveScheme(FpCompScheme(PAPER_CONFIG.n_nodes),
                                     window=6, probe_period=6)
    adaptive = run_one(adaptive_scheme, cycles)
    return [
        {"scheme": "FP-COMP", "latency": plain.avg_packet_latency,
         "queue": plain.avg_queue_latency, "decode": plain.avg_decode_latency,
         "toggles": 0},
        {"scheme": "Adaptive(FP-COMP)",
         "latency": adaptive.avg_packet_latency,
         "queue": adaptive.avg_queue_latency,
         "decode": adaptive.avg_decode_latency,
         "toggles": adaptive_scheme.toggles()},
    ]


def check_shape(rows):
    plain, adaptive = rows
    assert adaptive["toggles"] >= 2, "controller never reacted to phases"
    # skipping codec latency on hard phases shows up in the decode term
    assert adaptive["decode"] <= plain["decode"] + 1e-9
    assert adaptive["latency"] <= plain["latency"] + 0.5


def test_adaptive_control(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    check_shape(rows)
    show(format_table(
        ["scheme", "latency", "queue", "decode", "toggles"],
        [[r["scheme"], r["latency"], r["queue"], r["decode"], r["toggles"]]
         for r in rows],
        title="Ablation: adaptive compression on/off under phased traffic"))
