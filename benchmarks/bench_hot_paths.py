"""Microbenchmark of the simulator's hot paths.

Times, over fixed deterministic workloads:

* ``fpc.match_approx``   — pattern matching on (word, mask) pairs;
* ``Avcl.evaluate``      — don't-care mask computation per word;
* ``Network.step``       — full network cycles replaying a benchmark trace;
* event-horizon fast path — the same network skipping quiescent windows
  under uniform-random low-load traffic (DESIGN.md §12), reported both as
  seconds and as simulated cycles/second, next to a forced always-step
  run of the identical workload;
* saturated-load stepping — an 8x8 mesh at 0.1 flits/node/cycle, run on
  both the struct-of-arrays core and the object core (DESIGN.md §14),
  with the wall clock split per step phase so regressions are
  attributable to a phase rather than a total;
* big-mesh stepping — the same load on 16x16, plus the numpy backend
  when it is importable;
* trace pipeline — end-to-end replay (trace load + run) of a
  500k-record trace on 16x16 from JSON-lines (eager ``load_trace``)
  versus the memory-mapped binary format (``StreamingTraceTraffic``,
  DESIGN.md §17), with bit-identical outputs asserted, the streaming
  peak memory gated flat across a 10x trace-length spread
  (tracemalloc), and streamed cycles/sec datapoints on 16x16 and
  32x32.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py [--json out.json]
    PYTHONPATH=src python benchmarks/bench_hot_paths.py \
        --check benchmarks/bench_hot_paths_baseline.json --max-regression 3

``--check`` exits non-zero when any metric is slower than baseline by more
than the allowed factor (a coarse tripwire for accidental hot-path
regressions; the 3x default absorbs machine-to-machine variance).
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import tempfile
import time
import tracemalloc
from dataclasses import replace

from repro.compression.fpc import clear_match_caches, match_approx
from repro.core.avcl import Avcl, clear_evaluate_cache
from repro.core.block import DataType
from repro.faults import FaultConfig
from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network, NocConfig
from repro.noc.packet import PacketKind
from repro.traffic import (
    StreamingTraceTraffic,
    SyntheticTraffic,
    TraceRecord,
    TraceTraffic,
    load_trace,
    record_trace,
    save_trace,
    write_trace,
)

#: Distinct values per workload; small enough that the warm passes hit the
#: encode caches like real traffic (benchmark value models repeat heavily).
UNIQUE_VALUES = 4096
#: Evaluations per measured pass (mostly warm, as in a real run).
PASS_OPS = 100_000
NETWORK_CYCLES = 1500
#: Low-load point: uniform-random traffic this sparse leaves ~99% of
#: cycles quiescent, so the event-horizon skip dominates the run.  (At
#: ~0.02 flits/node/cycle a packet's ~14-cycle flight still keeps the
#: network busy ~14% of the time and caps the skip win near 1.7x; see
#: DESIGN.md §12 for the amplification argument.)
LOWLOAD_RATE = 0.002
LOWLOAD_CYCLES = 60_000
#: Saturated-load point (ISSUE 6): uniform-random traffic at 0.1
#: *uncompressed flits* per node per cycle — the repo's injection-rate
#: unit — on an 8x8 mesh, replayed under the Baseline scheme so the
#: datapoint times network stepping rather than encode/decode.
SATURATED_RATE = 0.1
SATURATED_CYCLES = 1500
BIGMESH_CYCLES = 600
REPEATS = 3
#: Trace-pipeline datapoint (ISSUE 9): a 500k-record trace on a 16x16
#: mesh, replayed end-to-end (trace load + run) from JSON-lines versus
#: the memory-mapped binary format.  The record count is what makes the
#: eager-load cost visible; the replay window keeps the run-time share
#: realistic (the trace loops).
TRACE_RECORDS = 500_000
TRACE_DENSITY = 4          # records injected per trace cycle
TRACE_DATA_RATIO = 0.25    # data records (8 words) vs control records
TRACE_REPLAY_CYCLES = 1500
#: 32x32 streamed-replay datapoint: fewer records and cycles — the point
#: is the cycles/sec figure on 1024 nodes, not another load comparison.
TRACE_32_RECORDS = 100_000
TRACE_32_CYCLES = 300


def _words(n: int, seed: int = 7):
    rng = random.Random(seed)
    kinds = []
    for _ in range(n):
        pick = rng.random()
        if pick < 0.35:
            kinds.append(rng.randint(0, 255))              # small ints
        elif pick < 0.55:
            kinds.append(0xFFFFFF00 | rng.randint(0, 255))  # small negatives
        else:
            kinds.append(rng.getrandbits(32))               # wide values
    return kinds


def _best(fn) -> float:
    return min(fn() for _ in range(REPEATS))


def bench_match_approx() -> float:
    words = _words(UNIQUE_VALUES)
    masks = [0x000000FF, 0x0000000F, 0x00000000, 0x000001FF]

    def one_pass() -> float:
        clear_match_caches()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            match_approx(words[i % UNIQUE_VALUES], masks[i & 3])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_avcl_evaluate() -> float:
    avcl = Avcl(error_threshold_pct=10.0)
    words = _words(UNIQUE_VALUES)
    dtypes = [DataType.INT, DataType.FLOAT]

    def one_pass() -> float:
        clear_evaluate_cache()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            avcl.evaluate(words[i % UNIQUE_VALUES], dtypes[i & 1])
        return time.perf_counter() - start

    return _best(one_pass)


def _replay_network(config: NocConfig, scheme_name: str,
                    trace: list) -> Network:
    """Fresh network replaying a recorded trace — the shared setup of
    every ``network_step*`` datapoint (recording itself is untimed)."""
    network = Network(config, make_scheme(scheme_name, config.n_nodes))
    network.set_traffic(TraceTraffic(trace, loop=True))
    return network


def _timed_replay(config: NocConfig, scheme_name: str, trace: list,
                  cycles: int) -> float:
    """Best-of-``REPEATS`` wall time of one trace replay."""

    def one_pass() -> float:
        network = _replay_network(config, scheme_name, trace)
        start = time.perf_counter()
        network.run(cycles)
        return time.perf_counter() - start

    return _best(one_pass)


def _phase_split_replay(config: NocConfig, scheme_name: str, trace: list,
                        cycles: int):
    """One replay with the wall clock split per step phase.

    Wraps the network's router/deliver/credit phase methods with timing
    shims (instance attributes shadow the bound methods, so ``step()``
    picks them up); everything not covered is the NI/traffic/stats
    remainder.  Returns ``(total_s, phases_s, network)``.
    """
    network = _replay_network(config, scheme_name, trace)
    phases = {"router": 0.0, "deliver": 0.0, "credits": 0.0}
    cycle_routers = network._cycle_routers
    deliver = network._deliver_arrivals
    credits = network._apply_credits
    perf = time.perf_counter

    def timed_routers(*args):
        t0 = perf()
        cycle_routers(*args)
        phases["router"] += perf() - t0

    def timed_deliver(*args):
        t0 = perf()
        deliver(*args)
        phases["deliver"] += perf() - t0

    def timed_credits(*args):
        t0 = perf()
        credits(*args)
        phases["credits"] += perf() - t0

    network._cycle_routers = timed_routers
    network._deliver_arrivals = timed_deliver
    network._apply_credits = timed_credits
    start = perf()
    network.run(cycles)
    return perf() - start, phases, network


def bench_network_step(sanitize: bool = False, faults=None) -> float:
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=2,
                       sanitize=sanitize, faults=faults)
    trace = benchmark_trace(config, "ssca2", NETWORK_CYCLES, seed=11)
    return _timed_replay(config, "FP-VAXX", trace, NETWORK_CYCLES)


def bench_network_step_lowload() -> dict:
    """Event-horizon fast path vs forced always-step on low-load traffic.

    Uniform-random synthetic traffic is recorded once into a trace (setup,
    untimed — the harness's own methodology, see ``run_trace``), then the
    identical trace is replayed with ``event_horizon`` on and off.  Both
    runs must produce bit-identical simulation outputs (asserted here);
    only wall-clock may differ.
    """
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
    source = SyntheticTraffic(config, injection_rate=LOWLOAD_RATE,
                              seed=13, data_ratio=1.0)
    trace = record_trace(source, LOWLOAD_CYCLES)

    def run_once(event_horizon: bool) -> Network:
        network = _replay_network(replace(config,
                                          event_horizon=event_horizon),
                                  "FP-VAXX", trace)
        network.run(LOWLOAD_CYCLES)
        return network

    skip_net = run_once(True)
    step_net = run_once(False)
    if skip_net.stats.simulation_outputs() != step_net.stats.simulation_outputs():
        raise AssertionError(
            "event-horizon run diverged from always-step run: "
            f"{skip_net.stats.simulation_outputs()} != "
            f"{step_net.stats.simulation_outputs()}")
    lowload = _timed_replay(config, "FP-VAXX", trace, LOWLOAD_CYCLES)
    alwaysstep = _timed_replay(replace(config, event_horizon=False),
                               "FP-VAXX", trace, LOWLOAD_CYCLES)
    return {
        "network_step_lowload_s": lowload,
        "network_step_lowload_cycles_per_sec": LOWLOAD_CYCLES / lowload,
        # Forced always-step comparator on the identical workload: reported
        # for the speedup trajectory, exempt from --check (it times the
        # deliberately-slow mode; the fast path above is what must not
        # regress — as is network_step_s for the shared step machinery).
        "network_step_lowload_alwaysstep_s": alwaysstep,
        "network_step_lowload_speedup_x": alwaysstep / lowload,
    }


def _core_comparison(config: NocConfig, trace: list, cycles: int):
    """Run one trace on the SoA core and the object core, asserting
    bit-identical simulation outputs, and return their best wall times
    (plus the SoA pass's per-phase split)."""
    soa_cfg = replace(config, core="soa")
    obj_cfg = replace(config, core="object")
    best_total = None
    best_phases = None
    soa_net = None
    for _ in range(REPEATS):
        total, phases, network = _phase_split_replay(soa_cfg, "Baseline",
                                                     trace, cycles)
        if best_total is None or total < best_total:
            best_total, best_phases, soa_net = total, phases, network
    obj_total = None
    obj_phases = None
    obj_net = None
    for _ in range(REPEATS):
        total, phases, network = _phase_split_replay(obj_cfg, "Baseline",
                                                     trace, cycles)
        if obj_total is None or total < obj_total:
            obj_total, obj_phases, obj_net = total, phases, network
    if soa_net.stats.simulation_outputs() != obj_net.stats.simulation_outputs():
        raise AssertionError(
            "SoA core diverged from the object core on the bench "
            f"workload: {soa_net.stats.simulation_outputs()} != "
            f"{obj_net.stats.simulation_outputs()}")
    return best_total, best_phases, soa_net, obj_total, obj_phases


def bench_network_step_saturated() -> dict:
    """Saturated-load stepping: SoA core vs object core on 8x8 at 0.1
    flits/node/cycle, with the wall clock split per step phase.

    Both cores run the identical recorded trace and must produce
    bit-identical simulation outputs (asserted).  ``profile_phases`` is on,
    so the per-phase cycles/sec figures pair each phase's activity ticks
    with its measured wall share.  The speedup ratios are measured within
    this run (like the faults-off gate: immune to machine variance) and
    gated in ``--check``.
    """
    config = NocConfig(mesh_width=8, mesh_height=8, concentration=1,
                       profile_phases=True)
    source = SyntheticTraffic(config, injection_rate=SATURATED_RATE,
                              seed=13, data_ratio=0.25)
    trace = record_trace(source, SATURATED_CYCLES)
    soa_s, soa_phases, soa_net, obj_s, obj_phases = _core_comparison(
        config, trace, SATURATED_CYCLES)
    stats = soa_net.stats
    results = {
        "network_step_saturated_s": soa_s,
        "network_step_saturated_cycles_per_sec": SATURATED_CYCLES / soa_s,
        # Object-core comparator on the identical workload: reported for
        # the speedup trajectory, exempt from --check (it times the
        # reference core, not the default fast path).
        "network_step_saturated_objectcore_s": obj_s,
        "network_step_saturated_speedup_x": obj_s / soa_s,
        "network_step_saturated_router_phase_s": soa_phases["router"],
        "network_step_saturated_router_speedup_x":
            obj_phases["router"] / soa_phases["router"],
    }
    # Per-phase cycles/sec: cycles in which the phase did any work
    # (profile_phases ticks) over the wall time spent inside the phase —
    # a regression here names the phase, not just the total.
    for key, ticks in (("router", stats.router_phase_ticks),
                       ("deliver", stats.deliver_phase_ticks),
                       ("credits", stats.credit_phase_ticks)):
        seconds = soa_phases[key]
        if seconds > 0:
            results[f"network_step_saturated_{key}_phase_cycles_per_sec"] \
                = ticks / seconds
    return results


def bench_network_step_bigmesh() -> dict:
    """Big-mesh stepping: the saturated workload on 16x16, SoA vs object
    core, plus the numpy backend when it is importable."""
    config = NocConfig(mesh_width=16, mesh_height=16, concentration=1)
    source = SyntheticTraffic(config, injection_rate=SATURATED_RATE,
                              seed=13, data_ratio=0.25)
    trace = record_trace(source, BIGMESH_CYCLES)
    soa_s, _, soa_net, obj_s, _ = _core_comparison(config, trace,
                                                   BIGMESH_CYCLES)
    results = {
        "network_step_bigmesh_s": soa_s,
        "network_step_bigmesh_cycles_per_sec": BIGMESH_CYCLES / soa_s,
        "network_step_bigmesh_objectcore_s": obj_s,
        "network_step_bigmesh_speedup_x": obj_s / soa_s,
    }
    try:
        import numpy  # noqa: F401  (optional extra, see pyproject [fast])
    except ImportError:
        return results
    np_cfg = replace(config, core="numpy")
    np_net = _replay_network(np_cfg, "Baseline", trace)
    np_net.run(BIGMESH_CYCLES)
    if np_net.stats.simulation_outputs() != soa_net.stats.simulation_outputs():
        raise AssertionError(
            "numpy core diverged from the SoA core on the bench workload")
    results["network_step_bigmesh_numpy_s"] = _timed_replay(
        np_cfg, "Baseline", trace, BIGMESH_CYCLES)
    return results


def _synth_trace_records(n_nodes: int, n_records: int, seed: int = 17):
    """Deterministic synthetic injection stream: ``TRACE_DENSITY`` records
    per cycle, uniform src/dst pairs, ``TRACE_DATA_RATIO`` 8-word data
    records.  A generator — feeding it straight to ``write_trace`` /
    ``save_trace`` records any length in bounded memory."""
    rng = random.Random(seed)
    cycle = 0
    emitted = 0
    while emitted < n_records:
        for _ in range(TRACE_DENSITY):
            if emitted >= n_records:
                break
            src = rng.randrange(n_nodes)
            dst = rng.randrange(n_nodes - 1)
            if dst >= src:
                dst += 1
            if rng.random() < TRACE_DATA_RATIO:
                yield TraceRecord(
                    cycle=cycle, src=src, dst=dst, kind=PacketKind.DATA,
                    words=tuple(rng.getrandbits(32) for _ in range(8)),
                    dtype=DataType.INT,
                    approximable=rng.random() < 0.5)
            else:
                yield TraceRecord(cycle=cycle, src=src, dst=dst,
                                  kind=PacketKind.CONTROL)
            emitted += 1
        cycle += 1


def _stream_replay_peak_mb(config: NocConfig, path: str,
                           cycles: int) -> float:
    """tracemalloc peak (MiB) of opening + replaying a binary trace.

    The network is constructed outside the traced window, so the figure
    isolates what the streaming replayer itself holds: the mmap view is
    kernel-managed (not traced), leaving the chunk cache as the only
    O(anything) allocation — which is why the peak must stay flat as the
    trace grows."""
    network = Network(config, make_scheme("Baseline", config.n_nodes))
    tracemalloc.start()
    try:
        network.set_traffic(StreamingTraceTraffic(path, loop=True))
        network.run(cycles)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak / (1024 * 1024)


def bench_trace_pipeline() -> dict:
    """End-to-end trace replay: JSON-lines eager load vs memory-mapped
    binary streaming (DESIGN.md §17).

    Both paths replay the identical 500k-record trace on a 16x16 mesh and
    must produce bit-identical simulation outputs (asserted).  The timed
    window is trace load + replay — the binary path's advantage *is*
    skipping the eager parse — with network construction (verification,
    memoized per process) outside it.  Gated in ``--check`` within this
    run: the streaming speedup floor, an absolute peak-memory ceiling,
    and peak-memory flatness across a 10x trace-length spread."""
    config = NocConfig(mesh_width=16, mesh_height=16, concentration=1)
    big_config = NocConfig(mesh_width=32, mesh_height=32, concentration=1)
    with tempfile.TemporaryDirectory() as tmp:
        binary_path = os.path.join(tmp, "trace.bin")
        jsonl_path = os.path.join(tmp, "trace.jsonl")
        small_path = os.path.join(tmp, "small.bin")
        big_path = os.path.join(tmp, "big32.bin")
        write_trace(_synth_trace_records(config.n_nodes, TRACE_RECORDS),
                    binary_path, n_nodes=config.n_nodes)
        save_trace(_synth_trace_records(config.n_nodes, TRACE_RECORDS),
                   jsonl_path)
        write_trace(_synth_trace_records(config.n_nodes,
                                         TRACE_RECORDS // 10),
                    small_path, n_nodes=config.n_nodes)
        write_trace(_synth_trace_records(big_config.n_nodes,
                                         TRACE_32_RECORDS),
                    big_path, n_nodes=big_config.n_nodes)

        def jsonl_once():
            network = Network(config, make_scheme("Baseline",
                                                  config.n_nodes))
            start = time.perf_counter()
            network.set_traffic(TraceTraffic(load_trace(jsonl_path),
                                             loop=True))
            network.run(TRACE_REPLAY_CYCLES)
            return time.perf_counter() - start, network

        def stream_once(path: str, cfg: NocConfig, cycles: int):
            network = Network(cfg, make_scheme("Baseline", cfg.n_nodes))
            start = time.perf_counter()
            network.set_traffic(StreamingTraceTraffic(path, loop=True))
            network.run(cycles)
            return time.perf_counter() - start, network

        # One JSONL pass (the comparator; the speedup floor has a wide
        # margin) against best-of-REPEATS streaming passes.
        jsonl_s, jsonl_net = jsonl_once()
        stream_s = None
        stream_net = None
        for _ in range(REPEATS):
            elapsed, network = stream_once(binary_path, config,
                                           TRACE_REPLAY_CYCLES)
            if stream_s is None or elapsed < stream_s:
                stream_s, stream_net = elapsed, network
        if jsonl_net.stats.simulation_outputs() != \
                stream_net.stats.simulation_outputs():
            raise AssertionError(
                "streamed binary replay diverged from the JSONL replay "
                "of the identical trace: "
                f"{stream_net.stats.simulation_outputs()} != "
                f"{jsonl_net.stats.simulation_outputs()}")
        peak_mb = _stream_replay_peak_mb(config, binary_path,
                                         TRACE_REPLAY_CYCLES)
        small_peak_mb = _stream_replay_peak_mb(config, small_path,
                                               TRACE_REPLAY_CYCLES)
        big_s = None
        for _ in range(REPEATS):
            elapsed, _net = stream_once(big_path, big_config,
                                        TRACE_32_CYCLES)
            if big_s is None or elapsed < big_s:
                big_s = elapsed
        return {
            # Eager comparator: reported for the speedup trajectory,
            # exempt from --check (it times the deliberately-eager path).
            "trace_pipeline_jsonl_s": jsonl_s,
            "trace_pipeline_stream_s": stream_s,
            "trace_pipeline_speedup_x": jsonl_s / stream_s,
            "trace_stream_peak_mb": peak_mb,
            "trace_stream_memory_ratio_x": peak_mb / small_peak_mb,
            "trace_stream_16x16_cycles_per_sec":
                TRACE_REPLAY_CYCLES / stream_s,
            "trace_stream_32x32_s": big_s,
            "trace_stream_32x32_cycles_per_sec": TRACE_32_CYCLES / big_s,
        }


def run_all() -> dict:
    results = {
        "match_approx_s": bench_match_approx(),
        "avcl_evaluate_s": bench_avcl_evaluate(),
        "network_step_s": bench_network_step(),
        # NoCSan overhead, reported for visibility but exempt from --check:
        # the sanitized path is opt-in debugging, only the *disabled* path
        # (network_step_s above, with no wrapping at all) must stay fast.
        "network_step_sanitized_s": bench_network_step(sanitize=True),
        # Fault-injection layer built but with every rate at zero: the
        # hot paths must compile down to the faults=None closures.  Gated
        # in --check at <= FAULTS_OFF_MAX_OVERHEAD of network_step_s from
        # the *same* run (in-results ratio: immune to machine variance).
        "network_step_faultsoff_s": bench_network_step(
            faults=FaultConfig()),
    }
    results.update(bench_network_step_lowload())
    results.update(bench_network_step_saturated())
    results.update(bench_network_step_bigmesh())
    results.update(bench_trace_pipeline())
    return results


#: Allowed slowdown of a run with the fault layer built-but-unarmed
#: (all-zero FaultConfig) over one with faults=None, measured within a
#: single bench run: the rate-0 plumbing must stay within 5%.
FAULTS_OFF_MAX_OVERHEAD = 1.05

#: In-run speedup floors for the struct-of-arrays core over the object
#: core on the same recorded workload (measured within one bench run, so
#: machine variance cancels).  ISSUE 6 targeted 5x at 0.1
#: flits/node/cycle; the measured ceiling is lower — shared
#: NI/traffic/stats work bounds the full-run ratio near 2.8x even with an
#: infinitely fast router phase, and the per-flit-hop floor of a
#: bit-identical Python pass bounds the router phase near 2x at this load
#: (DESIGN.md §14 has the arithmetic) — so the gates lock in the measured
#: wins with headroom for noise rather than encode an unreachable target.
SATURATED_MIN_SPEEDUP = 1.2
SATURATED_ROUTER_MIN_SPEEDUP = 1.5
BIGMESH_MIN_SPEEDUP = 1.3

#: In-run floor for the binary streaming replay over the eager JSONL
#: path, end-to-end (trace load + replay) on the 500k-record datapoint —
#: the ISSUE 9 acceptance target.  Measured ~10x (the JSONL parse alone
#: dwarfs the whole streamed run); the floor locks in half that.
TRACE_STREAM_MIN_SPEEDUP = 5.0
#: Absolute ceiling on the streaming replayer's traced peak memory (MiB):
#: one chunk cache plus network state, measured ~9 MiB — a 500k-record
#: trace must never be loaded eagerly by accident.
TRACE_STREAM_MAX_PEAK_MB = 32.0
#: Peak-memory flatness across the 10x trace-length spread (500k vs 50k
#: records): the streaming path is O(chunk), so the ratio must stay ~1.
TRACE_STREAM_MEM_FLAT_MAX = 1.5


def check(results: dict, baseline_path: str, max_regression: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    status = 0
    faultsoff = results.get("network_step_faultsoff_s")
    if faultsoff is not None:
        ratio = faultsoff / results["network_step_s"]
        verdict = ("ok" if ratio <= FAULTS_OFF_MAX_OVERHEAD
                   else "REGRESSION")
        print(f"  network_step_faultsoff_s: {faultsoff:.4f}s vs same-run "
              f"network_step_s {results['network_step_s']:.4f}s "
              f"({ratio:.2f}x, limit {FAULTS_OFF_MAX_OVERHEAD:.2f}x) "
              f"{verdict}")
        if ratio > FAULTS_OFF_MAX_OVERHEAD:
            status = 1
    for name, floor in (
            ("network_step_saturated_speedup_x", SATURATED_MIN_SPEEDUP),
            ("network_step_saturated_router_speedup_x",
             SATURATED_ROUTER_MIN_SPEEDUP),
            ("network_step_bigmesh_speedup_x", BIGMESH_MIN_SPEEDUP)):
        speedup = results.get(name)
        if speedup is None:
            continue
        verdict = "ok" if speedup >= floor else "REGRESSION"
        print(f"  {name}: {speedup:.2f}x vs same-run object core "
              f"(floor {floor:.2f}x) {verdict}")
        if speedup < floor:
            status = 1
    stream_speedup = results.get("trace_pipeline_speedup_x")
    if stream_speedup is not None:
        verdict = ("ok" if stream_speedup >= TRACE_STREAM_MIN_SPEEDUP
                   else "REGRESSION")
        print(f"  trace_pipeline_speedup_x: {stream_speedup:.2f}x vs "
              f"same-run JSONL path (floor "
              f"{TRACE_STREAM_MIN_SPEEDUP:.2f}x) {verdict}")
        if stream_speedup < TRACE_STREAM_MIN_SPEEDUP:
            status = 1
    peak_mb = results.get("trace_stream_peak_mb")
    if peak_mb is not None:
        verdict = ("ok" if peak_mb <= TRACE_STREAM_MAX_PEAK_MB
                   else "REGRESSION")
        print(f"  trace_stream_peak_mb: {peak_mb:.2f} MiB (ceiling "
              f"{TRACE_STREAM_MAX_PEAK_MB:.1f} MiB) {verdict}")
        if peak_mb > TRACE_STREAM_MAX_PEAK_MB:
            status = 1
    mem_ratio = results.get("trace_stream_memory_ratio_x")
    if mem_ratio is not None:
        verdict = ("ok" if mem_ratio <= TRACE_STREAM_MEM_FLAT_MAX
                   else "REGRESSION")
        print(f"  trace_stream_memory_ratio_x: {mem_ratio:.2f}x peak "
              f"across 10x trace length (ceiling "
              f"{TRACE_STREAM_MEM_FLAT_MAX:.2f}x) {verdict}")
        if mem_ratio > TRACE_STREAM_MEM_FLAT_MAX:
            status = 1
    for name, value in results.items():
        if not name.endswith("_s"):
            continue  # non-timing metric (cycles/sec, speedup): not gated
        if name.endswith(("_sanitized_s", "_alwaysstep_s",
                          "_faultsoff_s", "_objectcore_s", "_numpy_s",
                          "_jsonl_s")):
            continue  # debug/comparator timing: gated above or never
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: no baseline, skipped")
            continue
        ratio = value / reference
        verdict = "ok" if ratio <= max_regression else "REGRESSION"
        print(f"  {name}: {value:.4f}s vs baseline {reference:.4f}s "
              f"({ratio:.2f}x) {verdict}")
        if ratio > max_regression:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON file")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="allowed slowdown factor for --check "
                             "(default 3.0)")
    args = parser.parse_args(argv)
    results = run_all()
    for name, value in results.items():
        unit = "s" if name.endswith("_s") else ""
        print(f"{name}: {value:.4f}{unit}")
    overhead = results["network_step_sanitized_s"] / results["network_step_s"]
    print(f"sanitizer overhead (enabled vs disabled): {overhead:.2f}x")
    print(f"event-horizon low-load speedup (skip vs always-step): "
          f"{results['network_step_lowload_speedup_x']:.2f}x "
          f"({results['network_step_lowload_cycles_per_sec']:,.0f} cycles/s)")
    print(f"SoA core saturated speedup (vs object core, same run): "
          f"{results['network_step_saturated_speedup_x']:.2f}x full run, "
          f"{results['network_step_saturated_router_speedup_x']:.2f}x "
          f"router phase "
          f"({results['network_step_saturated_cycles_per_sec']:,.0f} "
          f"cycles/s)")
    print(f"SoA core 16x16 speedup (vs object core, same run): "
          f"{results['network_step_bigmesh_speedup_x']:.2f}x")
    print(f"trace pipeline stream speedup (vs eager JSONL, same run): "
          f"{results['trace_pipeline_speedup_x']:.2f}x end-to-end, peak "
          f"{results['trace_stream_peak_mb']:.1f} MiB "
          f"({results['trace_stream_memory_ratio_x']:.2f}x across 10x "
          f"trace length); streamed "
          f"{results['trace_stream_16x16_cycles_per_sec']:,.0f} cycles/s "
          f"on 16x16, "
          f"{results['trace_stream_32x32_cycles_per_sec']:,.0f} on 32x32")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
    if args.check:
        print(f"checking against {args.check} "
              f"(max {args.max_regression:.1f}x):")
        return check(results, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
