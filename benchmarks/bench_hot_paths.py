"""Microbenchmark of the simulator's three hot paths.

Times, over fixed deterministic workloads:

* ``fpc.match_approx``   — pattern matching on (word, mask) pairs;
* ``Avcl.evaluate``      — don't-care mask computation per word;
* ``Network.step``       — full network cycles replaying a benchmark trace.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py [--json out.json]
    PYTHONPATH=src python benchmarks/bench_hot_paths.py \
        --check benchmarks/bench_hot_paths_baseline.json --max-regression 3

``--check`` exits non-zero when any metric is slower than baseline by more
than the allowed factor (a coarse tripwire for accidental hot-path
regressions; the 3x default absorbs machine-to-machine variance).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.compression.fpc import clear_match_caches, match_approx
from repro.core.avcl import Avcl, clear_evaluate_cache
from repro.core.block import DataType
from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network, NocConfig
from repro.traffic import TraceTraffic

#: Distinct values per workload; small enough that the warm passes hit the
#: encode caches like real traffic (benchmark value models repeat heavily).
UNIQUE_VALUES = 4096
#: Evaluations per measured pass (mostly warm, as in a real run).
PASS_OPS = 100_000
NETWORK_CYCLES = 1500
REPEATS = 3


def _words(n: int, seed: int = 7):
    rng = random.Random(seed)
    kinds = []
    for _ in range(n):
        pick = rng.random()
        if pick < 0.35:
            kinds.append(rng.randint(0, 255))              # small ints
        elif pick < 0.55:
            kinds.append(0xFFFFFF00 | rng.randint(0, 255))  # small negatives
        else:
            kinds.append(rng.getrandbits(32))               # wide values
    return kinds


def _best(fn) -> float:
    return min(fn() for _ in range(REPEATS))


def bench_match_approx() -> float:
    words = _words(UNIQUE_VALUES)
    masks = [0x000000FF, 0x0000000F, 0x00000000, 0x000001FF]

    def one_pass() -> float:
        clear_match_caches()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            match_approx(words[i % UNIQUE_VALUES], masks[i & 3])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_avcl_evaluate() -> float:
    avcl = Avcl(error_threshold_pct=10.0)
    words = _words(UNIQUE_VALUES)
    dtypes = [DataType.INT, DataType.FLOAT]

    def one_pass() -> float:
        clear_evaluate_cache()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            avcl.evaluate(words[i % UNIQUE_VALUES], dtypes[i & 1])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_network_step(sanitize: bool = False) -> float:
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=2,
                       sanitize=sanitize)
    trace = benchmark_trace(config, "ssca2", NETWORK_CYCLES, seed=11)

    def one_pass() -> float:
        network = Network(config, make_scheme("FP-VAXX", config.n_nodes))
        network.set_traffic(TraceTraffic(trace, loop=True))
        start = time.perf_counter()
        network.run(NETWORK_CYCLES)
        return time.perf_counter() - start

    return _best(one_pass)


def run_all() -> dict:
    results = {
        "match_approx_s": bench_match_approx(),
        "avcl_evaluate_s": bench_avcl_evaluate(),
        "network_step_s": bench_network_step(),
        # NoCSan overhead, reported for visibility but exempt from --check:
        # the sanitized path is opt-in debugging, only the *disabled* path
        # (network_step_s above, with no wrapping at all) must stay fast.
        "network_step_sanitized_s": bench_network_step(sanitize=True),
    }
    return results


def check(results: dict, baseline_path: str, max_regression: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    status = 0
    for name, value in results.items():
        if name.endswith("_sanitized_s"):
            continue  # debug-mode timing: reported, never gated
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: no baseline, skipped")
            continue
        ratio = value / reference
        verdict = "ok" if ratio <= max_regression else "REGRESSION"
        print(f"  {name}: {value:.4f}s vs baseline {reference:.4f}s "
              f"({ratio:.2f}x) {verdict}")
        if ratio > max_regression:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON file")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="allowed slowdown factor for --check "
                             "(default 3.0)")
    args = parser.parse_args(argv)
    results = run_all()
    for name, value in results.items():
        print(f"{name}: {value:.4f}s")
    overhead = results["network_step_sanitized_s"] / results["network_step_s"]
    print(f"sanitizer overhead (enabled vs disabled): {overhead:.2f}x")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
    if args.check:
        print(f"checking against {args.check} "
              f"(max {args.max_regression:.1f}x):")
        return check(results, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
