"""Microbenchmark of the simulator's hot paths.

Times, over fixed deterministic workloads:

* ``fpc.match_approx``   — pattern matching on (word, mask) pairs;
* ``Avcl.evaluate``      — don't-care mask computation per word;
* ``Network.step``       — full network cycles replaying a benchmark trace;
* event-horizon fast path — the same network skipping quiescent windows
  under uniform-random low-load traffic (DESIGN.md §12), reported both as
  seconds and as simulated cycles/second, next to a forced always-step
  run of the identical workload.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py [--json out.json]
    PYTHONPATH=src python benchmarks/bench_hot_paths.py \
        --check benchmarks/bench_hot_paths_baseline.json --max-regression 3

``--check`` exits non-zero when any metric is slower than baseline by more
than the allowed factor (a coarse tripwire for accidental hot-path
regressions; the 3x default absorbs machine-to-machine variance).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import replace

from repro.compression.fpc import clear_match_caches, match_approx
from repro.core.avcl import Avcl, clear_evaluate_cache
from repro.core.block import DataType
from repro.faults import FaultConfig
from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network, NocConfig
from repro.traffic import SyntheticTraffic, TraceTraffic, record_trace

#: Distinct values per workload; small enough that the warm passes hit the
#: encode caches like real traffic (benchmark value models repeat heavily).
UNIQUE_VALUES = 4096
#: Evaluations per measured pass (mostly warm, as in a real run).
PASS_OPS = 100_000
NETWORK_CYCLES = 1500
#: Low-load point: uniform-random traffic this sparse leaves ~99% of
#: cycles quiescent, so the event-horizon skip dominates the run.  (At
#: ~0.02 flits/node/cycle a packet's ~14-cycle flight still keeps the
#: network busy ~14% of the time and caps the skip win near 1.7x; see
#: DESIGN.md §12 for the amplification argument.)
LOWLOAD_RATE = 0.002
LOWLOAD_CYCLES = 60_000
REPEATS = 3


def _words(n: int, seed: int = 7):
    rng = random.Random(seed)
    kinds = []
    for _ in range(n):
        pick = rng.random()
        if pick < 0.35:
            kinds.append(rng.randint(0, 255))              # small ints
        elif pick < 0.55:
            kinds.append(0xFFFFFF00 | rng.randint(0, 255))  # small negatives
        else:
            kinds.append(rng.getrandbits(32))               # wide values
    return kinds


def _best(fn) -> float:
    return min(fn() for _ in range(REPEATS))


def bench_match_approx() -> float:
    words = _words(UNIQUE_VALUES)
    masks = [0x000000FF, 0x0000000F, 0x00000000, 0x000001FF]

    def one_pass() -> float:
        clear_match_caches()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            match_approx(words[i % UNIQUE_VALUES], masks[i & 3])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_avcl_evaluate() -> float:
    avcl = Avcl(error_threshold_pct=10.0)
    words = _words(UNIQUE_VALUES)
    dtypes = [DataType.INT, DataType.FLOAT]

    def one_pass() -> float:
        clear_evaluate_cache()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            avcl.evaluate(words[i % UNIQUE_VALUES], dtypes[i & 1])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_network_step(sanitize: bool = False, faults=None) -> float:
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=2,
                       sanitize=sanitize, faults=faults)
    trace = benchmark_trace(config, "ssca2", NETWORK_CYCLES, seed=11)

    def one_pass() -> float:
        network = Network(config, make_scheme("FP-VAXX", config.n_nodes))
        network.set_traffic(TraceTraffic(trace, loop=True))
        start = time.perf_counter()
        network.run(NETWORK_CYCLES)
        return time.perf_counter() - start

    return _best(one_pass)


def bench_network_step_lowload() -> dict:
    """Event-horizon fast path vs forced always-step on low-load traffic.

    Uniform-random synthetic traffic is recorded once into a trace (setup,
    untimed — the harness's own methodology, see ``run_trace``), then the
    identical trace is replayed with ``event_horizon`` on and off.  Both
    runs must produce bit-identical simulation outputs (asserted here);
    only wall-clock may differ.
    """
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
    source = SyntheticTraffic(config, injection_rate=LOWLOAD_RATE,
                              seed=13, data_ratio=1.0)
    trace = record_trace(source, LOWLOAD_CYCLES)

    def one_pass(event_horizon: bool):
        network = Network(replace(config, event_horizon=event_horizon),
                          make_scheme("FP-VAXX", config.n_nodes))
        network.set_traffic(TraceTraffic(trace, loop=True))
        start = time.perf_counter()
        network.run(LOWLOAD_CYCLES)
        return time.perf_counter() - start, network

    _, skip_net = one_pass(True)
    _, step_net = one_pass(False)
    if skip_net.stats.simulation_outputs() != step_net.stats.simulation_outputs():
        raise AssertionError(
            "event-horizon run diverged from always-step run: "
            f"{skip_net.stats.simulation_outputs()} != "
            f"{step_net.stats.simulation_outputs()}")
    lowload = _best(lambda: one_pass(True)[0])
    alwaysstep = _best(lambda: one_pass(False)[0])
    return {
        "network_step_lowload_s": lowload,
        "network_step_lowload_cycles_per_sec": LOWLOAD_CYCLES / lowload,
        # Forced always-step comparator on the identical workload: reported
        # for the speedup trajectory, exempt from --check (it times the
        # deliberately-slow mode; the fast path above is what must not
        # regress — as is network_step_s for the shared step machinery).
        "network_step_lowload_alwaysstep_s": alwaysstep,
        "network_step_lowload_speedup_x": alwaysstep / lowload,
    }


def run_all() -> dict:
    results = {
        "match_approx_s": bench_match_approx(),
        "avcl_evaluate_s": bench_avcl_evaluate(),
        "network_step_s": bench_network_step(),
        # NoCSan overhead, reported for visibility but exempt from --check:
        # the sanitized path is opt-in debugging, only the *disabled* path
        # (network_step_s above, with no wrapping at all) must stay fast.
        "network_step_sanitized_s": bench_network_step(sanitize=True),
        # Fault-injection layer built but with every rate at zero: the
        # hot paths must compile down to the faults=None closures.  Gated
        # in --check at <= FAULTS_OFF_MAX_OVERHEAD of network_step_s from
        # the *same* run (in-results ratio: immune to machine variance).
        "network_step_faultsoff_s": bench_network_step(
            faults=FaultConfig()),
    }
    results.update(bench_network_step_lowload())
    return results


#: Allowed slowdown of a run with the fault layer built-but-unarmed
#: (all-zero FaultConfig) over one with faults=None, measured within a
#: single bench run: the rate-0 plumbing must stay within 5%.
FAULTS_OFF_MAX_OVERHEAD = 1.05


def check(results: dict, baseline_path: str, max_regression: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    status = 0
    faultsoff = results.get("network_step_faultsoff_s")
    if faultsoff is not None:
        ratio = faultsoff / results["network_step_s"]
        verdict = ("ok" if ratio <= FAULTS_OFF_MAX_OVERHEAD
                   else "REGRESSION")
        print(f"  network_step_faultsoff_s: {faultsoff:.4f}s vs same-run "
              f"network_step_s {results['network_step_s']:.4f}s "
              f"({ratio:.2f}x, limit {FAULTS_OFF_MAX_OVERHEAD:.2f}x) "
              f"{verdict}")
        if ratio > FAULTS_OFF_MAX_OVERHEAD:
            status = 1
    for name, value in results.items():
        if not name.endswith("_s"):
            continue  # non-timing metric (cycles/sec, speedup): not gated
        if name.endswith(("_sanitized_s", "_alwaysstep_s",
                          "_faultsoff_s")):
            continue  # debug/comparator timing: gated above or never
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: no baseline, skipped")
            continue
        ratio = value / reference
        verdict = "ok" if ratio <= max_regression else "REGRESSION"
        print(f"  {name}: {value:.4f}s vs baseline {reference:.4f}s "
              f"({ratio:.2f}x) {verdict}")
        if ratio > max_regression:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON file")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="allowed slowdown factor for --check "
                             "(default 3.0)")
    args = parser.parse_args(argv)
    results = run_all()
    for name, value in results.items():
        unit = "s" if name.endswith("_s") else ""
        print(f"{name}: {value:.4f}{unit}")
    overhead = results["network_step_sanitized_s"] / results["network_step_s"]
    print(f"sanitizer overhead (enabled vs disabled): {overhead:.2f}x")
    print(f"event-horizon low-load speedup (skip vs always-step): "
          f"{results['network_step_lowload_speedup_x']:.2f}x "
          f"({results['network_step_lowload_cycles_per_sec']:,.0f} cycles/s)")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
    if args.check:
        print(f"checking against {args.check} "
              f"(max {args.max_regression:.1f}x):")
        return check(results, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
