"""Microbenchmark of the simulator's hot paths.

Times, over fixed deterministic workloads:

* ``fpc.match_approx``   — pattern matching on (word, mask) pairs;
* ``Avcl.evaluate``      — don't-care mask computation per word;
* ``Network.step``       — full network cycles replaying a benchmark trace;
* event-horizon fast path — the same network skipping quiescent windows
  under uniform-random low-load traffic (DESIGN.md §12), reported both as
  seconds and as simulated cycles/second, next to a forced always-step
  run of the identical workload;
* saturated-load stepping — an 8x8 mesh at 0.1 flits/node/cycle, run on
  both the struct-of-arrays core and the object core (DESIGN.md §14),
  with the wall clock split per step phase so regressions are
  attributable to a phase rather than a total;
* big-mesh stepping — the same load on 16x16, plus the numpy backend
  when it is importable.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_hot_paths.py [--json out.json]
    PYTHONPATH=src python benchmarks/bench_hot_paths.py \
        --check benchmarks/bench_hot_paths_baseline.json --max-regression 3

``--check`` exits non-zero when any metric is slower than baseline by more
than the allowed factor (a coarse tripwire for accidental hot-path
regressions; the 3x default absorbs machine-to-machine variance).
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from dataclasses import replace

from repro.compression.fpc import clear_match_caches, match_approx
from repro.core.avcl import Avcl, clear_evaluate_cache
from repro.core.block import DataType
from repro.faults import FaultConfig
from repro.harness.experiment import benchmark_trace, make_scheme
from repro.noc import Network, NocConfig
from repro.traffic import SyntheticTraffic, TraceTraffic, record_trace

#: Distinct values per workload; small enough that the warm passes hit the
#: encode caches like real traffic (benchmark value models repeat heavily).
UNIQUE_VALUES = 4096
#: Evaluations per measured pass (mostly warm, as in a real run).
PASS_OPS = 100_000
NETWORK_CYCLES = 1500
#: Low-load point: uniform-random traffic this sparse leaves ~99% of
#: cycles quiescent, so the event-horizon skip dominates the run.  (At
#: ~0.02 flits/node/cycle a packet's ~14-cycle flight still keeps the
#: network busy ~14% of the time and caps the skip win near 1.7x; see
#: DESIGN.md §12 for the amplification argument.)
LOWLOAD_RATE = 0.002
LOWLOAD_CYCLES = 60_000
#: Saturated-load point (ISSUE 6): uniform-random traffic at 0.1
#: *uncompressed flits* per node per cycle — the repo's injection-rate
#: unit — on an 8x8 mesh, replayed under the Baseline scheme so the
#: datapoint times network stepping rather than encode/decode.
SATURATED_RATE = 0.1
SATURATED_CYCLES = 1500
BIGMESH_CYCLES = 600
REPEATS = 3


def _words(n: int, seed: int = 7):
    rng = random.Random(seed)
    kinds = []
    for _ in range(n):
        pick = rng.random()
        if pick < 0.35:
            kinds.append(rng.randint(0, 255))              # small ints
        elif pick < 0.55:
            kinds.append(0xFFFFFF00 | rng.randint(0, 255))  # small negatives
        else:
            kinds.append(rng.getrandbits(32))               # wide values
    return kinds


def _best(fn) -> float:
    return min(fn() for _ in range(REPEATS))


def bench_match_approx() -> float:
    words = _words(UNIQUE_VALUES)
    masks = [0x000000FF, 0x0000000F, 0x00000000, 0x000001FF]

    def one_pass() -> float:
        clear_match_caches()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            match_approx(words[i % UNIQUE_VALUES], masks[i & 3])
        return time.perf_counter() - start

    return _best(one_pass)


def bench_avcl_evaluate() -> float:
    avcl = Avcl(error_threshold_pct=10.0)
    words = _words(UNIQUE_VALUES)
    dtypes = [DataType.INT, DataType.FLOAT]

    def one_pass() -> float:
        clear_evaluate_cache()
        start = time.perf_counter()
        for i in range(PASS_OPS):
            avcl.evaluate(words[i % UNIQUE_VALUES], dtypes[i & 1])
        return time.perf_counter() - start

    return _best(one_pass)


def _replay_network(config: NocConfig, scheme_name: str,
                    trace: list) -> Network:
    """Fresh network replaying a recorded trace — the shared setup of
    every ``network_step*`` datapoint (recording itself is untimed)."""
    network = Network(config, make_scheme(scheme_name, config.n_nodes))
    network.set_traffic(TraceTraffic(trace, loop=True))
    return network


def _timed_replay(config: NocConfig, scheme_name: str, trace: list,
                  cycles: int) -> float:
    """Best-of-``REPEATS`` wall time of one trace replay."""

    def one_pass() -> float:
        network = _replay_network(config, scheme_name, trace)
        start = time.perf_counter()
        network.run(cycles)
        return time.perf_counter() - start

    return _best(one_pass)


def _phase_split_replay(config: NocConfig, scheme_name: str, trace: list,
                        cycles: int):
    """One replay with the wall clock split per step phase.

    Wraps the network's router/deliver/credit phase methods with timing
    shims (instance attributes shadow the bound methods, so ``step()``
    picks them up); everything not covered is the NI/traffic/stats
    remainder.  Returns ``(total_s, phases_s, network)``.
    """
    network = _replay_network(config, scheme_name, trace)
    phases = {"router": 0.0, "deliver": 0.0, "credits": 0.0}
    cycle_routers = network._cycle_routers
    deliver = network._deliver_arrivals
    credits = network._apply_credits
    perf = time.perf_counter

    def timed_routers(*args):
        t0 = perf()
        cycle_routers(*args)
        phases["router"] += perf() - t0

    def timed_deliver(*args):
        t0 = perf()
        deliver(*args)
        phases["deliver"] += perf() - t0

    def timed_credits(*args):
        t0 = perf()
        credits(*args)
        phases["credits"] += perf() - t0

    network._cycle_routers = timed_routers
    network._deliver_arrivals = timed_deliver
    network._apply_credits = timed_credits
    start = perf()
    network.run(cycles)
    return perf() - start, phases, network


def bench_network_step(sanitize: bool = False, faults=None) -> float:
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=2,
                       sanitize=sanitize, faults=faults)
    trace = benchmark_trace(config, "ssca2", NETWORK_CYCLES, seed=11)
    return _timed_replay(config, "FP-VAXX", trace, NETWORK_CYCLES)


def bench_network_step_lowload() -> dict:
    """Event-horizon fast path vs forced always-step on low-load traffic.

    Uniform-random synthetic traffic is recorded once into a trace (setup,
    untimed — the harness's own methodology, see ``run_trace``), then the
    identical trace is replayed with ``event_horizon`` on and off.  Both
    runs must produce bit-identical simulation outputs (asserted here);
    only wall-clock may differ.
    """
    config = NocConfig(mesh_width=2, mesh_height=2, concentration=1)
    source = SyntheticTraffic(config, injection_rate=LOWLOAD_RATE,
                              seed=13, data_ratio=1.0)
    trace = record_trace(source, LOWLOAD_CYCLES)

    def run_once(event_horizon: bool) -> Network:
        network = _replay_network(replace(config,
                                          event_horizon=event_horizon),
                                  "FP-VAXX", trace)
        network.run(LOWLOAD_CYCLES)
        return network

    skip_net = run_once(True)
    step_net = run_once(False)
    if skip_net.stats.simulation_outputs() != step_net.stats.simulation_outputs():
        raise AssertionError(
            "event-horizon run diverged from always-step run: "
            f"{skip_net.stats.simulation_outputs()} != "
            f"{step_net.stats.simulation_outputs()}")
    lowload = _timed_replay(config, "FP-VAXX", trace, LOWLOAD_CYCLES)
    alwaysstep = _timed_replay(replace(config, event_horizon=False),
                               "FP-VAXX", trace, LOWLOAD_CYCLES)
    return {
        "network_step_lowload_s": lowload,
        "network_step_lowload_cycles_per_sec": LOWLOAD_CYCLES / lowload,
        # Forced always-step comparator on the identical workload: reported
        # for the speedup trajectory, exempt from --check (it times the
        # deliberately-slow mode; the fast path above is what must not
        # regress — as is network_step_s for the shared step machinery).
        "network_step_lowload_alwaysstep_s": alwaysstep,
        "network_step_lowload_speedup_x": alwaysstep / lowload,
    }


def _core_comparison(config: NocConfig, trace: list, cycles: int):
    """Run one trace on the SoA core and the object core, asserting
    bit-identical simulation outputs, and return their best wall times
    (plus the SoA pass's per-phase split)."""
    soa_cfg = replace(config, core="soa")
    obj_cfg = replace(config, core="object")
    best_total = None
    best_phases = None
    soa_net = None
    for _ in range(REPEATS):
        total, phases, network = _phase_split_replay(soa_cfg, "Baseline",
                                                     trace, cycles)
        if best_total is None or total < best_total:
            best_total, best_phases, soa_net = total, phases, network
    obj_total = None
    obj_phases = None
    obj_net = None
    for _ in range(REPEATS):
        total, phases, network = _phase_split_replay(obj_cfg, "Baseline",
                                                     trace, cycles)
        if obj_total is None or total < obj_total:
            obj_total, obj_phases, obj_net = total, phases, network
    if soa_net.stats.simulation_outputs() != obj_net.stats.simulation_outputs():
        raise AssertionError(
            "SoA core diverged from the object core on the bench "
            f"workload: {soa_net.stats.simulation_outputs()} != "
            f"{obj_net.stats.simulation_outputs()}")
    return best_total, best_phases, soa_net, obj_total, obj_phases


def bench_network_step_saturated() -> dict:
    """Saturated-load stepping: SoA core vs object core on 8x8 at 0.1
    flits/node/cycle, with the wall clock split per step phase.

    Both cores run the identical recorded trace and must produce
    bit-identical simulation outputs (asserted).  ``profile_phases`` is on,
    so the per-phase cycles/sec figures pair each phase's activity ticks
    with its measured wall share.  The speedup ratios are measured within
    this run (like the faults-off gate: immune to machine variance) and
    gated in ``--check``.
    """
    config = NocConfig(mesh_width=8, mesh_height=8, concentration=1,
                       profile_phases=True)
    source = SyntheticTraffic(config, injection_rate=SATURATED_RATE,
                              seed=13, data_ratio=0.25)
    trace = record_trace(source, SATURATED_CYCLES)
    soa_s, soa_phases, soa_net, obj_s, obj_phases = _core_comparison(
        config, trace, SATURATED_CYCLES)
    stats = soa_net.stats
    results = {
        "network_step_saturated_s": soa_s,
        "network_step_saturated_cycles_per_sec": SATURATED_CYCLES / soa_s,
        # Object-core comparator on the identical workload: reported for
        # the speedup trajectory, exempt from --check (it times the
        # reference core, not the default fast path).
        "network_step_saturated_objectcore_s": obj_s,
        "network_step_saturated_speedup_x": obj_s / soa_s,
        "network_step_saturated_router_phase_s": soa_phases["router"],
        "network_step_saturated_router_speedup_x":
            obj_phases["router"] / soa_phases["router"],
    }
    # Per-phase cycles/sec: cycles in which the phase did any work
    # (profile_phases ticks) over the wall time spent inside the phase —
    # a regression here names the phase, not just the total.
    for key, ticks in (("router", stats.router_phase_ticks),
                       ("deliver", stats.deliver_phase_ticks),
                       ("credits", stats.credit_phase_ticks)):
        seconds = soa_phases[key]
        if seconds > 0:
            results[f"network_step_saturated_{key}_phase_cycles_per_sec"] \
                = ticks / seconds
    return results


def bench_network_step_bigmesh() -> dict:
    """Big-mesh stepping: the saturated workload on 16x16, SoA vs object
    core, plus the numpy backend when it is importable."""
    config = NocConfig(mesh_width=16, mesh_height=16, concentration=1)
    source = SyntheticTraffic(config, injection_rate=SATURATED_RATE,
                              seed=13, data_ratio=0.25)
    trace = record_trace(source, BIGMESH_CYCLES)
    soa_s, _, soa_net, obj_s, _ = _core_comparison(config, trace,
                                                   BIGMESH_CYCLES)
    results = {
        "network_step_bigmesh_s": soa_s,
        "network_step_bigmesh_cycles_per_sec": BIGMESH_CYCLES / soa_s,
        "network_step_bigmesh_objectcore_s": obj_s,
        "network_step_bigmesh_speedup_x": obj_s / soa_s,
    }
    try:
        import numpy  # noqa: F401  (optional extra, see pyproject [fast])
    except ImportError:
        return results
    np_cfg = replace(config, core="numpy")
    np_net = _replay_network(np_cfg, "Baseline", trace)
    np_net.run(BIGMESH_CYCLES)
    if np_net.stats.simulation_outputs() != soa_net.stats.simulation_outputs():
        raise AssertionError(
            "numpy core diverged from the SoA core on the bench workload")
    results["network_step_bigmesh_numpy_s"] = _timed_replay(
        np_cfg, "Baseline", trace, BIGMESH_CYCLES)
    return results


def run_all() -> dict:
    results = {
        "match_approx_s": bench_match_approx(),
        "avcl_evaluate_s": bench_avcl_evaluate(),
        "network_step_s": bench_network_step(),
        # NoCSan overhead, reported for visibility but exempt from --check:
        # the sanitized path is opt-in debugging, only the *disabled* path
        # (network_step_s above, with no wrapping at all) must stay fast.
        "network_step_sanitized_s": bench_network_step(sanitize=True),
        # Fault-injection layer built but with every rate at zero: the
        # hot paths must compile down to the faults=None closures.  Gated
        # in --check at <= FAULTS_OFF_MAX_OVERHEAD of network_step_s from
        # the *same* run (in-results ratio: immune to machine variance).
        "network_step_faultsoff_s": bench_network_step(
            faults=FaultConfig()),
    }
    results.update(bench_network_step_lowload())
    results.update(bench_network_step_saturated())
    results.update(bench_network_step_bigmesh())
    return results


#: Allowed slowdown of a run with the fault layer built-but-unarmed
#: (all-zero FaultConfig) over one with faults=None, measured within a
#: single bench run: the rate-0 plumbing must stay within 5%.
FAULTS_OFF_MAX_OVERHEAD = 1.05

#: In-run speedup floors for the struct-of-arrays core over the object
#: core on the same recorded workload (measured within one bench run, so
#: machine variance cancels).  ISSUE 6 targeted 5x at 0.1
#: flits/node/cycle; the measured ceiling is lower — shared
#: NI/traffic/stats work bounds the full-run ratio near 2.8x even with an
#: infinitely fast router phase, and the per-flit-hop floor of a
#: bit-identical Python pass bounds the router phase near 2x at this load
#: (DESIGN.md §14 has the arithmetic) — so the gates lock in the measured
#: wins with headroom for noise rather than encode an unreachable target.
SATURATED_MIN_SPEEDUP = 1.2
SATURATED_ROUTER_MIN_SPEEDUP = 1.5
BIGMESH_MIN_SPEEDUP = 1.3


def check(results: dict, baseline_path: str, max_regression: float) -> int:
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    status = 0
    faultsoff = results.get("network_step_faultsoff_s")
    if faultsoff is not None:
        ratio = faultsoff / results["network_step_s"]
        verdict = ("ok" if ratio <= FAULTS_OFF_MAX_OVERHEAD
                   else "REGRESSION")
        print(f"  network_step_faultsoff_s: {faultsoff:.4f}s vs same-run "
              f"network_step_s {results['network_step_s']:.4f}s "
              f"({ratio:.2f}x, limit {FAULTS_OFF_MAX_OVERHEAD:.2f}x) "
              f"{verdict}")
        if ratio > FAULTS_OFF_MAX_OVERHEAD:
            status = 1
    for name, floor in (
            ("network_step_saturated_speedup_x", SATURATED_MIN_SPEEDUP),
            ("network_step_saturated_router_speedup_x",
             SATURATED_ROUTER_MIN_SPEEDUP),
            ("network_step_bigmesh_speedup_x", BIGMESH_MIN_SPEEDUP)):
        speedup = results.get(name)
        if speedup is None:
            continue
        verdict = "ok" if speedup >= floor else "REGRESSION"
        print(f"  {name}: {speedup:.2f}x vs same-run object core "
              f"(floor {floor:.2f}x) {verdict}")
        if speedup < floor:
            status = 1
    for name, value in results.items():
        if not name.endswith("_s"):
            continue  # non-timing metric (cycles/sec, speedup): not gated
        if name.endswith(("_sanitized_s", "_alwaysstep_s",
                          "_faultsoff_s", "_objectcore_s", "_numpy_s")):
            continue  # debug/comparator timing: gated above or never
        reference = baseline.get(name)
        if reference is None:
            print(f"  {name}: no baseline, skipped")
            continue
        ratio = value / reference
        verdict = "ok" if ratio <= max_regression else "REGRESSION"
        print(f"  {name}: {value:.4f}s vs baseline {reference:.4f}s "
              f"({ratio:.2f}x) {verdict}")
        if ratio > max_regression:
            status = 1
    return status


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="PATH",
                        help="write results as JSON to PATH")
    parser.add_argument("--check", metavar="BASELINE",
                        help="compare against a baseline JSON file")
    parser.add_argument("--max-regression", type=float, default=3.0,
                        help="allowed slowdown factor for --check "
                             "(default 3.0)")
    args = parser.parse_args(argv)
    results = run_all()
    for name, value in results.items():
        unit = "s" if name.endswith("_s") else ""
        print(f"{name}: {value:.4f}{unit}")
    overhead = results["network_step_sanitized_s"] / results["network_step_s"]
    print(f"sanitizer overhead (enabled vs disabled): {overhead:.2f}x")
    print(f"event-horizon low-load speedup (skip vs always-step): "
          f"{results['network_step_lowload_speedup_x']:.2f}x "
          f"({results['network_step_lowload_cycles_per_sec']:,.0f} cycles/s)")
    print(f"SoA core saturated speedup (vs object core, same run): "
          f"{results['network_step_saturated_speedup_x']:.2f}x full run, "
          f"{results['network_step_saturated_router_speedup_x']:.2f}x "
          f"router phase "
          f"({results['network_step_saturated_cycles_per_sec']:,.0f} "
          f"cycles/s)")
    print(f"SoA core 16x16 speedup (vs object core, same run): "
          f"{results['network_step_bigmesh_speedup_x']:.2f}x")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2)
            handle.write("\n")
    if args.check:
        print(f"checking against {args.check} "
              f"(max {args.max_regression:.1f}x):")
        return check(results, args.check, args.max_regression)
    return 0


if __name__ == "__main__":
    sys.exit(main())
