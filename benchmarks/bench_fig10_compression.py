"""Figure 10: encoded-word fraction (a) and compression ratio (b).

Expected shape: VAXX raises the encoded fraction over its base mechanism
(the paper reports up to +18% for DI-VAXX and up to +37% for FP-VAXX) and
the compression ratio rises accordingly (paper: +10% / +30% on average).
"""

from conftest import scaled

from repro.harness import figure10, format_figure10, run_benchmark_suite


def run_figure10():
    suite = run_benchmark_suite(
        trace_cycles=scaled(6000), warmup=scaled(3000),
        measure=scaled(3000))
    return figure10(suite)


def check_shape(rows):
    gmean = {r["mechanism"]: r for r in rows if r["benchmark"] == "GMEAN"}
    assert (gmean["FP-VAXX"]["encoded_fraction"]
            > gmean["FP-COMP"]["encoded_fraction"])
    assert (gmean["DI-VAXX"]["encoded_fraction"]
            > gmean["DI-COMP"]["encoded_fraction"])
    assert (gmean["FP-VAXX"]["compression_ratio"]
            > gmean["FP-COMP"]["compression_ratio"])
    assert (gmean["DI-VAXX"]["compression_ratio"]
            > gmean["DI-COMP"]["compression_ratio"])
    # Only the VAXX mechanisms approximate (GMEAN rows clamp zeros to
    # 1e-9 to keep the geometric mean defined).
    for row in rows:
        if row["mechanism"] in ("DI-COMP", "FP-COMP"):
            assert row["approx_fraction"] <= 1e-8


def test_figure10(benchmark, show):
    rows = benchmark.pedantic(run_figure10, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure10(rows))
    gmean = {r["mechanism"]: r for r in rows if r["benchmark"] == "GMEAN"}
    di_gain = (gmean["DI-VAXX"]["compression_ratio"]
               / gmean["DI-COMP"]["compression_ratio"] - 1) * 100
    fp_gain = (gmean["FP-VAXX"]["compression_ratio"]
               / gmean["FP-COMP"]["compression_ratio"] - 1) * 100
    print(f"\ncompression ratio gain from VAXX: DI {di_gain:.1f}% "
          f"(paper avg 10%), FP {fp_gain:.1f}% (paper avg 30%)")
