"""Table 1: the APPROX-NoC simulation configuration.

Regenerates the configuration table and sanity-checks that the simulator's
defaults are exactly the paper's (4x4 c-mesh, 3-stage routers, 4 VCs x
4-flit buffers, 64-bit flits, 8-entry PMTs, 10%/75% defaults).
"""

from repro.compression.dictionary import DEFAULT_PMT_ENTRIES
from repro.harness import format_table1, table1
from repro.noc import PAPER_CONFIG


def run_table1():
    rows = table1()
    mapping = dict(rows)
    assert PAPER_CONFIG.n_nodes == 32
    assert PAPER_CONFIG.router_stages == 3
    assert PAPER_CONFIG.num_vcs == 4 and PAPER_CONFIG.vc_depth == 4
    assert PAPER_CONFIG.flit_bytes * 8 == 64
    assert DEFAULT_PMT_ENTRIES == 8
    assert "wormhole" in mapping["Switching / routing"]
    return rows


def test_table1(benchmark, show):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    show(format_table1(rows))
