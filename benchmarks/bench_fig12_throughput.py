"""Figure 12: throughput with synthetic traffic.

Latency-vs-injection curves for blackscholes and streamcluster data traces
under Uniform Random and Transpose patterns, 25:75 data-to-control packet
ratio.  Expected shape: Baseline saturates first; VAXX variants last
(the paper reports up to +40% sustained load under UR and +69% under TR
against the compression mechanisms).
"""

from conftest import scaled

from repro.harness import (
    figure12,
    format_figure12,
    saturation_throughput,
)

RATES = (0.05, 0.125, 0.175, 0.225, 0.30, 0.40, 0.50)


def run_figure12():
    return figure12(injection_rates=RATES, warmup=scaled(1200),
                    measure=scaled(2500))


def check_shape(results):
    for (benchmark, pattern), series in results.items():
        sustained = saturation_throughput(series, RATES)
        assert sustained["FP-VAXX"] >= sustained["FP-COMP"]
        assert sustained["DI-VAXX"] >= sustained["DI-COMP"]
        best_vaxx = max(sustained["FP-VAXX"], sustained["DI-VAXX"])
        assert best_vaxx >= sustained["Baseline"]


def test_figure12(benchmark, show):
    results = benchmark.pedantic(run_figure12, rounds=1, iterations=1)
    check_shape(results)
    show(format_figure12(results, RATES))
    print("\nSustained load before saturation (flits/cycle/node):")
    for (bench_name, pattern), series in results.items():
        sustained = saturation_throughput(series, RATES)
        summary = "  ".join(f"{m}={v:.2f}" for m, v in sustained.items())
        print(f"  {bench_name:>13s}/{pattern:<15s} {summary}")
