"""§5.5: encoder area overhead per NI (45 nm).

Regenerates the area numbers the paper obtained from CACTI + Verilog:
DI-VAXX 0.0037 mm², FP-VAXX 0.0029 mm² per NI.
"""

import pytest

from repro.harness import area_overhead, format_area_overhead


def run_area():
    return area_overhead(n_nodes=32)


def check_shape(rows):
    by_mechanism = {r["mechanism"]: r for r in rows}
    assert by_mechanism["DI-VAXX"]["total_mm2"] == pytest.approx(
        0.0037, rel=0.10)
    assert by_mechanism["FP-VAXX"]["total_mm2"] == pytest.approx(
        0.0029, rel=0.10)
    assert (by_mechanism["DI-VAXX"]["total_mm2"]
            > by_mechanism["DI-COMP"]["total_mm2"])
    assert (by_mechanism["FP-VAXX"]["total_mm2"]
            > by_mechanism["FP-COMP"]["total_mm2"])


def test_area_overhead(benchmark, show):
    rows = benchmark.pedantic(run_area, rounds=1, iterations=1)
    check_shape(rows)
    show(format_area_overhead(rows))
