"""Ablation: the §4.3 latency-hiding optimizations.

The paper overlaps compression with NI queueing (and head-flit VC
arbitration) so the 3-cycle codec rarely lands on the critical path.  This
ablation runs the same trace with the overlap on and off and reports the
queue-latency delta — quantifying a design point the paper asserts but does
not measure separately.
"""

import dataclasses

from conftest import scaled

from repro.harness import benchmark_trace, format_table, run_trace
from repro.noc import PAPER_CONFIG


def run_ablation():
    rows = []
    no_overlap = dataclasses.replace(PAPER_CONFIG,
                                     overlap_compression=False)
    for bench_name in ("ssca2", "blackscholes"):
        trace = benchmark_trace(PAPER_CONFIG, bench_name, scaled(5000))
        for label, config in (("overlap", PAPER_CONFIG),
                              ("no-overlap", no_overlap)):
            result = run_trace(config, "FP-VAXX", trace,
                               warmup=scaled(2500), measure=scaled(2500))
            rows.append({
                "benchmark": bench_name, "mode": label,
                "queue": result.avg_queue_latency,
                "total": result.avg_packet_latency,
            })
    return rows


def check_shape(rows):
    by_key = {(r["benchmark"], r["mode"]): r for r in rows}
    for bench_name in ("ssca2", "blackscholes"):
        with_overlap = by_key[(bench_name, "overlap")]
        without = by_key[(bench_name, "no-overlap")]
        # hiding compression can only help queueing latency
        assert with_overlap["queue"] <= without["queue"] + 0.05
        assert with_overlap["total"] <= without["total"] + 0.10


def test_latency_hiding(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    check_shape(rows)
    show(format_table(
        ["benchmark", "mode", "queue_latency", "total_latency"],
        [[r["benchmark"], r["mode"], r["queue"], r["total"]] for r in rows],
        title="Ablation: compression/queueing overlap (FP-VAXX, §4.3)"))
