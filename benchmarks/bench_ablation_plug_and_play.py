"""Ablation: VAXX as a plug-in over a third compression substrate.

§3.2 claims VAXX works "in the manner of plug and play module for any
underlying NoC data compression mechanisms".  Beyond the paper's two case
studies we couple it to base-delta compression (Zhan et al. [36]) and
replay a benchmark trace under BD-COMP vs BD-VAXX next to the original four
mechanisms.  Expected shape: BD-VAXX beats BD-COMP on flits and latency,
just as the other VAXX pairs do.
"""

from conftest import scaled

from repro.compression import BdCompScheme, BdVaxxScheme
from repro.harness import benchmark_trace, format_table
from repro.harness.experiment import RunResult
from repro.noc import Network, PAPER_CONFIG
from repro.traffic import TraceTraffic


def run_bd(mechanism_cls, trace, threshold=10.0, warmup=None, measure=None):
    scheme = (mechanism_cls(PAPER_CONFIG.n_nodes, error_threshold_pct=10.0)
              if mechanism_cls is BdVaxxScheme
              else mechanism_cls(PAPER_CONFIG.n_nodes))
    network = Network(PAPER_CONFIG, scheme)
    network.set_traffic(TraceTraffic(trace, loop=True))
    network.run(warmup)
    network.stats.reset()
    scheme.stats.reset()
    scheme.quality.reset()
    network.run(measure)
    cycles = network.stats.cycles
    assert network.drain(200_000)
    network.stats.cycles = cycles
    return RunResult.from_network(network)


def run_ablation():
    warmup, measure = scaled(2500), scaled(2500)
    rows = []
    for bench_name in ("ssca2", "streamcluster"):
        trace = benchmark_trace(PAPER_CONFIG, bench_name, scaled(5000))
        for cls in (BdCompScheme, BdVaxxScheme):
            run = run_bd(cls, trace, warmup=warmup, measure=measure)
            rows.append({
                "benchmark": bench_name, "mechanism": run.mechanism,
                "latency": run.avg_packet_latency,
                "data_flits": run.data_flits_injected,
                "ratio": run.compression_ratio,
                "quality": run.data_quality,
            })
    return rows


def check_shape(rows):
    by_key = {(r["benchmark"], r["mechanism"]): r for r in rows}
    for bench_name in ("ssca2", "streamcluster"):
        vaxx = by_key[(bench_name, "BD-VAXX")]
        comp = by_key[(bench_name, "BD-COMP")]
        assert vaxx["ratio"] >= comp["ratio"]
        assert vaxx["data_flits"] <= comp["data_flits"]
        assert vaxx["quality"] > 0.97


def test_plug_and_play(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    check_shape(rows)
    show(format_table(
        ["benchmark", "mechanism", "latency", "data_flits", "ratio",
         "quality"],
        [[r["benchmark"], r["mechanism"], r["latency"], r["data_flits"],
          r["ratio"], r["quality"]] for r in rows],
        title="Ablation: VAXX plugged onto base-delta compression"))
