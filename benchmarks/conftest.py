"""Shared configuration for the figure-regeneration benchmarks.

Every module regenerates one table/figure of the paper and prints the rows.
``REPRO_BENCH_SCALE`` (default 1.0) scales the simulation windows: set it
below 1 for a quick smoke pass or above 1 for tighter statistics.
"""

import os

import pytest

#: Global scale factor for simulation windows.
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(cycles: int, minimum: int = 400) -> int:
    """Scale a cycle budget, keeping it meaningfully large."""
    return max(int(cycles * SCALE), minimum)


@pytest.fixture
def show():
    """Print a figure's formatted rows under -s (and into captured logs)."""
    def _show(text: str) -> None:
        print()
        print(text)
    return _show
