"""Ablation: `paper` vs `strict` AVCL rounding (DESIGN.md §5).

The paper's shift/mask arithmetic (`paper` mode, reproducing its worked
examples) can exceed the nominal threshold on individual words; `strict`
mode rounds the divisor up and sizes the mask so the per-word bound provably
holds.  The ablation quantifies the trade: strict mode buys a hard error
bound at the cost of some approximate-match rate.
"""

from repro.core import CacheBlock, FpVaxxScheme
from repro.traffic.datagen import BlockGenerator, ValueModel
from repro.util.rng import DeterministicRng


def run_ablation(blocks: int = 600, threshold: float = 10.0):
    model = ValueModel(name="mixed", p_zero=0.15, p_small=0.15, p_pool=0.5,
                       pool_size=16, cluster_noise=0.03, exact_repeat=0.3,
                       scale=1e5)
    rows = []
    for mode in ("paper", "strict"):
        scheme = FpVaxxScheme(4, error_threshold_pct=threshold,
                              avcl_mode=mode)
        generator = BlockGenerator(model, DeterministicRng(5))
        for _ in range(blocks):
            scheme.roundtrip(generator.next_block(16, approximable=True),
                             0, 1)
        rows.append({
            "mode": mode,
            "approx_fraction": scheme.quality.approx_fraction,
            "compression_ratio": scheme.stats.compression_ratio,
            "mean_error": scheme.quality.mean_error,
            "max_word_error": scheme.quality.max_word_error,
        })
    return rows


def check_shape(rows):
    by_mode = {r["mode"]: r for r in rows}
    # strict mode enforces the nominal per-word bound
    assert by_mode["strict"]["max_word_error"] <= 0.10 + 1e-9
    # paper mode approximates at least as aggressively
    assert (by_mode["paper"]["approx_fraction"]
            >= by_mode["strict"]["approx_fraction"] - 1e-9)
    assert (by_mode["paper"]["compression_ratio"]
            >= by_mode["strict"]["compression_ratio"] - 1e-9)


def test_avcl_mode_ablation(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    check_shape(rows)
    from repro.harness import format_table
    show(format_table(
        ["mode", "approx_fraction", "ratio", "mean_err", "max_err"],
        [[r["mode"], r["approx_fraction"], r["compression_ratio"],
          r["mean_error"], r["max_word_error"]] for r in rows],
        title="Ablation: AVCL rounding mode (10% threshold)"))
