"""Figure 17: bodytrack precise vs approximate output.

Expected shape (§5.4): at the 10% data error budget the output track
vectors differ by a few percent (paper: 2.4%) and the rendered frames are
visually indistinguishable (high PSNR).
"""

from repro.harness import figure17, format_figure17


def run_figure17():
    return figure17(error_threshold_pct=10.0, n_frames=10, size=48)


def check_shape(result):
    assert result["track_error"] < 0.10
    finite = [p for p in result["frame_psnr_db"] if p != float("inf")]
    assert not finite or min(finite) > 30.0


def test_figure17(benchmark, show):
    result = benchmark.pedantic(run_figure17, rounds=1, iterations=1)
    check_shape(result)
    show(format_figure17(result))
