"""Figure 16: application output accuracy + normalized performance.

Expected shape (§5.4): with a 10% data error budget all applications stay
within the budget except streamcluster (center mismatch); at 20% the output
errors grow but most stay near 5%; performance improves with the budget,
most strongly for swaptions and ssca2 (paper: up to +10% and +14%).
"""

from conftest import scaled

from repro.harness import figure16, format_figure16

BUDGETS = (0.0, 10.0, 20.0)


def run_figure16():
    return figure16(budgets=BUDGETS, trace_cycles=scaled(5000),
                    warmup=scaled(2500), measure=scaled(2500))


def check_shape(rows):
    by_key = {(r["benchmark"], r["budget_pct"]): r for r in rows}
    benchmarks = {r["benchmark"] for r in rows}
    for bench_name in benchmarks:
        zero = by_key[(bench_name, 0.0)]
        assert zero["output_error"] == 0.0
        assert zero["normalized_performance"] == 1.0
        # error grows (weakly) with the budget; FP-VAXX's float path can
        # be slightly non-monotonic (§5.3.1), so allow a small tolerance
        assert (by_key[(bench_name, 20.0)]["output_error"]
                >= 0.7 * by_key[(bench_name, 10.0)]["output_error"] - 1e-6)
        # performance does not regress with a larger budget
        assert (by_key[(bench_name, 20.0)]["normalized_performance"]
                >= 0.97)
    # the data-intensive benchmarks gain the most
    assert by_key[("ssca2", 20.0)]["normalized_performance"] > 1.01


def test_figure16(benchmark, show):
    rows = benchmark.pedantic(run_figure16, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure16(rows))
    sc = [r for r in rows if r["benchmark"] == "streamcluster"
          and r["budget_pct"] == 20.0][0]
    print(f"\nstreamcluster output error at 20% budget: "
          f"{sc['output_error']:.3f} — the paper's noted outlier")
