"""Figure 13: error-threshold sensitivity (5% / 10% / 20%).

Expected shape (§5.3.1): latency improves (or holds) as the threshold
grows — more approximate matches — with FP-VAXX comparatively insensitive
because small thresholds already unlock the static pattern matches.
"""

from conftest import scaled

from repro.harness import figure13, format_figure13

THRESHOLDS = (5.0, 10.0, 20.0)


def run_figure13():
    return figure13(thresholds=THRESHOLDS, trace_cycles=scaled(5000),
                    warmup=scaled(2500), measure=scaled(2500))


def check_shape(rows):
    improvements = 0
    for row in rows:
        # The 20% threshold should not be slower than compression-only by
        # any meaningful margin, and usually improves on 5%.
        assert row["20%"] <= row["compression"] * 1.10
        if row["20%"] <= row["5%"] + 0.25:
            improvements += 1
    assert improvements >= len(rows) * 0.6


def test_figure13(benchmark, show):
    rows = benchmark.pedantic(run_figure13, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure13(rows, THRESHOLDS))
