"""Figure 11: reduction in injected data flits.

Expected shape: every compression mechanism injects fewer data flits than
Baseline, VAXX fewer than its base (paper: DI-VAXX -3% vs DI-COMP and -38%
vs Baseline; FP-VAXX -19% vs FP-COMP and -45% vs Baseline), with the
caveat of §5.2.1 that flit reduction does not scale proportionally with
compression ratio because of internal fragmentation.
"""

import math

from conftest import scaled

from repro.harness import figure11, format_figure11, run_benchmark_suite


def run_figure11():
    suite = run_benchmark_suite(
        trace_cycles=scaled(6000), warmup=scaled(3000),
        measure=scaled(3000))
    return figure11(suite), figure_ratio_map(suite)


def figure_ratio_map(suite):
    return {(benchmark, mechanism): run.compression_ratio
            for benchmark, runs in suite.runs.items()
            for mechanism, run in runs.items()}


def geomean(values):
    values = [max(v, 1e-9) for v in values]
    return math.exp(sum(math.log(v) for v in values) / len(values))


def check_shape(rows, ratios):
    by_key = {(r["benchmark"], r["mechanism"]): r for r in rows}
    benchmarks = {r["benchmark"] for r in rows}
    fp_vaxx_norm = geomean(by_key[(b, "FP-VAXX")]["normalized"]
                           for b in benchmarks)
    fp_comp_norm = geomean(by_key[(b, "FP-COMP")]["normalized"]
                           for b in benchmarks)
    assert fp_vaxx_norm < fp_comp_norm < 1.0
    di_vaxx_norm = geomean(by_key[(b, "DI-VAXX")]["normalized"]
                           for b in benchmarks)
    assert di_vaxx_norm < 1.0
    # Internal fragmentation: flit reduction lags the compression ratio.
    for benchmark in benchmarks:
        ratio = ratios[(benchmark, "FP-VAXX")]
        norm = by_key[(benchmark, "FP-VAXX")]["normalized"]
        assert norm >= 1.0 / ratio - 0.02


def test_figure11(benchmark, show):
    rows, ratios = benchmark.pedantic(run_figure11, rounds=1, iterations=1)
    check_shape(rows, ratios)
    show(format_figure11(rows))
