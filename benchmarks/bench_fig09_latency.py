"""Figure 9: average packet latency breakdown + data quality.

All eight benchmarks under all five mechanisms on identical traces
(10% threshold, 75% approximable packets).  Expected shape (§5.2.1):

* compression mechanisms beat Baseline on average;
* each VAXX variant beats its base mechanism;
* SSCA2 (data-intensive) shows the largest reduction;
* data value quality stays above 0.97 despite the 10% threshold.
"""

from conftest import scaled

from repro.harness import figure9, format_figure9, run_benchmark_suite


def run_figure9():
    suite = run_benchmark_suite(
        trace_cycles=scaled(6000), warmup=scaled(3000),
        measure=scaled(3000))
    return figure9(suite)


def check_shape(rows):
    avg = {r["mechanism"]: r for r in rows if r["benchmark"] == "AVG"}
    assert avg["FP-VAXX"]["total"] < avg["FP-COMP"]["total"]
    assert avg["DI-VAXX"]["total"] <= avg["DI-COMP"]["total"] * 1.02
    assert avg["FP-VAXX"]["total"] < avg["Baseline"]["total"]
    for row in rows:
        assert row["quality"] > 0.97
    ssca2 = {r["mechanism"]: r for r in rows if r["benchmark"] == "ssca2"}
    reduction = 1 - ssca2["FP-VAXX"]["total"] / ssca2["FP-COMP"]["total"]
    assert reduction > 0.0, "ssca2 must benefit from approximation"


def test_figure9(benchmark, show):
    rows = benchmark.pedantic(run_figure9, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure9(rows))
    ssca2 = {r["mechanism"]: r for r in rows if r["benchmark"] == "ssca2"}
    best_vaxx = min(ssca2["FP-VAXX"]["total"], ssca2["DI-VAXX"]["total"])
    best_comp = min(ssca2["FP-COMP"]["total"], ssca2["DI-COMP"]["total"])
    print(f"\nssca2 latency reduction of best VAXX vs best compression: "
          f"{(1 - best_vaxx / best_comp) * 100:.1f}% (paper: 36.7%)")
