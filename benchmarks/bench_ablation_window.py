"""Ablation: window-based cumulative error budget (the paper's future work).

§7 proposes replacing the conservative per-word threshold with a cumulative
budget over a window of words.  This ablation compares FP-VAXX under

* the default per-word policy,
* window budgets of 8 / 16 / 64 words at the same nominal threshold,

on an image-like value stream, reporting approximate-match rate and data
quality.  Expected shape: the window policy admits at least as many
approximate matches while keeping the *average* error within the budget.
"""

from repro.core import CacheBlock, FpVaxxScheme, WindowErrorBudget
from repro.traffic.datagen import BlockGenerator, ValueModel
from repro.util.rng import DeterministicRng


def run_ablation(blocks: int = 600, threshold: float = 10.0):
    model = ValueModel(name="frame", p_zero=0.1, p_small=0.1, p_pool=0.7,
                       pool_size=12, cluster_noise=0.05, exact_repeat=0.2,
                       scale=3e3)
    variants = {"per-word": None}
    for window in (8, 16, 64):
        variants[f"window-{window}"] = window
    rows = []
    for name, window in variants.items():
        if window is None:
            scheme = FpVaxxScheme(4, error_threshold_pct=threshold)
        else:
            scheme = FpVaxxScheme(
                4, error_threshold_pct=threshold,
                budget_factory=lambda w=window: WindowErrorBudget(
                    threshold_pct=threshold, window=w))
        generator = BlockGenerator(model, DeterministicRng(3))
        for _ in range(blocks):
            scheme.roundtrip(generator.next_block(16, approximable=True),
                             0, 1)
        rows.append({
            "policy": name,
            "approx_fraction": scheme.quality.approx_fraction,
            "compression_ratio": scheme.stats.compression_ratio,
            "mean_error": scheme.quality.mean_error,
            "max_word_error": scheme.quality.max_word_error,
        })
    return rows


def check_shape(rows):
    by_policy = {r["policy"]: r for r in rows}
    for row in rows:
        # average error always within the nominal 10% budget
        assert row["mean_error"] <= 0.10
    # the widest window admits at least as much approximation as per-word
    assert (by_policy["window-64"]["approx_fraction"]
            >= by_policy["per-word"]["approx_fraction"] - 0.02)


def test_window_budget_ablation(benchmark, show):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    check_shape(rows)
    from repro.harness import format_table
    show(format_table(
        ["policy", "approx_fraction", "ratio", "mean_err", "max_err"],
        [[r["policy"], r["approx_fraction"], r["compression_ratio"],
          r["mean_error"], r["max_word_error"]] for r in rows],
        title="Ablation: per-word vs window error budgets (10% threshold)"))
