"""Figure 15: dynamic power consumption normalized to Baseline.

Expected shape (§5.5): the flit-event reduction pays for the codec energy —
FP-VAXX is the cheapest mechanism (paper: -5.4% vs Baseline and -1.3% vs
FP-COMP on average), and every VAXX variant consumes no more than its base
mechanism.
"""

import math

from conftest import scaled

from repro.harness import figure15, format_figure15, run_benchmark_suite


def run_figure15():
    suite = run_benchmark_suite(
        trace_cycles=scaled(6000), warmup=scaled(3000),
        measure=scaled(3000))
    return figure15(suite)


def geomean(values):
    return math.exp(sum(math.log(max(v, 1e-9)) for v in values)
                    / len(list(values)))


def check_shape(rows):
    by_mechanism = {}
    for row in rows:
        by_mechanism.setdefault(row["mechanism"], []).append(
            row["normalized_power"])
    means = {m: geomean(v) for m, v in by_mechanism.items()}
    assert means["FP-VAXX"] < means["Baseline"]
    assert means["FP-VAXX"] <= means["FP-COMP"]
    assert means["DI-VAXX"] <= means["DI-COMP"] * 1.02


def test_figure15(benchmark, show):
    rows = benchmark.pedantic(run_figure15, rounds=1, iterations=1)
    check_shape(rows)
    show(format_figure15(rows))
    by_mechanism = {}
    for row in rows:
        by_mechanism.setdefault(row["mechanism"], []).append(
            row["normalized_power"])
    fp_vaxx = geomean(by_mechanism["FP-VAXX"])
    print(f"\nFP-VAXX mean normalized power: {fp_vaxx:.3f} "
          "(paper: 0.946 vs Baseline)")
